//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the API surface the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`] and
//! the `criterion_group!` / `criterion_main!` macros.  Timing is a simple
//! best-of-N wall-clock measurement printed as one line per benchmark — enough
//! to compare hot paths offline, without the statistical machinery.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark that borrows a shared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        best: Duration::MAX,
        iters: 0,
        samples: sample_size,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label}: no measurement");
    } else {
        println!(
            "  {label}: best {:?} over {} samples",
            bencher.best, bencher.iters
        );
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    best: Duration,
    iters: usize,
    samples: usize,
}

impl Bencher {
    /// Measures `routine` `sample_size` times and records the best time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
            self.iters += 1;
        }
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
