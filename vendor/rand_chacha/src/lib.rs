//! Offline stand-in for the `rand_chacha` crate: a real ChaCha8 generator.
//!
//! Implements the ChaCha stream cipher core (Bernstein, 2008) with 8 rounds,
//! exposed through the vendored [`rand`] traits.  Deterministic for a given
//! seed; the keystream is genuine ChaCha8 although the word-consumption order
//! (and therefore the sample stream) differs from upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: a column round followed by a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_style_block_matches_rfc_structure() {
        // RFC 7539 test vector uses 20 rounds; here we only check that the
        // 8-round core is deterministic, non-trivial and seed-sensitive.
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "different seed, different stream");
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn words_are_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..1024).map(|_| rng.next_u32().count_ones()).sum();
        let total = 1024 * 32;
        let ratio = f64::from(ones) / f64::from(total);
        assert!((0.48..0.52).contains(&ratio), "bit balance off: {ratio}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
