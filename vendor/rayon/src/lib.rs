//! Offline stand-in for the `rayon` crate.
//!
//! Provides the data-parallel API the workspace uses — `par_iter()` followed
//! by `map`/`for_each`/`collect`, [`join`], and `par_chunks_mut` over mutable
//! slices — implemented with scoped OS threads and work-stealing indices, so
//! batches really do run in parallel.
//!
//! The thread count honours the `RAYON_NUM_THREADS` environment variable
//! (like upstream rayon) and defaults to the available parallelism.  Results
//! are always returned in input order regardless of the thread count, and
//! `par_chunks_mut` hands every worker disjoint chunks, so deterministic
//! kernels stay deterministic under any thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits that make `par_iter()` / `par_chunks_mut()` available on slices.
    pub use crate::{ChunkProducer, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut};
}

thread_local! {
    /// Thread count forced by an enclosing [`ThreadPool::install`] call.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads to use for one parallel call.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => default_threads(),
            Ok(n) => n,
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by this
/// stand-in; it exists for upstream API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("could not build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker-thread count; `0` means automatic.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A scoped thread-count context, mirroring `rayon::ThreadPool`.
///
/// This stand-in spawns threads per parallel call rather than keeping a pool
/// alive, so [`ThreadPool::install`] simply pins the thread count used by
/// parallel calls made from the closure (on the calling thread).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread count in effect.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _guard = Restore(INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads))));
        op()
    }
}

/// Runs `f` over every item, in parallel, preserving input order.
fn parallel_map<'data, T, R, F>(items: &'data [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker thread panicked") {
                slots[i] = Some(r);
            }
        }
        slots
    });
    slots
        .iter_mut()
        .map(|slot| slot.take().expect("every index produced"))
        .collect()
}

/// Conversion of `&collection` into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// The element type yielded by the iterator.
    type Item: 'data;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

/// A parallel iterator: a recipe that can be mapped and then collected.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Executes the recipe and returns all items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Collects the mapped items, in input order, into `C`.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.run())
    }
}

/// Parallel iterator over a borrowed slice.
pub struct ParSlice<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        self.items.iter().collect()
    }
}

/// The result of [`ParallelIterator::map`].
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'data, T, R, F> ParallelIterator for ParMap<ParSlice<'data, T>, F>
where
    T: Sync + 'data,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.inner.items, self.f)
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Mirrors `rayon::join`: `oper_a` runs on the calling thread while `oper_b`
/// may run on a second thread.  With a thread count of one (or when either
/// side panics there is no cross-thread state to lose) the two closures run
/// sequentially, `a` first.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle_b = scope.spawn(oper_b);
        let ra = oper_a();
        let rb = handle_b.join().expect("join: second operand panicked");
        (ra, rb)
    })
}

/// Conversion of `&mut [T]` into parallel chunk iterators (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Returns a parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    ///
    /// Chunk boundaries depend only on `chunk_size`, never on the thread
    /// count, so a deterministic per-chunk computation produces bit-identical
    /// results under any `RAYON_NUM_THREADS`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// A source of independent work items for the parallel driver: anything that
/// can be turned into a sequential iterator of `Send` items (disjoint chunks,
/// zipped chunk tuples, …).
pub trait ChunkProducer: Sized + Send {
    /// The per-chunk item handed to worker closures.
    type Item: Send;
    /// The sequential iterator the parallel driver pulls from.
    type Seq: Iterator<Item = Self::Item> + Send;

    /// Number of items that will be produced.
    fn chunk_count(&self) -> usize;

    /// Converts into the sequential item iterator.
    fn into_seq(self) -> Self::Seq;

    /// Zips with another producer: items become pairs, chunk-for-chunk.
    ///
    /// Both producers must yield the same number of chunks (use equal chunk
    /// sizes over equal-length slices).
    fn zip<B: ChunkProducer>(self, other: B) -> ParZip<Self, B> {
        assert_eq!(
            self.chunk_count(),
            other.chunk_count(),
            "zip: chunk counts differ"
        );
        ParZip { a: self, b: other }
    }

    /// Pairs every item with its index.
    fn enumerate(self) -> ParEnumerate<Self> {
        ParEnumerate { inner: self }
    }

    /// Calls `f` on every item, distributing items over worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_parallel(self.chunk_count(), self.into_seq(), f);
    }
}

/// Distributes the items of `seq` over worker threads.  Workers pull the next
/// item from a shared iterator; the mutex guards only the hand-off, never the
/// item computation, and item *identity* is thread-count independent.
fn drive_parallel<I, F>(count: usize, seq: I, f: F)
where
    I: Iterator + Send,
    I::Item: Send,
    F: Fn(I::Item) + Sync,
{
    let threads = current_num_threads().min(count.max(1));
    if threads <= 1 || count <= 1 {
        for item in seq {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(seq);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("chunk queue poisoned").next();
                match next {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'data, T> {
    slice: &'data mut [T],
    chunk_size: usize,
}

impl<'data, T: Send> ChunkProducer for ParChunksMut<'data, T> {
    type Item = &'data mut [T];
    type Seq = std::slice::ChunksMut<'data, T>;

    fn chunk_count(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk_size)
    }
}

/// The result of [`ChunkProducer::zip`]: yields chunk pairs.
pub struct ParZip<A, B> {
    a: A,
    b: B,
}

impl<A: ChunkProducer, B: ChunkProducer> ChunkProducer for ParZip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn chunk_count(&self) -> usize {
        self.a.chunk_count().min(self.b.chunk_count())
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// The result of [`ChunkProducer::enumerate`]: yields `(index, item)`.
pub struct ParEnumerate<A> {
    inner: A,
}

impl<A: ChunkProducer> ChunkProducer for ParEnumerate<A> {
    type Item = (usize, A::Item);
    type Seq = std::iter::Enumerate<A::Seq>;

    fn chunk_count(&self) -> usize {
        self.inner.chunk_count()
    }

    fn into_seq(self) -> Self::Seq {
        self.inner.into_seq().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..997).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..997).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_under_any_thread_count() {
        let input: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * x + 1).collect();
        let got: Vec<u64> = input.par_iter().map(|&x| x * x + 1).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        // Nested joins must not deadlock.
        let ((a, b), c) = crate::join(|| crate::join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 64 + j) as u64;
            }
        });
        let expected: Vec<u64> = (0..1003).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn par_chunks_mut_is_thread_count_independent() {
        let run = |threads: usize| {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let mut data = vec![1.0f64; 513];
            pool.install(|| {
                data.par_chunks_mut(100).enumerate().for_each(|(i, chunk)| {
                    for v in chunk.iter_mut() {
                        *v += (i as f64).sqrt();
                    }
                });
            });
            data
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn par_chunks_mut_empty_slice() {
        let mut empty: Vec<u8> = Vec::new();
        empty.par_chunks_mut(8).for_each(|_| panic!("no chunks"));
    }

    #[test]
    fn zipped_chunks_stay_in_lockstep() {
        let mut a = vec![0.0f32; 257];
        let mut b: Vec<f32> = (0..257).map(|i| i as f32).collect();
        a.par_chunks_mut(32)
            .zip(b.par_chunks_mut(32))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for (x, y) in ca.iter_mut().zip(cb.iter_mut()) {
                    *x = *y + i as f32;
                    *y = 0.0;
                }
            });
        for (j, &x) in a.iter().enumerate() {
            assert_eq!(x, j as f32 + (j / 32) as f32);
        }
        assert!(b.iter().all(|&y| y == 0.0));
    }
}
