//! Offline stand-in for the `rayon` crate.
//!
//! Provides the data-parallel slice API the workspace uses — `par_iter()`
//! followed by `map`/`for_each`/`collect` — implemented with scoped OS threads
//! and an atomic work-stealing index, so batches really do run in parallel.
//!
//! The thread count honours the `RAYON_NUM_THREADS` environment variable
//! (like upstream rayon) and defaults to the available parallelism.  Results
//! are always returned in input order regardless of the thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Traits that make `par_iter()` available on slices and vectors.
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Thread count forced by an enclosing [`ThreadPool::install`] call.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads to use for one parallel call.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => default_threads(),
            Ok(n) => n,
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by this
/// stand-in; it exists for upstream API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("could not build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker-thread count; `0` means automatic.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A scoped thread-count context, mirroring `rayon::ThreadPool`.
///
/// This stand-in spawns threads per parallel call rather than keeping a pool
/// alive, so [`ThreadPool::install`] simply pins the thread count used by
/// parallel calls made from the closure (on the calling thread).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread count in effect.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _guard = Restore(INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads))));
        op()
    }
}

/// Runs `f` over every item, in parallel, preserving input order.
fn parallel_map<'data, T, R, F>(items: &'data [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker thread panicked") {
                slots[i] = Some(r);
            }
        }
        slots
    });
    slots
        .iter_mut()
        .map(|slot| slot.take().expect("every index produced"))
        .collect()
}

/// Conversion of `&collection` into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// The element type yielded by the iterator.
    type Item: 'data;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

/// A parallel iterator: a recipe that can be mapped and then collected.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Executes the recipe and returns all items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Collects the mapped items, in input order, into `C`.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.run())
    }
}

/// Parallel iterator over a borrowed slice.
pub struct ParSlice<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        self.items.iter().collect()
    }
}

/// The result of [`ParallelIterator::map`].
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'data, T, R, F> ParallelIterator for ParMap<ParSlice<'data, T>, F>
where
    T: Sync + 'data,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.inner.items, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..997).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..997).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_under_any_thread_count() {
        let input: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * x + 1).collect();
        let got: Vec<u64> = input.par_iter().map(|&x| x * x + 1).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
