//! The subset of `rand::distributions` used by the workspace.

use crate::{unit_f32, unit_float, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: unit-interval floats, full-range integers.
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_float(rng)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types that [`Uniform`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a sample from `[low, high)` or `[low, high]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// A uniform distribution over a closed or half-open interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform distribution over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform distribution over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Uniform {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(self.low, self.high, self.inclusive, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                use crate::SampleRange;
                if inclusive {
                    (low..=high).sample_single(rng)
                } else {
                    (low..high).sample_single(rng)
                }
            }
        }
    )*};
}

impl_sample_uniform!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn uniform_float_bounds() {
        let dist = Uniform::new_inclusive(-2.0f32, 2.0f32);
        let mut rng = Counter(3);
        for _ in 0..500 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn uniform_int_bounds() {
        let dist = Uniform::new(10usize, 20usize);
        let mut rng = Counter(5);
        for _ in 0..500 {
            let v = dist.sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }
}
