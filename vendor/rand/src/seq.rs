//! The subset of `rand::seq` used by the workspace.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = Rng::gen_range(&mut &mut *rng, 0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[Rng::gen_range(&mut &mut *rng, 0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Counter(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_returns_member() {
        let v = [1, 2, 3];
        let mut rng = Counter(2);
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
