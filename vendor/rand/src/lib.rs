//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to a crates.io
//! mirror, so the workspace vendors the narrow slice of the `rand` 0.8 API it
//! actually uses: [`RngCore`] / [`Rng`] / [`SeedableRng`], uniform ranges via
//! [`Rng::gen_range`], the [`distributions`] module with [`Uniform`] and
//! [`Standard`](distributions::Standard), and [`seq::SliceRandom::shuffle`].
//!
//! The implementations are real (not no-ops) and deterministic for a given
//! seed, which is all the reproduction relies on; the exact output streams
//! differ from upstream `rand`.

pub mod distributions;
pub mod seq;

pub use distributions::Uniform;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = [0u8; 32];
        let mut x = state;
        for chunk in seed.chunks_mut(8) {
            // SplitMix64 step: decorrelates nearby integer seeds.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Rejection sampling over the top 64 bits to avoid modulo bias.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (self.start as u128).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (start as u128).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($t:ty, $unit:ident) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + $unit(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + $unit(rng) * (end - start)
            }
        }
    };
}

impl_float_range!(f32, unit_f32);
impl_float_range!(f64, unit_float);

/// Uniform `f64` in `[0, 1)` built from the top 53 bits of one output word.
pub(crate) fn unit_float<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` built from 24 bits, so the exclusive upper bound
/// is never rounded up to 1.0 (a 53-bit `f64` cast to `f32` can be).
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but well-distributed mixer, good enough for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn floats_never_reach_the_exclusive_bound() {
        // An all-ones word stream maximises every unit sample; the result
        // must still be strictly below the exclusive upper bound even after
        // f32 rounding.
        struct AllOnes;
        impl RngCore for AllOnes {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = AllOnes;
        let f: f32 = rng.gen();
        assert!(f < 1.0, "gen::<f32>() produced {f}");
        let r: f32 = rng.gen_range(0.0..1.0);
        assert!(r < 1.0, "gen_range(0.0..1.0) produced {r}");
        let d: f64 = rng.gen();
        assert!(d < 1.0, "gen::<f64>() produced {d}");
    }

    #[test]
    fn gen_produces_unit_floats() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            let w: f64 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }
}
