//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually contains — structs with named fields, tuple
//! structs, unit structs, and enums with unit / tuple / struct variants —
//! without depending on `syn`/`quote` (which are unavailable offline).  The
//! only recognised field attribute is `#[serde(skip)]`: the field is omitted
//! on serialization and filled with `Default::default()` on deserialization.
//!
//! Generic types are rejected with a compile-time panic; nothing in the
//! workspace derives serde impls on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic type `{name}`");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(group.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}`"),
    };
    Parsed { name, shape }
}

/// Advances past outer attributes (`#[...]`) and a visibility modifier.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

/// Returns `true` when an attribute group's content is exactly `serde(skip)`.
fn attribute_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes leading field/variant attributes, returning whether one was
/// `#[serde(skip)]`.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(group)) = tokens.get(*i + 1) {
            if attribute_is_serde_skip(group.stream()) {
                skip = true;
            }
        }
        *i += 2;
    }
    skip
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let skip = take_attributes(&tokens, &mut i);
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, skip });
        // Optional trailing comma already consumed by `skip_type`.
    }
    fields
}

/// Advances past one type, stopping after the following top-level comma (or at
/// the end of the stream).  Angle brackets are tracked manually because they
/// are plain punctuation at the token level.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        take_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let data = match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantData::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantData::Struct(parse_named_fields(group.stream()))
            }
            _ => VariantData::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit enum discriminants are not supported by the vendored serde derive");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, data });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let mut out =
                String::from("let mut entries: Vec<(String, serde::Value)> = Vec::new();\n");
            for field in fields.iter().filter(|f| !f.skip) {
                out.push_str(&format!(
                    "entries.push((String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})));\n",
                    f = field.name
                ));
            }
            out.push_str("serde::Value::Object(entries)");
            out
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(count) => {
            let items: Vec<String> = (0..*count)
                .map(|idx| format!("serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.data {
                    VariantData::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(String::from(\"{v}\")),\n"
                    )),
                    VariantData::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => serde::Value::Object(vec![(String::from(\"{v}\"), \
                         serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantData::Tuple(count) => {
                        let binders: Vec<String> = (0..*count).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => serde::Value::Object(vec![(String::from(\"{v}\"), \
                             serde::Value::Array(vec![{items}]))]),\n",
                            binds = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantData::Struct(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), serde::Serialize::to_value({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Object(vec![(String::from(\"{v}\"), \
                             serde::Value::Object(vec![{items}]))]),\n",
                            binds = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn generate_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|field| {
                    if field.skip {
                        format!("{}: Default::default()", field.name)
                    } else {
                        format!(
                            "{f}: serde::Deserialize::from_value(serde::field(value, \"{f}\", \"{name}\")?)?",
                            f = field.name
                        )
                    }
                })
                .collect();
            format!(
                "if value.as_object().is_none() {{\n\
                 return Err(serde::Error::custom(\"expected object for {name}\"));\n}}\n\
                 Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(count) => {
            let items: Vec<String> = (0..*count)
                .map(|idx| format!("serde::Deserialize::from_value(&__arr[{idx}])?"))
                .collect();
            format!(
                "let __arr = value.as_array()\
                 .ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {count} {{\n\
                 return Err(serde::Error::custom(\"wrong tuple length for {name}\"));\n}}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.data {
                    VariantData::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                    }
                    VariantData::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(__val)?)),\n"
                        ));
                    }
                    VariantData::Tuple(count) => {
                        let items: Vec<String> = (0..*count)
                            .map(|idx| format!("serde::Deserialize::from_value(&__arr[{idx}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __arr = __val.as_array()\
                             .ok_or_else(|| serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                             if __arr.len() != {count} {{\n\
                             return Err(serde::Error::custom(\"wrong tuple length for {name}::{v}\"));\n}}\n\
                             Ok({name}::{v}({items}))\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantData::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|field| {
                                if field.skip {
                                    format!("{}: Default::default()", field.name)
                                } else {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::field(__val, \"{f}\", \"{name}::{v}\")?)?",
                                        f = field.name
                                    )
                                }
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v} {{ {inits} }}),\n",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 _ => Err(serde::Error::custom(\"unknown variant of {name}\")),\n}},\n\
                 serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __val) = &__entries[0];\n\
                 let _ = __val;\n\
                 match __tag.as_str() {{\n{data_arms}\
                 _ => Err(serde::Error::custom(\"unknown variant of {name}\")),\n}}\n}},\n\
                 _ => Err(serde::Error::custom(\"expected enum value for {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
