//! Offline minimal HTTP/1.1 message layer.
//!
//! The workspace cannot reach crates.io, so this crate supplies the few
//! pieces of HTTP the `flowd` service and its clients need: parsing a
//! request or response head from a `Read`, length-delimited bodies
//! (`Content-Length`; chunked encoding is deliberately out of scope),
//! writing well-formed messages back, and percent-encoding for query
//! strings.  It is a *message* layer, not a framework: sockets, threading
//! and routing stay with the caller.
//!
//! Both sides speak `HTTP/1.1` with explicit `Content-Length` and support
//! keep-alive; a peer (or handler) can force `Connection: close`.  All
//! limits are explicit [`Limits`] so a hostile peer cannot balloon memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};

/// Hard bounds applied while reading a message from the wire.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request/status line plus headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (`Content-Length` above this is rejected).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Errors produced while reading or writing HTTP messages.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a full message arrived.
    /// `clean` is true when *zero* bytes had been read (idle keep-alive
    /// close, not an error worth reporting).
    Closed {
        /// No bytes of the next message had arrived yet.
        clean: bool,
    },
    /// The message violates HTTP/1.1 framing or syntax.
    BadRequest(String),
    /// The message exceeds the configured [`Limits`].
    TooLarge(String),
    /// An underlying socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed { clean: true } => write!(f, "connection closed (idle)"),
            HttpError::Closed { clean: false } => write!(f, "connection closed mid-message"),
            HttpError::BadRequest(msg) => write!(f, "malformed HTTP message: {msg}"),
            HttpError::TooLarge(msg) => write!(f, "message too large: {msg}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// The raw request target, e.g. `/run?flow=resyn2`.
    pub target: String,
    /// Header map with lower-cased names; duplicate headers keep the last.
    pub headers: BTreeMap<String, String>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a request with no headers or body.
    pub fn new(method: &str, target: &str) -> Self {
        Request {
            method: method.to_ascii_uppercase(),
            target: target.to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Attaches a body (its `Content-Length` is written automatically).
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Sets a header (name is lower-cased).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_string());
        self
    }

    /// The target's path component, percent-decoded.
    pub fn path(&self) -> String {
        let raw = match self.target.split_once('?') {
            Some((path, _)) => path,
            None => self.target.as_str(),
        };
        percent_decode(raw)
    }

    /// Looks up a query parameter by name, percent-decoded.
    pub fn query_param(&self, name: &str) -> Option<String> {
        let (_, query) = self.target.split_once('?')?;
        for pair in query.split('&') {
            let (k, v) = match pair.split_once('=') {
                Some((k, v)) => (k, v),
                None => (pair, ""),
            };
            if percent_decode(k) == name {
                return Some(percent_decode(v));
            }
        }
        None
    }

    /// Whether the peer asked to close the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A parsed (or to-be-written) HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: String,
    /// Header map with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// Creates a response with the standard reason phrase for `status`.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            reason: reason_phrase(status).to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// A `200 OK` response carrying a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("content-type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// Attaches a body (its `Content-Length` is written automatically).
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Sets a header (name is lower-cased).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Whether this response announces `Connection: close`.
    pub fn closes_connection(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// The standard reason phrase of the status codes this crate emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Failpoint shim for the read paths: with the `failpoints` feature a
/// configured `return` task injects a truncated read (`Closed`) and a
/// `delay` task stalls the read; without the feature this is an inlined
/// no-op (the optional `flow-core` dependency is not even linked).
#[cfg(feature = "failpoints")]
fn read_failpoint(name: &str) -> Option<HttpError> {
    flow_core::fail::eval(name).map(|_| HttpError::Closed { clean: false })
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn read_failpoint(_name: &str) -> Option<HttpError> {
    None
}

/// Reads one request from `reader` (server side).
pub fn read_request<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    let head = read_head(reader, limits)?;
    let mut lines = head.lines();
    let start = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty head".into()))?;
    let mut parts = start.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }
    let headers = parse_headers(lines)?;
    let body = read_body(reader, &headers, limits)?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// Writes one response to `writer` (server side).
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\n",
        response.status, response.reason
    )?;
    for (name, value) in &response.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "content-length: {}\r\n\r\n", response.body.len())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

/// Writes one request to `writer` (client side).
pub fn write_request<W: Write>(writer: &mut W, request: &Request) -> std::io::Result<()> {
    write!(writer, "{} {} HTTP/1.1\r\n", request.method, request.target)?;
    for (name, value) in &request.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "content-length: {}\r\n\r\n", request.body.len())?;
    writer.write_all(&request.body)?;
    writer.flush()
}

/// Reads one response from `reader` (client side).
pub fn read_response<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<Response, HttpError> {
    let head = read_head(reader, limits)?;
    let mut lines = head.lines();
    let start = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty head".into()))?;
    let mut parts = start.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::BadRequest("missing status code".into()))?;
    let reason = parts.next().unwrap_or("").to_string();
    let headers = parse_headers(lines)?;
    let body = read_body(reader, &headers, limits)?;
    Ok(Response {
        status,
        reason,
        headers,
        body,
    })
}

/// Reads the head (start line + headers) up to the blank line, excluded.
fn read_head<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<String, HttpError> {
    if let Some(e) = read_failpoint("httpwire.read_head") {
        return Err(e);
    }
    let mut head: Vec<u8> = Vec::new();
    loop {
        let mut line: Vec<u8> = Vec::new();
        let budget = limits
            .max_head_bytes
            .saturating_sub(head.len())
            .saturating_add(2);
        let read = reader
            .by_ref()
            .take(budget as u64)
            .read_until(b'\n', &mut line)?;
        if read == 0 {
            return Err(HttpError::Closed {
                clean: head.is_empty(),
            });
        }
        if !line.ends_with(b"\n") {
            return Err(if head.len() + line.len() > limits.max_head_bytes {
                HttpError::TooLarge(format!("head exceeds {} bytes", limits.max_head_bytes))
            } else {
                HttpError::Closed { clean: false }
            });
        }
        while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
            line.pop();
        }
        if line.is_empty() {
            if head.is_empty() {
                // Tolerate a stray CRLF before the start line.
                continue;
            }
            break;
        }
        head.extend_from_slice(&line);
        head.push(b'\n');
        if head.len() > limits.max_head_bytes {
            return Err(HttpError::TooLarge(format!(
                "head exceeds {} bytes",
                limits.max_head_bytes
            )));
        }
    }
    String::from_utf8(head).map_err(|_| HttpError::BadRequest("head is not UTF-8".into()))
}

/// Parses `name: value` header lines into a lower-cased map.
fn parse_headers<'a, I: Iterator<Item = &'a str>>(
    lines: I,
) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header line `{line}` has no colon")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!("bad header name `{name}`")));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }
    Ok(headers)
}

/// Reads a `Content-Length`-delimited body.
fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &BTreeMap<String, String>,
    limits: &Limits,
) -> Result<Vec<u8>, HttpError> {
    if let Some(e) = read_failpoint("httpwire.read_body") {
        return Err(e);
    }
    if let Some(te) = headers.get("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::BadRequest(format!(
                "transfer-encoding `{te}` is not supported; use content-length"
            )));
        }
    }
    let length: usize = match headers.get("content-length") {
        None => return Ok(Vec::new()),
        Some(raw) => raw
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{raw}`")))?,
    };
    if length > limits.max_body_bytes {
        return Err(HttpError::TooLarge(format!(
            "body of {length} bytes exceeds limit of {}",
            limits.max_body_bytes
        )));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => HttpError::Closed { clean: false },
        _ => HttpError::Io(e),
    })?;
    Ok(body)
}

/// Percent-encodes a string for use inside a query component.
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for &byte in input.as_bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            _ => {
                out.push('%');
                out.push(
                    char::from_digit((byte >> 4) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit((byte & 0xF) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

/// Percent-decodes a query/path component (`+` also decodes to space).
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hi = (bytes[i + 1] as char).to_digit(16);
                let lo = (bytes[i + 2] as char).to_digit(16);
                match (hi, lo) {
                    (Some(hi), Some(lo)) => {
                        out.push(((hi << 4) | lo) as u8);
                        i += 3;
                    }
                    _ => {
                        // Invalid escape: pass the `%` through literally.
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(req: &Request, limits: &Limits) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, req).unwrap();
        read_request(&mut BufReader::new(wire.as_slice()), limits).unwrap()
    }

    #[test]
    fn request_roundtrips() {
        let req = Request::new("post", "/run?flow=balance%3B%20rewrite")
            .with_header("X-Thing", "7")
            .with_body(b"aag 0 0 0 0 0".to_vec());
        let parsed = roundtrip_request(&req, &Limits::default());
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path(), "/run");
        assert_eq!(
            parsed.query_param("flow").as_deref(),
            Some("balance; rewrite")
        );
        assert_eq!(parsed.headers.get("x-thing").map(String::as_str), Some("7"));
        assert_eq!(parsed.body, b"aag 0 0 0 0 0");
    }

    #[test]
    fn response_roundtrips() {
        let resp = Response::json(503, "{\"error\":\"full\"}")
            .with_header("retry-after", "1")
            .with_header("connection", "close");
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let parsed = read_response(&mut BufReader::new(wire.as_slice()), &Limits::default())
            .expect("parse response");
        assert_eq!(parsed.status, 503);
        assert_eq!(parsed.reason, "Service Unavailable");
        assert!(parsed.closes_connection());
        assert_eq!(
            parsed.headers.get("retry-after").map(String::as_str),
            Some("1")
        );
        assert_eq!(parsed.body, b"{\"error\":\"full\"}");
    }

    #[test]
    fn keep_alive_carries_multiple_requests() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::new("GET", "/healthz")).unwrap();
        write_request(
            &mut wire,
            &Request::new("POST", "/run").with_body(b"x".to_vec()),
        )
        .unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let limits = Limits::default();
        let first = read_request(&mut reader, &limits).unwrap();
        let second = read_request(&mut reader, &limits).unwrap();
        assert_eq!(first.target, "/healthz");
        assert_eq!(second.body, b"x");
        match read_request(&mut reader, &limits) {
            Err(HttpError::Closed { clean: true }) => {}
            other => panic!("expected clean close, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_rejected_not_read() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request::new("POST", "/run").with_body(vec![b'x'; 64]),
        )
        .unwrap();
        let limits = Limits {
            max_body_bytes: 16,
            ..Limits::default()
        };
        match read_request(&mut BufReader::new(wire.as_slice()), &limits) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut wire = Vec::new();
        let req = Request::new("GET", "/x").with_header("big", &"v".repeat(64));
        write_request(&mut wire, &req).unwrap();
        let limits = Limits {
            max_head_bytes: 32,
            ..Limits::default()
        };
        match read_request(&mut BufReader::new(wire.as_slice()), &limits) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_messages_report_unclean_close() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request::new("POST", "/run").with_body(vec![b'x'; 64]),
        )
        .unwrap();
        wire.truncate(wire.len() - 10);
        match read_request(&mut BufReader::new(wire.as_slice()), &Limits::default()) {
            Err(HttpError::Closed { clean: false }) => {}
            other => panic!("expected unclean close, got {other:?}"),
        }
    }

    #[test]
    fn garbage_start_line_is_bad_request() {
        let wire = b"NOT-HTTP\r\n\r\n".to_vec();
        match read_request(&mut BufReader::new(wire.as_slice()), &Limits::default()) {
            Err(HttpError::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn percent_coding_roundtrips() {
        let original = "balance; rewrite -z/100%";
        let encoded = percent_encode(original);
        assert!(!encoded.contains(' '));
        assert!(!encoded.contains(';'));
        assert_eq!(percent_decode(&encoded), original);
    }
}
