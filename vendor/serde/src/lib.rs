//! Offline stand-in for the `serde` crate.
//!
//! The workspace cannot reach a crates.io mirror, so this crate provides a
//! small but *real* serialization framework with the same spelling the code
//! uses: `#[derive(Serialize, Deserialize)]` plus `#[serde(skip)]`, backed by
//! the re-exported derive macros of the vendored `serde_derive`.
//!
//! Instead of serde's visitor architecture, types convert to and from a
//! self-describing [`Value`] tree; the vendored `serde_json` renders that tree
//! as JSON.  Representations follow serde's conventions: structs become
//! objects, newtype structs unwrap to their inner value, unit enum variants
//! become strings and data-carrying variants become externally tagged
//! single-entry objects.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value tree into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Fetches a required field of an object value (derive-macro helper).
pub fn field<'v>(value: &'v Value, name: &str, ty: &str) -> Result<&'v Value, Error> {
    value
        .get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))
}

// A `Value` serializes to itself, so code that edits a parsed tree (adding
// report annotations, say) can hand it back to `serde_json::to_string`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::U64(v) => v,
                    Value::I64(v) if v >= 0 => v as u64,
                    Value::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    _ => return Err(Error::custom(concat!("expected unsigned ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::I64(v) => v,
                    Value::U64(v) => {
                        i64::try_from(v).map_err(|_| Error::custom("integer overflow"))?
                    }
                    Value::F64(v) if v.fract() == 0.0 => v as i64,
                    _ => return Err(Error::custom(concat!("expected signed ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(f32::from_value(&0.25f32.to_value()), Ok(0.25));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()), Ok(None));
        assert_eq!(
            Option::<u32>::from_value(&Some(5u32).to_value()),
            Ok(Some(5))
        );
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.get("a"), Some(&Value::U64(1)));
        assert_eq!(obj.get("b"), None);
        assert!(field(&obj, "b", "Test").is_err());
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
