//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] tree as JSON.
//!
//! Floating-point numbers are printed with Rust's shortest round-trip
//! formatting, so `f64` values survive `to_string` → `from_str` exactly.

use serde::{Deserialize, Serialize, Value};

/// Error type of this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            let text = format!("{v}");
            out.push_str(&text);
            // `1.0f64` formats as "1"; keep it a float so it parses back as one
            // only when precision matters — integers re-parse fine either way.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
                .and_then(|_| {
                    text.parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error::new(format!("number out of range `{text}`")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("number out of range `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &v in &[
            0.1f64,
            1.0,
            -2.5,
            1e300,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
        ] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), v, "through {text}");
        }
        let small = 0.25f32;
        assert_eq!(from_str::<f32>(&to_string(&small).unwrap()).unwrap(), small);
    }

    #[test]
    fn vectors_and_nesting() {
        let v = vec![vec![1u32, 2], vec![3]];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u64>("[1] trailing").is_err());
        assert!(from_str::<u64>("nope").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn unicode_strings() {
        let s = "héllo → 世界".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }
}
