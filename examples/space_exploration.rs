//! Exploring the flow search space: counting (Remark 3) and QoR spread.
//!
//! Shows why exhaustive search is impossible (the space grows super-
//! exponentially) and why it matters (different orderings of the *same*
//! transformations give very different QoR).
//!
//! ```text
//! cargo run --release --example space_exploration
//! ```

use circuits::{Design, DesignScale};
use floweval::EvalEngine;
use flowgen::FlowSpace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Search-space sizes (Remark 3).
    println!("size of the m-repetition flow space f(n, L, m):");
    for m in 1..=4usize {
        let space = FlowSpace::new(6, m);
        println!(
            "  n = 6, m = {m}, L = {:>2}: {:>22} flows",
            space.flow_length(),
            space.num_complete_flows()
        );
    }

    // QoR spread of a handful of random flows on one design.
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let space = FlowSpace::paper();
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let flows = space.random_unique_flows(8, &mut rng);
    let engine = EvalEngine::default();
    let seqs: Vec<Vec<synth::Transform>> = flows.iter().map(|f| f.transforms().to_vec()).collect();
    let qors = engine.evaluate_batch(&design, &seqs);
    println!("\nQoR of 8 random 24-step flows on {}:", design.name());
    for (flow, qor) in flows.iter().zip(&qors) {
        println!(
            "  area {:>8.2} um^2  delay {:>7.1} ps   {}",
            qor.area_um2, qor.delay_ps, flow
        );
    }
    println!("\nengine: {}", engine.stats());
    println!("Same transformations, different order, different QoR — the paper's motivation.");
}
