//! Persistent QoR store demo: evaluate a batch, restart, evaluate again.
//!
//! ```text
//! cargo run --release --example qor_store -- /tmp/qor.jsonl
//! ```
//!
//! The first run evaluates 16 random flows on the tiny ALU and appends them
//! to the JSON-lines store; running the same command again answers every flow
//! from the store without applying a single synthesis pass.

use circuits::{Design, DesignScale};
use floweval::{EngineConfig, EvalEngine};
use flowgen::FlowSpace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let store_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/qor-store.jsonl".to_string());
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let engine = EvalEngine::new(EngineConfig {
        store_path: Some(store_path.clone().into()),
        ..EngineConfig::default()
    });

    let space = FlowSpace::new(6, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(0x5708E);
    let flows: Vec<Vec<synth::Transform>> = space
        .random_unique_flows(16, &mut rng)
        .iter()
        .map(|f| f.transforms().to_vec())
        .collect();

    println!(
        "store: {store_path} ({} records loaded)",
        engine.store_len()
    );
    let qors = engine.evaluate_batch(&design, &flows);
    let best = qors
        .iter()
        .min_by(|a, b| a.area_um2.total_cmp(&b.area_um2))
        .expect("non-empty batch");
    println!(
        "evaluated {} flows on {}; best area {:.2} um^2",
        qors.len(),
        design.name(),
        best.area_um2
    );
    println!("engine: {}", engine.stats());
    if engine.stats().store_hits == flows.len() {
        println!("all flows served from the persistent store — zero passes applied");
    }
}
