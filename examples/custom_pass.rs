//! Authoring a custom resynthesis pass against the public sweep API.
//!
//! ```text
//! cargo run --release --example custom_pass
//! ```
//!
//! This is the compiling companion of `docs/pass-authoring.md`: a complete
//! pass — "restructure, but only through 4-leaf cuts" — written from scratch
//! on top of `synth::resyn::resynthesis_sweep`.  A pass only has to answer
//! one question per node ("how else could this node's cut function be
//! implemented, and at what cost?"); the sweep owns everything else:
//! fanout-aware node iteration, gain thresholding, conflict-free decision
//! replay and the final cleanup.

use aig::{cut_truth, random_equivalence_check, Aig, Cut, Lit, Mffc};
use circuits::{Design, DesignScale};
use synth::decomp::count_shannon_nodes;
use synth::reconv::{reconv_cut, ReconvParams};
use synth::resyn::{resynthesis_sweep, Acceptance, Proposal, Structure};

/// The propose callback: called once per live AND node, returns any number
/// of candidate re-implementations of that node's function.
///
/// The contract (see `docs/pass-authoring.md` for the full statement):
///
/// * express the node over a cut (`leaves` fixes the variable order of the
///   structure's truth table / SOP),
/// * report `added` = new AND nodes the structure would create, counting
///   reuse of existing graph nodes as free **except** nodes inside the
///   node's MFFC (they die when the proposal is accepted),
/// * report `mffc_size` so the sweep can score `gain = mffc_size - added`.
fn propose_small_shannon(graph: &mut Aig, id: aig::NodeId, proposals: &mut Vec<Proposal>) {
    // 1. Grow a reconvergence-driven cut.  Tighter than the built-in
    //    restructure pass (4 leaves instead of 6): this is the knob that
    //    makes the example pass behave differently.
    let leaves = reconv_cut(graph, id, ReconvParams { max_leaves: 4 });
    if leaves.len() < 3 || leaves.len() > aig::MAX_TRUTH_VARS {
        return;
    }

    // 2. Compute the cut function.
    let cut = Cut::from_leaves(leaves.clone());
    let Ok(truth) = cut_truth(graph, id, &cut) else {
        return; // the cone escaped the cut; not a usable candidate
    };

    // 3. Cost the replacement without building it.  The MFFC is the set of
    //    nodes only this cone uses — they are freed on acceptance, so the
    //    dry-run cost estimator must not count them as reusable.
    let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
    let mffc = Mffc::compute(graph, id, &leaves);
    let added = count_shannon_nodes(graph, &truth, &leaf_lits, |n| mffc.contains(n));

    // 4. Emit the proposal.  The sweep accepts it only if
    //    `mffc_size - added >= min_gain`, then materializes the structure
    //    itself during decision replay.
    proposals.push(Proposal {
        leaves,
        structure: Structure::Shannon(truth),
        added,
        mffc_size: mffc.size(),
    });
}

/// The pass itself: a one-liner over the sweep harness.
fn restructure_small(aig: &Aig) -> Aig {
    resynthesis_sweep(aig, Acceptance::strict(), |graph, id| {
        let mut proposals = Vec::new();
        propose_small_shannon(graph, id, &mut proposals);
        proposals
    })
}

fn main() {
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    println!(
        "design: {} ({} AND nodes, depth {})",
        design.name(),
        design.num_ands(),
        design.depth()
    );

    let result = restructure_small(&design);
    println!(
        "after restructure_small: {} AND nodes, depth {}",
        result.num_ands(),
        result.depth()
    );

    // Every pass must preserve the function.  Random simulation is the cheap
    // always-on check; the repo's test suite additionally pins passes
    // bit-identical across the Reference/Fast engines and the
    // Rebuild/InPlace edit modes.
    assert!(
        random_equivalence_check(&design, &result, 8, 0xC0FFEE),
        "a pass must never change the network's function"
    );
    println!("functional check: ok");
}
