//! Delay-driven angel-flow search on the Montgomery multiplier.
//!
//! Same pipeline as `area_flow_search`, optimising critical-path delay instead
//! of area, on a different design — demonstrating that flows are design- and
//! objective-specific (the paper's core motivation).
//!
//! ```text
//! cargo run --release --example delay_flow_search
//! ```

use circuits::{Design, DesignScale};
use flowgen::{Framework, FrameworkConfig};
use synth::QorMetric;

fn main() {
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let mut config = FrameworkConfig::laptop(QorMetric::Delay);
    config.training_flows = 60;
    config.initial_flows = 30;
    config.retrain_interval = 15;
    config.sample_flows = 120;
    config.output_flows = 10;
    let framework = Framework::new(config);

    println!("searching delay-driven flows for {} ...", design.name());
    let report = framework.run(&design);

    let sample_mean = report.sample_qors.iter().map(|q| q.delay_ps).sum::<f64>()
        / report.sample_qors.len().max(1) as f64;
    let best_sample = report
        .sample_qors
        .iter()
        .map(|q| q.delay_ps)
        .fold(f64::MAX, f64::min);
    println!("\nsample flows: mean delay {sample_mean:.1} ps, best delay {best_sample:.1} ps");

    println!("top delay angel-flows:");
    for (angel, qor) in report.selection.angel_flows.iter().zip(report.angel_qors()) {
        println!(
            "  delay {:>7.1} ps  conf {:.2}  {}",
            qor.delay_ps, angel.confidence, angel.flow
        );
    }
    println!("devil-flows (worst delay, useful for diagnosing weak transformations):");
    for (devil, qor) in report
        .selection
        .devil_flows
        .iter()
        .zip(report.devil_qors())
        .take(3)
    {
        println!(
            "  delay {:>7.1} ps  conf {:.2}  {}",
            qor.delay_ps, devil.confidence, devil.flow
        );
    }
    println!("\nevaluation engine: {}", report.eval_stats);
}
