//! Design I/O: export a generated benchmark, re-import it, and show that the
//! evaluation engine produces bit-identical QoR on both sides of the disk
//! boundary — the library-level analogue of what `flowc` does from the shell.
//!
//! ```text
//! cargo run --release --example design_io [path/to/design.{aag,aig,blif}]
//! ```
//!
//! With an argument, the imported netlist is used instead of the generated
//! ALU — any combinational AIGER or structural BLIF file works.

use aig::io::{render_design, Format};
use circuits::{Design, DesignScale};
use floweval::{EngineConfig, EvalEngine};
use flowgen::Flow;

fn main() {
    // 1. Obtain a design: imported from the command line, or generated.
    let arg = std::env::args().nth(1);
    let design = match &arg {
        Some(path) => aig::io::read_design(path).expect("readable design file"),
        None => Design::Alu64.generate(DesignScale::Tiny),
    };
    println!(
        "design: {} ({} inputs, {} outputs, {} ANDs)",
        design.name(),
        design.num_inputs(),
        design.num_outputs(),
        design.num_ands()
    );

    // 2. Round-trip the design through every interchange format in memory.
    let dir = std::env::temp_dir().join("flow-repro-design-io");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut reimported = Vec::new();
    for format in Format::ALL {
        let path = dir.join(format!("design.{format}"));
        std::fs::write(&path, render_design(&design, format)).expect("write design");
        let back = aig::io::read_design(&path).expect("re-read design");
        assert!(
            aig::random_equivalence_check(&design, &back, 8, 0x10),
            "{format} round trip must preserve the function"
        );
        println!(
            "  wrote + re-read {} ({} bytes)",
            path.display(),
            std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
        );
        reimported.push(back);
    }

    // 3. Evaluate the same flow on the original and every re-import: the
    //    engine's QoR is bit-identical because the graphs are.
    let engine = EvalEngine::new(EngineConfig::default());
    let flow = Flow::named("resyn2").expect("preset");
    let reference = engine.evaluate_batch(&design, &[flow.transforms().to_vec()])[0];
    println!("flow:   {flow}");
    println!("qor:    {reference}");
    for (format, back) in Format::ALL.iter().zip(&reimported) {
        let qor = engine.evaluate_batch(back, &[flow.transforms().to_vec()])[0];
        assert_eq!(qor, reference, "{format} re-import changed the QoR");
        println!("  via .{format}: identical QoR ✓");
    }
    let stats = engine.stats();
    println!(
        "engine: {} flows evaluated, {} store hits (re-imports share the cache)",
        stats.flows_evaluated, stats.store_hits
    );
}
