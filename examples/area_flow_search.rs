//! Area-driven angel-flow search: the paper's full pipeline on one design.
//!
//! Runs the autonomous framework (random flows -> QoR labelling -> CNN
//! classifier -> angel/devil selection) with laptop-scale parameters and prints
//! the discovered area-optimised flows.
//!
//! ```text
//! cargo run --release --example area_flow_search
//! ```

use circuits::{Design, DesignScale};
use flowgen::{Framework, FrameworkConfig};
use synth::QorMetric;

fn main() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let mut config = FrameworkConfig::laptop(QorMetric::Area);
    config.training_flows = 60;
    config.initial_flows = 30;
    config.retrain_interval = 15;
    config.sample_flows = 120;
    config.output_flows = 10;
    let framework = Framework::new(config);

    println!("searching area-driven flows for {} ...", design.name());
    let report = framework.run(&design);

    println!("\nincremental training rounds:");
    for round in &report.rounds {
        println!(
            "  {:>4} labelled flows  loss {:.3}  holdout accuracy {:.2}",
            round.labelled_flows, round.training_loss, round.holdout_accuracy
        );
    }

    let sample_mean = report.sample_qors.iter().map(|q| q.area_um2).sum::<f64>()
        / report.sample_qors.len().max(1) as f64;
    println!(
        "\nmean area over {} sample flows: {:.2} um^2",
        report.sample_qors.len(),
        sample_mean
    );
    println!("top area angel-flows:");
    for (angel, qor) in report.selection.angel_flows.iter().zip(report.angel_qors()) {
        println!(
            "  area {:>8.2} um^2  conf {:.2}  {}",
            qor.area_um2, angel.confidence, angel.flow
        );
    }
    if let Some(acc) = report.selection_accuracy {
        println!("selection accuracy (paper Section 4.1 definition): {acc:.2}");
    }
    println!("evaluation engine: {}", report.eval_stats);
}
