//! Quickstart: run one synthesis flow on a benchmark design and print its QoR.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use circuits::{Design, DesignScale};
use flowgen::Flow;
use synth::{FlowRunner, Transform};

fn main() {
    // 1. Generate a benchmark design (the 64-bit ALU at a laptop-friendly size).
    let design = Design::Alu64.generate(DesignScale::Tiny);
    println!(
        "design: {} ({} AND nodes, depth {})",
        design.name(),
        design.num_ands(),
        design.depth()
    );

    // 2. Describe a synthesis flow — the classic "resyn"-style ordering.
    let flow = Flow::new(vec![
        Transform::Balance,
        Transform::Rewrite,
        Transform::Refactor,
        Transform::Balance,
        Transform::RewriteZ,
        Transform::RefactorZ,
    ]);
    println!("flow:   {flow}");

    // 3. Run it: apply every pass, map to the 14nm-like cell library, report QoR.
    let runner = FlowRunner::new().with_verification(true);
    let outcome = runner.run(&design, flow.transforms());
    println!("result: {}", outcome.qor);
    println!("optimized network: {}", outcome.optimized);
    println!("functionally verified: {}", outcome.verified);
}
