#!/usr/bin/env python3
"""Assert that two `flowc run` reports agree on QoR.

Used by the end-to-end CI smoke: one report comes from evaluating an
**exported** AIGER fixture, the other from the same design **generated
in-process** — their `qor` sections (and design fingerprints) must be
identical, proving that the design survived the export/import boundary and
that `flowc` reproduces the in-process `floweval` result exactly.

Run-dependent sections (`eval` wall time and cache statistics, `design.source`)
are deliberately not compared.

Usage:  compare_qor.py <report_a.json> <report_b.json>
"""

import json
import sys


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as handle:
        a = json.load(handle)
    with open(sys.argv[2]) as handle:
        b = json.load(handle)

    failures = []
    if a["qor"] != b["qor"]:
        failures.append(f"qor differs:\n  {sys.argv[1]}: {a['qor']}\n  {sys.argv[2]}: {b['qor']}")
    for field in ("fingerprint", "inputs", "outputs", "ands", "depth"):
        if a["design"][field] != b["design"][field]:
            failures.append(
                f"design.{field} differs: {a['design'][field]} != {b['design'][field]}"
            )
    if a["flow"]["script"] != b["flow"]["script"]:
        failures.append(f"flow differs: {a['flow']['script']} != {b['flow']['script']}")

    if failures:
        for failure in failures:
            print(f"QoR mismatch: {failure}")
        return 1
    print(f"QoR match: {a['qor']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
