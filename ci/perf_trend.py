#!/usr/bin/env python3
"""Perf-trend check: diff a perf report's speedup ratios against a baseline.

Compares the per-item ``speedup`` fields of a freshly produced bench report
(``BENCH_PR2.ci.json`` / ``BENCH_PR3.ci.json``) against the checked-in
baseline and emits GitHub Actions ``::warning::`` annotations for items whose
speedup regressed by more than the tolerance (default 30%).

This check is intentionally **non-blocking**: shared CI runners have noisy
timings, so regressions surface as annotations for a human to read, never as
a red build.  The script always exits 0 unless its inputs are unreadable.

The compared metric defaults to ``speedup`` (higher is better); service
reports trend on throughput instead with ``--metric req_per_s``.

Usage:
    perf_trend.py --label PR2 --key design,flow \
        --baseline ci/baselines/BENCH_PR2.baseline.json \
        --current BENCH_PR2.ci.json [--tolerance 0.30] [--metric speedup]
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as handle:
        return json.load(handle)


def item_key(item, fields):
    return tuple(str(item.get(field, "?")) for field in fields)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="report name used in annotations")
    parser.add_argument("--key", required=True, help="comma-separated item-identity fields")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument(
        "--metric",
        default="speedup",
        help="item/report field to trend on; higher is better (default: speedup)",
    )
    args = parser.parse_args()

    if not os.path.exists(args.current):
        # The perf-smoke step did not produce a report (it, or an earlier
        # step, failed first).  That failure is already red on its own; this
        # step stays non-blocking instead of doubling the noise.
        print(f"perf-trend {args.label}: {args.current} not produced, skipping trend check")
        return 0
    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, json.JSONDecodeError) as error:
        # A corrupt/unreadable report or baseline is a real CI wiring failure.
        print(f"::error::perf-trend {args.label}: cannot read reports: {error}")
        return 1

    fields = args.key.split(",")
    baseline_items = {item_key(i, fields): i for i in baseline.get("items", [])}
    current_items = {item_key(i, fields): i for i in current.get("items", [])}

    warnings = 0
    for key, base in sorted(baseline_items.items()):
        name = "/".join(key)
        cur = current_items.get(key)
        if cur is None:
            print(f"::warning::perf-trend {args.label}: item {name} missing from current report")
            warnings += 1
            continue
        base_value = base.get(args.metric, 0.0)
        cur_value = cur.get(args.metric, 0.0)
        floor = base_value * (1.0 - args.tolerance)
        if cur_value < floor:
            print(
                f"::warning::perf-trend {args.label}: {name} {args.metric} regressed "
                f"{base_value:.2f} -> {cur_value:.2f} "
                f"(more than {args.tolerance:.0%} below baseline)"
            )
            warnings += 1
        else:
            print(
                f"perf-trend {args.label}: {name} {args.metric} {cur_value:.2f} "
                f"(baseline {base_value:.2f}) ok"
            )
    for key in sorted(set(current_items) - set(baseline_items)):
        print(
            f"perf-trend {args.label}: new item {'/'.join(key)} has no baseline "
            "(update ci/baselines/ when intentional)"
        )

    # Overall ratio, when both reports carry one (the PR3 report does).
    if args.metric in baseline and args.metric in current:
        floor = baseline[args.metric] * (1.0 - args.tolerance)
        if current[args.metric] < floor:
            print(
                f"::warning::perf-trend {args.label}: total {args.metric} regressed "
                f"{baseline[args.metric]:.2f} -> {current[args.metric]:.2f}"
            )
            warnings += 1

    print(f"perf-trend {args.label}: {warnings} warning(s), non-blocking")
    return 0


if __name__ == "__main__":
    sys.exit(main())
