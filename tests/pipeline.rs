//! End-to-end integration test of the full reproduction pipeline:
//! design generation -> flow sampling -> synthesis + mapping -> labelling ->
//! CNN training -> angel/devil selection.

use circuits::{Design, DesignScale};
use flowgen::{
    select_angel_devil_flows, ClassifierConfig, Dataset, FlowClassifier, FlowEncoder, FlowSpace,
    Framework, FrameworkConfig, Labeler,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use synth::{FlowRunner, QorMetric, Transform};

#[test]
fn manual_pipeline_produces_consistent_artifacts() {
    // 1. Design and flow sampling.
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let space = FlowSpace::paper();
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let flows = space.random_unique_flows(30, &mut rng);
    assert!(flows.iter().all(|f| f.is_m_repetition(6, 4)));

    // 2. QoR collection.
    let runner = FlowRunner::new();
    let seqs: Vec<Vec<Transform>> = flows.iter().map(|f| f.transforms().to_vec()).collect();
    let qors = runner.run_batch(&design, &seqs);
    assert_eq!(qors.len(), flows.len());
    assert!(qors.iter().all(|q| q.area_um2 > 0.0 && q.delay_ps > 0.0));

    // 3. Labelling (Table 1 percentile model).
    let labeler = Labeler::paper_model(QorMetric::Area, &qors);
    assert_eq!(labeler.num_classes(), 7);
    let dataset = Dataset::from_evaluations(flows.clone(), qors.clone(), &labeler);
    let hist = dataset.class_histogram(7);
    assert_eq!(hist.iter().sum::<usize>(), 30);
    assert!(hist[0] >= 1, "some flows must land in the best class");

    // 4. CNN training on the labelled flows.
    let config = ClassifierConfig {
        num_kernels: 4,
        dense_units: 16,
        ..ClassifierConfig::default()
    };
    let mut classifier = FlowClassifier::new(FlowEncoder::paper(), config);
    let loss = classifier.train(&dataset, 60);
    assert!(loss.is_finite() && loss > 0.0);

    // 5. Selection over a fresh sample pool.
    let samples = space.random_unique_flows(40, &mut rng);
    let probs = classifier.predict_proba(&samples);
    assert_eq!(probs.shape(), &[40, 7]);
    let selection = select_angel_devil_flows(&samples, &probs, 5);
    assert!(selection.angel_flows.len() <= 5);
    assert!(selection.devil_flows.len() <= 5);
    for s in selection.angel_flows.iter().chain(&selection.devil_flows) {
        assert!(s.index < samples.len());
        assert!((0.0..=1.0).contains(&(s.confidence as f64)));
    }
}

#[test]
fn framework_report_is_internally_consistent() {
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let config = FrameworkConfig {
        training_flows: 20,
        initial_flows: 10,
        retrain_interval: 10,
        steps_per_round: 25,
        sample_flows: 24,
        output_flows: 4,
        classifier: ClassifierConfig {
            num_kernels: 2,
            dense_units: 8,
            ..ClassifierConfig::default()
        },
        ..FrameworkConfig::laptop(QorMetric::Delay)
    };
    let report = Framework::new(config).run(&design);
    assert_eq!(report.metric, QorMetric::Delay);
    assert_eq!(report.dataset.len(), 20);
    assert_eq!(report.sample_qors.len(), 24);
    assert_eq!(report.sample_labels.len(), 24);
    // Every selected flow references a valid sample index with a known label.
    for s in report
        .selection
        .angel_flows
        .iter()
        .chain(&report.selection.devil_flows)
    {
        assert!(s.index < 24);
        assert!(report.sample_labels[s.index] < 7);
    }
    // The accuracy value follows the paper's definition and is a fraction.
    let acc = report.selection_accuracy.expect("samples were evaluated");
    assert!((0.0..=1.0).contains(&acc));
}
