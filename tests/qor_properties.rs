//! Property-style integration tests over the flow space, encoding, labelling
//! and synthesis QoR invariants.
//!
//! The properties are checked over seeded random cases (no external
//! property-testing framework is available offline); failures print the
//! offending case so it can be pinned as a regression test.

use circuits::{Design, DesignScale};
use flowgen::{Flow, FlowEncoder, FlowSpace, Labeler};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use synth::{FlowRunner, QorMetric, Transform};

/// Draws an arbitrary (possibly short) flow of at most `max_len` steps.
fn arb_flow(max_len: usize, rng: &mut ChaCha8Rng) -> Flow {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| Transform::from_index(rng.gen_range(0..Transform::COUNT)))
        .collect()
}

#[test]
fn script_roundtrip_for_arbitrary_flows() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51);
    for case in 0..16 {
        let flow = arb_flow(24, &mut rng);
        let script = flow.to_script();
        let parsed = Flow::parse_script(&script).expect("round-trip");
        assert_eq!(parsed, flow, "case {case}: script `{script}`");
    }
}

#[test]
fn one_hot_encoding_has_one_bit_per_step() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x52);
    for case in 0..16 {
        let flow = arb_flow(24, &mut rng);
        if flow.is_empty() {
            continue;
        }
        let encoder = FlowEncoder::new(Transform::COUNT, flow.len(), false);
        let t = encoder.encode(&flow);
        assert_eq!(t.sum() as usize, flow.len(), "case {case}");
        for row in 0..flow.len() {
            let ones: f32 = (0..Transform::COUNT)
                .map(|c| t.data()[row * Transform::COUNT + c])
                .sum();
            assert_eq!(ones as usize, 1, "case {case}, row {row}");
        }
    }
}

#[test]
fn labeler_classes_are_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x53);
    for case in 0..16 {
        let n = rng.gen_range(10..60);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1000.0)).collect();
        let labeler =
            Labeler::from_percentiles(QorMetric::Area, &values, &flowgen::PAPER_PERCENTILES);
        let probe: f64 = rng.gen_range(0.0..1200.0);
        let class = labeler.classify_value(probe);
        assert!(class < labeler.num_classes(), "case {case}");
        // A strictly larger value never gets a strictly better (smaller) class.
        let worse = labeler.classify_value(probe + 1.0);
        assert!(worse >= class, "case {case}: probe {probe}");
    }
}

#[test]
fn partial_flow_counts_are_monotone_in_length() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x54);
    for case in 0..16 {
        let n = rng.gen_range(2..=5usize);
        let m = rng.gen_range(1..=3usize);
        let space = FlowSpace::new(n, m);
        let mut last = 1u128;
        for length in 1..=(n * m) {
            let count = space.num_partial_flows(length);
            assert!(
                count >= last || length == n * m,
                "case {case} (n={n}, m={m}): counts should grow until the space saturates"
            );
            last = count;
        }
    }
}

#[test]
fn short_random_flows_yield_positive_qor() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let runner = FlowRunner::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x55);
    for case in 0..4 {
        let flow = arb_flow(3, &mut rng);
        let outcome = runner.run(&design, flow.transforms());
        assert!(outcome.qor.area_um2 > 0.0, "case {case}: {flow}");
        assert!(outcome.qor.delay_ps > 0.0, "case {case}: {flow}");
        assert!(outcome.qor.gates > 0, "case {case}: {flow}");
    }
}
