//! Property-based integration tests over the flow space, encoding, labelling
//! and synthesis QoR invariants.

use circuits::{Design, DesignScale};
use flowgen::{Flow, FlowEncoder, FlowSpace, Labeler};
use proptest::prelude::*;
use synth::{FlowRunner, QorMetric, Transform};

/// Strategy producing an arbitrary (possibly short) flow.
fn arb_flow(max_len: usize) -> impl Strategy<Value = Flow> {
    prop::collection::vec(0usize..Transform::COUNT, 0..=max_len)
        .prop_map(|idx| Flow::new(idx.into_iter().map(Transform::from_index).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn script_roundtrip_for_arbitrary_flows(flow in arb_flow(24)) {
        let script = flow.to_script();
        let parsed = Flow::parse_script(&script).expect("round-trip");
        prop_assert_eq!(parsed, flow);
    }

    #[test]
    fn one_hot_encoding_has_one_bit_per_step(flow in arb_flow(24)) {
        let encoder = FlowEncoder::new(Transform::COUNT, flow.len(), false);
        if flow.is_empty() {
            return Ok(());
        }
        let t = encoder.encode(&flow);
        prop_assert_eq!(t.sum() as usize, flow.len());
        for row in 0..flow.len() {
            let ones: f32 = (0..Transform::COUNT).map(|c| t.data()[row * Transform::COUNT + c]).sum();
            prop_assert_eq!(ones as usize, 1);
        }
    }

    #[test]
    fn labeler_classes_are_monotone(values in prop::collection::vec(1.0f64..1000.0, 10..60), probe in 0.0f64..1200.0) {
        let labeler = Labeler::from_percentiles(QorMetric::Area, &values, &flowgen::PAPER_PERCENTILES);
        let class = labeler.classify_value(probe);
        prop_assert!(class < labeler.num_classes());
        // A strictly larger value never gets a strictly better (smaller) class.
        let worse = labeler.classify_value(probe + 1.0);
        prop_assert!(worse >= class);
    }

    #[test]
    fn partial_flow_counts_are_monotone_in_length(n in 2usize..=5, m in 1usize..=3) {
        let space = FlowSpace::new(n, m);
        let mut last = 1u128;
        for length in 1..=(n * m) {
            let count = space.num_partial_flows(length);
            prop_assert!(count >= last || length == n * m,
                "counts should grow until the space saturates");
            last = count;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn short_random_flows_yield_positive_qor(flow in arb_flow(3)) {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let runner = FlowRunner::new();
        let outcome = runner.run(&design, flow.transforms());
        prop_assert!(outcome.qor.area_um2 > 0.0);
        prop_assert!(outcome.qor.delay_ps > 0.0);
        prop_assert!(outcome.qor.gates > 0);
    }
}
