//! Determinism of parallel batch evaluation: `FlowRunner::run_batch` (and the
//! floweval engine built on top of it) must return the same values in the
//! same order regardless of the worker-thread count.

use circuits::{Design, DesignScale};
use floweval::EvalEngine;
use flowgen::FlowSpace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use synth::{FlowRunner, Qor, Transform};

/// Property test over several seeds and thread counts.  All thread-count
/// variations run inside this single `#[test]` because `RAYON_NUM_THREADS`
/// is process-global state and the default test harness runs tests
/// concurrently.
#[test]
fn run_batch_is_independent_of_thread_count() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let runner = FlowRunner::new();
    let space = FlowSpace::new(6, 1);

    for seed in [1u64, 7, 42] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flows: Vec<Vec<Transform>> = space
            .random_unique_flows(10, &mut rng)
            .iter()
            .map(|f| f.transforms().to_vec())
            .collect();

        // Pin the thread count through the pool API (portable between the
        // vendored rayon stand-in and upstream rayon, which reads
        // RAYON_NUM_THREADS only once at global-pool creation).
        let mut per_thread_count: Vec<Vec<Qor>> = Vec::new();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            per_thread_count.push(pool.install(|| runner.run_batch(&design, &flows)));
        }
        let reference = &per_thread_count[0];
        for (i, result) in per_thread_count.iter().enumerate().skip(1) {
            assert_eq!(
                result, reference,
                "seed {seed}: thread-count variant {i} changed order or values"
            );
        }

        // The engine path must agree with the single-threaded runner too.
        let engine = EvalEngine::default();
        assert_eq!(
            &engine.evaluate_batch(&design, &flows),
            reference,
            "seed {seed}"
        );
    }
}
