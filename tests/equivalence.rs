//! Functional-correctness integration tests: every transformation and every
//! composed flow must preserve the combinational function of the designs.

use aig::random_equivalence_check;
use circuits::{Design, DesignScale};
use flowgen::FlowSpace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use synth::{apply_sequence, Transform};

#[test]
fn every_transform_preserves_every_design() {
    for design in Design::ALL {
        let g = design.generate(DesignScale::Tiny);
        for t in Transform::ALL {
            let out = t.apply(&g);
            assert!(
                random_equivalence_check(&g, &out, 4, 0xE0 + t.index() as u64),
                "{t} broke {design}"
            );
        }
    }
}

#[test]
fn random_full_length_flows_preserve_function() {
    let space = FlowSpace::paper();
    let mut rng = ChaCha8Rng::seed_from_u64(0xE0E0);
    let design = Design::Alu64.generate(DesignScale::Tiny);
    for _ in 0..2 {
        let flow = space.random_flow(&mut rng);
        let out = apply_sequence(&design, flow.transforms());
        assert!(
            random_equivalence_check(&design, &out, 4, 0xBEEF),
            "flow `{flow}` broke the design"
        );
    }
}

#[test]
fn flows_never_increase_size_catastrophically() {
    // Strict passes only shrink; -z passes may move sideways.  A full flow must
    // never blow the network up.
    let space = FlowSpace::paper();
    let mut rng = ChaCha8Rng::seed_from_u64(0xE0E1);
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let baseline = design.cleanup().num_ands();
    let flow = space.random_flow(&mut rng);
    let out = apply_sequence(&design, flow.transforms());
    assert!(
        out.num_ands() <= baseline + baseline / 5,
        "flow `{flow}` grew the network: {} -> {}",
        baseline,
        out.num_ands()
    );
}
