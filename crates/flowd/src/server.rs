//! The daemon core: listener, bounded queue, worker pool, graceful drain.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use floweval::{EngineConfig, EvalEngine};
use httpwire::{read_request, write_response, HttpError, Limits, Response};
use synth::PassContext;

use crate::protocol;

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads; each owns one long-lived [`PassContext`].
    pub workers: usize,
    /// Connections allowed to wait for a worker before new ones get `503`.
    pub queue_capacity: usize,
    /// A connection that waited longer than this is rejected (`503` +
    /// `Retry-After`) when a worker picks it up.
    pub request_timeout_ms: u64,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_idle_ms: u64,
    /// Requests served per connection before the daemon forces a reconnect
    /// (keeps long-lived clients from pinning a worker forever).
    pub max_keepalive_requests: usize,
    /// Largest accepted request body (the design netlist).
    pub max_body_bytes: usize,
    /// Engine configuration (store path, verification, cache budgets).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_capacity: 64,
            request_timeout_ms: 5_000,
            keep_alive_idle_ms: 2_000,
            max_keepalive_requests: 256,
            max_body_bytes: 8 * 1024 * 1024,
            engine: EngineConfig::default(),
        }
    }
}

/// Monotonic service counters (lock-free; exposed through `/stats`).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) requests_received: AtomicU64,
    pub(crate) requests_served: AtomicU64,
    pub(crate) rejected_queue_full: AtomicU64,
    pub(crate) rejected_wait_timeout: AtomicU64,
    pub(crate) client_errors: AtomicU64,
    pub(crate) handler_panics: AtomicU64,
}

/// One accepted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared by the acceptor, the workers and `/stats`.
pub(crate) struct Shared {
    pub(crate) engine: EvalEngine,
    pub(crate) config: ServerConfig,
    pub(crate) counters: Counters,
    pub(crate) busy_workers: AtomicUsize,
    pub(crate) started: Instant,
    pub(crate) draining: AtomicBool,
    pub(crate) addr: OnceLock<SocketAddr>,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

impl Shared {
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    /// Starts the graceful drain: no new connections, queued work finishes.
    pub(crate) fn initiate_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        self.job_ready.notify_all();
        // The acceptor blocks in `accept()`; poke it awake so it can exit.
        if let Some(addr) = self.addr.get() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(250));
        }
    }
}

/// A running daemon.  Dropping the handle does **not** stop the service;
/// call [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and worker threads.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let engine = EvalEngine::new(config.engine.clone());
        let shared = Arc::new(Shared {
            engine,
            config,
            counters: Counters::default(),
            busy_workers: AtomicUsize::new(0),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            addr: OnceLock::new(),
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });
        shared.addr.set(addr).expect("addr set once");

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flowd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("flowd-acceptor".to_string())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        *self.shared.addr.get().expect("addr set at start")
    }

    /// The engine behind the service (handy for in-process comparisons).
    pub fn engine(&self) -> &EvalEngine {
        &self.shared.engine
    }

    /// Initiates the graceful drain (same as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.shared.initiate_drain();
    }

    /// Waits until acceptor and workers exit, then flushes the QoR store.
    pub fn join(mut self) -> std::io::Result<()> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.engine.flush_store()
    }
}

/// Accepts connections and applies admission control.
fn accept_loop(shared: &Shared, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // Whatever woke us (a real client or the drain self-connect)
            // gets a polite close if it was a real request.
            if let Ok(mut stream) = stream {
                let _ = write_response(&mut stream, &protocol::unavailable("draining"));
            }
            break;
        }
        let Ok(stream) = stream else { continue };
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            shared
                .counters
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = write_response(&mut stream, &protocol::unavailable("queue full"));
            continue;
        }
        queue.push_back(Job {
            stream,
            enqueued: Instant::now(),
        });
        drop(queue);
        shared.job_ready.notify_one();
    }
}

/// One worker: owns a recycling [`PassContext`] across all its requests.
fn worker_loop(shared: &Shared) {
    let mut pctx = PassContext::default();
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.job_ready.wait(queue).expect("queue lock");
            }
        };
        let Some(job) = job else { return };
        shared.busy_workers.fetch_add(1, Ordering::Relaxed);
        serve_connection(shared, job, &mut pctx);
        shared.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one connection until close, idle timeout or drain.
fn serve_connection(shared: &Shared, job: Job, pctx: &mut PassContext) {
    let mut writer = job.stream;
    if job.enqueued.elapsed() >= Duration::from_millis(shared.config.request_timeout_ms) {
        shared
            .counters
            .rejected_wait_timeout
            .fetch_add(1, Ordering::Relaxed);
        let _ = write_response(&mut writer, &protocol::unavailable("request timeout"));
        return;
    }
    let _ = writer.set_read_timeout(Some(Duration::from_millis(
        shared.config.keep_alive_idle_ms.max(1),
    )));
    let _ = writer.set_nodelay(true);
    let Ok(read_half) = writer.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let limits = Limits {
        max_body_bytes: shared.config.max_body_bytes,
        ..Limits::default()
    };
    let mut served = 0usize;
    loop {
        let request = match read_request(&mut reader, &limits) {
            Ok(request) => request,
            Err(HttpError::Closed { .. }) => return,
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return; // idle keep-alive connection
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::BadRequest(message)) => {
                shared
                    .counters
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &protocol::error_response(400, "bad-request", &message)
                        .with_header("connection", "close"),
                );
                return;
            }
            Err(HttpError::TooLarge(message)) => {
                shared
                    .counters
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &protocol::error_response(413, "too-large", &message)
                        .with_header("connection", "close"),
                );
                return;
            }
        };
        shared
            .counters
            .requests_received
            .fetch_add(1, Ordering::Relaxed);
        let mut response = dispatch(shared, &request, pctx);
        served += 1;
        let closing = shared.draining.load(Ordering::SeqCst)
            || served >= shared.config.max_keepalive_requests
            || request.wants_close()
            || response.closes_connection();
        if closing {
            response = response.with_header("connection", "close");
        }
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        shared
            .counters
            .requests_served
            .fetch_add(1, Ordering::Relaxed);
        if closing {
            return;
        }
    }
}

/// Routes one request, converting handler panics into `500`s so a poisoned
/// request can never thin out the worker pool.
fn dispatch(shared: &Shared, request: &httpwire::Request, pctx: &mut PassContext) -> Response {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        protocol::handle(shared, request, pctx)
    }));
    match outcome {
        Ok(response) => response,
        Err(_) => {
            // The context may hold arbitrary intermediate state; discard it.
            *pctx = PassContext::default();
            shared
                .counters
                .handler_panics
                .fetch_add(1, Ordering::Relaxed);
            protocol::error_response(500, "internal", "request handler panicked")
                .with_header("connection", "close")
        }
    }
}
