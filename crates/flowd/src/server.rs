//! The daemon core: listener, bounded queue, worker pool, graceful drain.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use flow_core::CancelToken;
use floweval::{EngineConfig, EvalEngine};
use httpwire::{read_request, write_response, HttpError, Limits, Response};
use synth::PassContext;

use crate::protocol;

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads; each owns one long-lived [`PassContext`].
    pub workers: usize,
    /// Connections allowed to wait for a worker before new ones get `503`.
    pub queue_capacity: usize,
    /// A connection that waited longer than this is rejected (`503` +
    /// `Retry-After`) when a worker picks it up.
    pub request_timeout_ms: u64,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_idle_ms: u64,
    /// Requests served per connection before the daemon forces a reconnect
    /// (keeps long-lived clients from pinning a worker forever).
    pub max_keepalive_requests: usize,
    /// Largest accepted request body (the design netlist).
    pub max_body_bytes: usize,
    /// Per-request evaluation deadline.  A request may lower it with the
    /// `deadline_ms` query parameter but never raise it.  An evaluation past
    /// its deadline unwinds cooperatively and answers `504`.
    pub deadline_ms: u64,
    /// Extra time past the deadline before the watchdog declares a worker
    /// wedged (cancellation ignored), answers `504` on its behalf, and
    /// replaces it with a fresh thread + context.
    pub watchdog_grace_ms: u64,
    /// Watchdog polling period.
    pub watchdog_poll_ms: u64,
    /// Period of the store probe the watchdog thread drives: a degraded
    /// store (persistent append failure) retries a real write this often and
    /// auto-recovers once the disk is back.
    pub store_probe_ms: u64,
    /// Engine configuration (store path, verification, cache budgets).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_capacity: 64,
            request_timeout_ms: 5_000,
            keep_alive_idle_ms: 2_000,
            max_keepalive_requests: 256,
            max_body_bytes: 8 * 1024 * 1024,
            deadline_ms: 10_000,
            watchdog_grace_ms: 100,
            watchdog_poll_ms: 20,
            store_probe_ms: 500,
            engine: EngineConfig::default(),
        }
    }
}

/// Monotonic service counters (lock-free; exposed through `/stats`).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) requests_received: AtomicU64,
    pub(crate) requests_served: AtomicU64,
    pub(crate) rejected_queue_full: AtomicU64,
    pub(crate) rejected_wait_timeout: AtomicU64,
    pub(crate) client_errors: AtomicU64,
    pub(crate) handler_panics: AtomicU64,
    /// `504` responses written, cooperative or by the watchdog.
    pub(crate) deadline_exceeded: AtomicU64,
    /// Evaluations unwound by an explicit `CancelToken::cancel()`.
    pub(crate) cancelled: AtomicU64,
    /// Wedged workers retired and replaced by the watchdog.
    pub(crate) watchdog_restarts: AtomicU64,
}

/// One accepted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

/// The request a worker is currently evaluating, as seen by the watchdog.
///
/// Exactly one party answers the client: whoever `take()`s the slot under
/// its lock owns the response.  The worker takes it on (timely) completion;
/// the watchdog takes it once `hard_kill` passes without an answer.
struct ActiveRequest {
    /// Write-half clone; the watchdog answers `504` on it and shuts it down.
    stream: TcpStream,
    /// Deadline + grace: past this instant the worker counts as wedged.
    hard_kill: Instant,
    /// The request's token, re-cancelled at hijack so the stuck evaluation
    /// unwinds whenever its stall finally ends.
    token: CancelToken,
}

/// Per-worker supervision state.  Slots are fixed at startup; a replacement
/// worker inherits the slot of the thread it retires.
pub(crate) struct WorkerSlot {
    active: Mutex<Option<ActiveRequest>>,
    /// Bumped on every replacement; a thread whose spawn generation is stale
    /// has been superseded and exits instead of looping.
    generation: AtomicU64,
}

/// A worker thread handle plus the slot generation it was spawned for, so
/// `join` can tell live threads from retired (possibly wedged) ones.
struct WorkerHandle {
    slot: usize,
    generation: u64,
    handle: std::thread::JoinHandle<()>,
}

/// State shared by the acceptor, the workers, the watchdog and `/stats`.
pub(crate) struct Shared {
    pub(crate) engine: EvalEngine,
    pub(crate) config: ServerConfig,
    pub(crate) counters: Counters,
    pub(crate) busy_workers: AtomicUsize,
    pub(crate) started: Instant,
    pub(crate) draining: AtomicBool,
    pub(crate) addr: OnceLock<SocketAddr>,
    slots: Vec<WorkerSlot>,
    worker_handles: Mutex<Vec<WorkerHandle>>,
    watchdog_stop: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

impl Shared {
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    /// Starts the graceful drain: no new connections, queued work finishes.
    pub(crate) fn initiate_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        self.job_ready.notify_all();
        // The acceptor blocks in `accept()`; poke it awake so it can exit.
        if let Some(addr) = self.addr.get() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(250));
        }
    }
}

/// A running daemon.  Dropping the handle does **not** stop the service;
/// call [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns acceptor, workers and watchdog.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let engine = EvalEngine::new(config.engine.clone());
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            config,
            counters: Counters::default(),
            busy_workers: AtomicUsize::new(0),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            addr: OnceLock::new(),
            slots: (0..worker_count)
                .map(|_| WorkerSlot {
                    active: Mutex::new(None),
                    generation: AtomicU64::new(0),
                })
                .collect(),
            worker_handles: Mutex::new(Vec::new()),
            watchdog_stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });
        shared.addr.set(addr).expect("addr set once");

        for slot in 0..worker_count {
            spawn_worker(&shared, slot, 0);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("flowd-acceptor".to_string())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn acceptor")
        };
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("flowd-watchdog".to_string())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog")
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        *self.shared.addr.get().expect("addr set at start")
    }

    /// The engine behind the service (handy for in-process comparisons).
    pub fn engine(&self) -> &EvalEngine {
        &self.shared.engine
    }

    /// Initiates the graceful drain (same as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.shared.initiate_drain();
    }

    /// Waits until acceptor and workers exit, then flushes the QoR store.
    ///
    /// Workers retired by the watchdog may be wedged in an evaluation that
    /// ignores cancellation; those are given a short window and then
    /// detached (safe Rust cannot kill a thread), so drain never hangs on a
    /// poisoned worker.
    pub fn join(mut self) -> std::io::Result<()> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The watchdog may still retire workers and push replacement handles
        // while we drain, so join in batches until the registry is empty.
        loop {
            let batch: Vec<WorkerHandle> = {
                let mut handles = self.shared.worker_handles.lock().expect("handles lock");
                handles.drain(..).collect()
            };
            if batch.is_empty() {
                break;
            }
            for worker in batch {
                self.join_worker(worker);
            }
        }
        self.shared.watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        // Replacements spawned in the stop window exit on their own (drain).
        let stragglers: Vec<WorkerHandle> = {
            let mut handles = self.shared.worker_handles.lock().expect("handles lock");
            handles.drain(..).collect()
        };
        for worker in stragglers {
            self.join_worker(worker);
        }
        // Drain-time durability barrier: every acknowledged record is
        // fsynced and the manifest rewritten before the process exits.
        self.shared.engine.checkpoint_store()
    }

    /// Joins a live worker; bounds the wait for a superseded one.
    fn join_worker(&self, worker: WorkerHandle) {
        let current = self.shared.slots[worker.slot]
            .generation
            .load(Ordering::SeqCst);
        if worker.generation == current {
            let _ = worker.handle.join();
            return;
        }
        for _ in 0..50 {
            if worker.handle.is_finished() {
                let _ = worker.handle.join();
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Still wedged: detach.  The thread holds only its own context.
        drop(worker.handle);
    }
}

/// Accepts connections and applies admission control.
fn accept_loop(shared: &Shared, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // Whatever woke us (a real client or the drain self-connect)
            // gets a polite close if it was a real request.
            if let Ok(mut stream) = stream {
                let _ = write_response(&mut stream, &protocol::unavailable(shared, "draining"));
            }
            break;
        }
        let Ok(stream) = stream else { continue };
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            shared
                .counters
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = write_response(&mut stream, &protocol::unavailable(shared, "queue full"));
            continue;
        }
        queue.push_back(Job {
            stream,
            enqueued: Instant::now(),
        });
        drop(queue);
        shared.job_ready.notify_one();
    }
}

/// Spawns a worker thread bound to `slot` and registers its handle.
fn spawn_worker(shared: &Arc<Shared>, slot: usize, generation: u64) {
    let thread_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("flowd-worker-{slot}-g{generation}"))
        .spawn(move || worker_loop(&thread_shared, slot, generation))
        .expect("spawn worker");
    shared
        .worker_handles
        .lock()
        .expect("handles lock")
        .push(WorkerHandle {
            slot,
            generation,
            handle,
        });
}

/// One worker: owns a recycling [`PassContext`] across all its requests.
///
/// A worker whose spawn `generation` no longer matches its slot has been
/// retired by the watchdog; it exits as soon as it regains control.
fn worker_loop(shared: &Shared, slot: usize, generation: u64) {
    let mut pctx = PassContext::default();
    loop {
        if shared.slots[slot].generation.load(Ordering::SeqCst) != generation {
            return; // superseded while stalled
        }
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.job_ready.wait(queue).expect("queue lock");
            }
        };
        let Some(job) = job else { return };
        shared.busy_workers.fetch_add(1, Ordering::Relaxed);
        let hijacked = serve_connection(shared, job, &mut pctx, slot);
        shared.busy_workers.fetch_sub(1, Ordering::Relaxed);
        if hijacked {
            return; // the watchdog answered for us and spawned a successor
        }
    }
}

/// Supervises the workers: a request past `deadline + grace` whose worker
/// has not answered is hijacked — the client gets `504` on the watchdog's
/// thread, the wedged worker is retired, and a fresh worker (with a fresh
/// [`PassContext`]) takes over its slot.
fn watchdog_loop(shared: &Arc<Shared>) {
    let poll = Duration::from_millis(shared.config.watchdog_poll_ms.max(1));
    let probe_every = Duration::from_millis(shared.config.store_probe_ms.max(1));
    let mut last_probe = Instant::now();
    while !shared.watchdog_stop.load(Ordering::SeqCst) {
        std::thread::sleep(poll);
        // The same supervision thread doubles as the store's recovery
        // driver: a no-op while healthy, a real probe write while degraded.
        if last_probe.elapsed() >= probe_every {
            last_probe = Instant::now();
            let _ = shared.engine.probe_store();
        }
        for (slot_idx, slot) in shared.slots.iter().enumerate() {
            let hijacked = {
                let mut active = slot.active.lock().expect("slot lock");
                match active.as_ref() {
                    Some(request) if Instant::now() >= request.hard_kill => active.take(),
                    _ => None,
                }
            };
            let Some(request) = hijacked else { continue };
            // Re-cancel so the stuck evaluation unwinds when its stall ends;
            // the zombie thread then notices the generation bump and exits.
            request.token.cancel();
            let mut stream = request.stream;
            let _ = write_response(
                &mut stream,
                &protocol::error_response(
                    504,
                    "deadline",
                    "evaluation exceeded the request deadline",
                )
                .with_header("connection", "close"),
            );
            let _ = stream.shutdown(std::net::Shutdown::Both);
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .watchdog_restarts
                .fetch_add(1, Ordering::Relaxed);
            let generation = slot.generation.fetch_add(1, Ordering::SeqCst) + 1;
            spawn_worker(shared, slot_idx, generation);
        }
    }
}

/// Serves one connection until close, idle timeout or drain.  Returns `true`
/// when the watchdog hijacked a request on this connection (the calling
/// worker has been retired and must exit).
fn serve_connection(shared: &Shared, job: Job, pctx: &mut PassContext, slot: usize) -> bool {
    let mut writer = job.stream;
    if job.enqueued.elapsed() >= Duration::from_millis(shared.config.request_timeout_ms) {
        shared
            .counters
            .rejected_wait_timeout
            .fetch_add(1, Ordering::Relaxed);
        let _ = write_response(
            &mut writer,
            &protocol::unavailable(shared, "request timeout"),
        );
        return false;
    }
    let _ = writer.set_read_timeout(Some(Duration::from_millis(
        shared.config.keep_alive_idle_ms.max(1),
    )));
    let _ = writer.set_nodelay(true);
    let Ok(read_half) = writer.try_clone() else {
        return false;
    };
    let mut reader = BufReader::new(read_half);
    let limits = Limits {
        max_body_bytes: shared.config.max_body_bytes,
        ..Limits::default()
    };
    let mut served = 0usize;
    loop {
        let request = match read_request(&mut reader, &limits) {
            Ok(request) => request,
            Err(HttpError::Closed { .. }) => return false,
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return false; // idle keep-alive connection
            }
            Err(HttpError::Io(_)) => return false,
            Err(HttpError::BadRequest(message)) => {
                shared
                    .counters
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &protocol::error_response(400, "bad-request", &message)
                        .with_header("connection", "close"),
                );
                return false;
            }
            Err(HttpError::TooLarge(message)) => {
                shared
                    .counters
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &protocol::error_response(413, "too-large", &message)
                        .with_header("connection", "close"),
                );
                return false;
            }
        };
        shared
            .counters
            .requests_received
            .fetch_add(1, Ordering::Relaxed);
        // Effective deadline: a request may lower the server default with
        // `deadline_ms` but never raise it.
        let deadline_ms = match request.query_param("deadline_ms").as_deref() {
            None => shared.config.deadline_ms,
            Some(value) => match value.parse::<u64>() {
                Ok(n) if n >= 1 => n.min(shared.config.deadline_ms),
                _ => {
                    shared
                        .counters
                        .client_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(
                        &mut writer,
                        &protocol::error_response(
                            400,
                            "deadline",
                            "deadline_ms needs a positive integer",
                        )
                        .with_header("connection", "close"),
                    );
                    return false;
                }
            },
        };
        let token = CancelToken::with_deadline(Duration::from_millis(deadline_ms));
        let hard_kill = Instant::now()
            + Duration::from_millis(deadline_ms.saturating_add(shared.config.watchdog_grace_ms));
        let armed = match writer.try_clone() {
            Ok(stream) => {
                *shared.slots[slot].active.lock().expect("slot lock") = Some(ActiveRequest {
                    stream,
                    hard_kill,
                    token: token.clone(),
                });
                true
            }
            Err(_) => false, // no watchdog cover; cooperative cancel still works
        };
        let mut response = dispatch(shared, &request, pctx, &token);
        if armed
            && shared.slots[slot]
                .active
                .lock()
                .expect("slot lock")
                .take()
                .is_none()
        {
            // The watchdog answered the client and retired this worker.
            return true;
        }
        if response.status == 504 {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
        }
        served += 1;
        let closing = shared.draining.load(Ordering::SeqCst)
            || served >= shared.config.max_keepalive_requests
            || request.wants_close()
            || response.closes_connection();
        if closing {
            response = response.with_header("connection", "close");
        }
        if write_response(&mut writer, &response).is_err() {
            return false;
        }
        shared
            .counters
            .requests_served
            .fetch_add(1, Ordering::Relaxed);
        if closing {
            return false;
        }
    }
}

/// Routes one request, converting handler panics into `500`s so a poisoned
/// request can never thin out the worker pool.
fn dispatch(
    shared: &Shared,
    request: &httpwire::Request,
    pctx: &mut PassContext,
    cancel: &CancelToken,
) -> Response {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        protocol::handle(shared, request, pctx, cancel)
    }));
    match outcome {
        Ok(response) => response,
        Err(_) => {
            // The context may hold arbitrary intermediate state; discard it.
            *pctx = PassContext::default();
            shared
                .counters
                .handler_panics
                .fetch_add(1, Ordering::Relaxed);
            protocol::error_response(500, "internal", "request handler panicked")
                .with_header("connection", "close")
        }
    }
}
