//! Request routing and the `/run` handler: flowc's report schema over HTTP.

use std::sync::atomic::Ordering;

use aig::io::Format;
use aig::{random_equivalence_check, Aig};
use flow_core::{CancelReason, CancelToken, Cancelled};
use flowc::report::{DesignReport, ExportReport, FlowReport, RunReport, TimingReport};
use flowgen::{Flow, FlowSpace};
use httpwire::{Request, Response};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use synth::PassContext;

use crate::server::Shared;

/// Seed used for `verify=1` random-simulation checks; matches the engine's.
const VERIFY_SEED: u64 = 0x5EED;

/// The JSON error envelope every non-200 answer carries.
#[derive(Debug, Serialize)]
struct WireError {
    error: WireErrorBody,
}

#[derive(Debug, Serialize)]
struct WireErrorBody {
    kind: String,
    message: String,
}

/// Builds a JSON error response.
pub(crate) fn error_response(status: u16, kind: &str, message: &str) -> Response {
    let body = serde_json::to_string(&WireError {
        error: WireErrorBody {
            kind: kind.to_string(),
            message: message.to_string(),
        },
    })
    .unwrap_or_else(|_| "{\"error\":{\"kind\":\"internal\"}}".to_string());
    Response::json(status, body)
}

/// The `503` backpressure answer: retry shortly, on a fresh connection.
/// While the store is degraded the response also carries
/// `X-Flowd-Store: degraded`, so backing-off clients (`flowc submit`) can
/// report the cause in their annotations.
pub(crate) fn unavailable(shared: &Shared, reason: &str) -> Response {
    let response = error_response(503, "unavailable", reason)
        .with_header("retry-after", "1")
        .with_header("connection", "close");
    match shared.engine.store_mode() {
        floweval::StoreMode::Degraded => response.with_header("x-flowd-store", "degraded"),
        floweval::StoreMode::Ok => response,
    }
}

/// `/stats` payload.
#[derive(Debug, Serialize)]
struct StatsReport {
    uptime_s: f64,
    workers: WorkerStats,
    queue: QueueStats,
    requests: RequestStats,
    eval: floweval::EvalStats,
    store_hit_rate: f64,
    store_len: usize,
    store_mode: String,
    store: floweval::StoreSummary,
    cache: floweval::CacheSummary,
}

#[derive(Debug, Serialize)]
struct WorkerStats {
    total: usize,
    busy: usize,
}

#[derive(Debug, Serialize)]
struct QueueStats {
    depth: usize,
    capacity: usize,
}

#[derive(Debug, Serialize)]
struct RequestStats {
    connections_accepted: u64,
    received: u64,
    served: u64,
    rejected_queue_full: u64,
    rejected_wait_timeout: u64,
    client_errors: u64,
    handler_panics: u64,
    deadline_exceeded: u64,
    cancelled: u64,
    watchdog_restarts: u64,
}

/// Routes one parsed request to its handler.
pub(crate) fn handle(
    shared: &Shared,
    request: &Request,
    pctx: &mut PassContext,
    cancel: &CancelToken,
) -> Response {
    match (request.method.as_str(), request.path().as_str()) {
        ("GET", "/healthz") => {
            let draining = shared.draining.load(Ordering::SeqCst);
            let store_mode = shared.engine.store_mode().as_str();
            Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"draining\":{draining},\"store_mode\":\"{store_mode}\"}}"
                ),
            )
        }
        ("GET", "/stats") => stats_response(shared),
        ("POST", "/shutdown") => {
            shared.initiate_drain();
            Response::json(200, "{\"status\":\"draining\"}").with_header("connection", "close")
        }
        ("POST", "/run") => run_response(shared, request, pctx, cancel),
        ("GET" | "POST", _) => error_response(
            404,
            "not-found",
            &format!("no such endpoint: {}", request.path()),
        ),
        (method, _) => error_response(405, "method", &format!("method {method} not supported")),
    }
}

fn stats_response(shared: &Shared) -> Response {
    let eval = shared.engine.stats();
    let report = StatsReport {
        uptime_s: shared.started.elapsed().as_secs_f64(),
        workers: WorkerStats {
            total: shared.config.workers.max(1),
            busy: shared.busy_workers.load(Ordering::Relaxed),
        },
        queue: QueueStats {
            depth: shared.queue_depth(),
            capacity: shared.config.queue_capacity,
        },
        requests: RequestStats {
            connections_accepted: shared.counters.connections_accepted.load(Ordering::Relaxed),
            received: shared.counters.requests_received.load(Ordering::Relaxed),
            served: shared.counters.requests_served.load(Ordering::Relaxed),
            rejected_queue_full: shared.counters.rejected_queue_full.load(Ordering::Relaxed),
            rejected_wait_timeout: shared
                .counters
                .rejected_wait_timeout
                .load(Ordering::Relaxed),
            client_errors: shared.counters.client_errors.load(Ordering::Relaxed),
            handler_panics: shared.counters.handler_panics.load(Ordering::Relaxed),
            deadline_exceeded: shared.counters.deadline_exceeded.load(Ordering::Relaxed),
            cancelled: shared.counters.cancelled.load(Ordering::Relaxed),
            watchdog_restarts: shared.counters.watchdog_restarts.load(Ordering::Relaxed),
        },
        store_hit_rate: eval.store_hit_rate(),
        eval,
        store_len: shared.engine.store_len(),
        store_mode: shared.engine.store_mode().as_str().to_string(),
        store: shared.engine.store_summary(),
        cache: shared.engine.cache_summary(),
    };
    match serde_json::to_string(&report) {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, "internal", &format!("stats serialization: {e}")),
    }
}

/// Query flags accept `1`/`true`.
fn flag(request: &Request, name: &str) -> bool {
    matches!(
        request.query_param(name).as_deref(),
        Some("1") | Some("true")
    )
}

/// The `504` answer for an evaluation that unwound on its cancel token.
/// The connection closes: the response raced the evaluation, so any
/// pipelined follow-up belongs on a fresh connection.
fn cancelled_response(shared: &Shared, cancelled: &Cancelled) -> Response {
    if cancelled.reason == CancelReason::Cancelled {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    error_response(504, "deadline", &format!("evaluation aborted: {cancelled}"))
        .with_header("connection", "close")
}

fn run_response(
    shared: &Shared,
    request: &Request,
    pctx: &mut PassContext,
    cancel: &CancelToken,
) -> Response {
    // --- Parse the flow specification. ---
    let flow_param = request.query_param("flow");
    let random_param = request.query_param("random");
    let (flow, preset, random_seed) = match (&flow_param, &random_param) {
        (Some(_), Some(_)) => {
            return error_response(400, "flow", "flow and random are mutually exclusive")
        }
        (Some(spec), None) => {
            let preset = Flow::named(spec.trim()).map(|_| spec.trim().to_string());
            match Flow::parse(spec) {
                Ok(flow) => (flow, preset, None),
                Err(cmd) => {
                    return error_response(
                        400,
                        "flow",
                        &format!("`{cmd}` is neither a preset nor a transform"),
                    )
                }
            }
        }
        (None, Some(seed)) => match seed.parse::<u64>() {
            Ok(seed) => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                (FlowSpace::paper().random_flow(&mut rng), None, Some(seed))
            }
            Err(_) => return error_response(400, "flow", "random needs a numeric seed"),
        },
        (None, None) => {
            return error_response(
                400,
                "flow",
                "one of flow=<spec> or random=<seed> is required",
            )
        }
    };

    // --- Parse the design from the body. ---
    if request.body.is_empty() {
        return error_response(400, "design", "request body must carry a design netlist");
    }
    let format = match request.query_param("format").as_deref() {
        Some("aag") => Format::AigerAscii,
        Some("aig") => Format::AigerBinary,
        Some("blif") => Format::Blif,
        Some(other) => return error_response(400, "design", &format!("unknown format `{other}`")),
        None => match Format::from_content(&request.body) {
            Ok(format) => format,
            Err(e) => return error_response(400, "design", &e.to_string()),
        },
    };
    let design = match aig::io::parse_design(&request.body, format) {
        Ok(design) => design,
        Err(e) => return error_response(400, "parse", &e.to_string()),
    };

    let export_format = match request.query_param("export").as_deref() {
        None => None,
        Some("aag") => Some(Format::AigerAscii),
        Some("blif") => Some(Format::Blif),
        Some("aig") => {
            return error_response(
                400,
                "export",
                "binary AIGER cannot ride a JSON string; request export=aag",
            )
        }
        Some(other) => return error_response(400, "export", &format!("unknown format `{other}`")),
    };
    let want_timing = flag(request, "timing");
    let want_verify = flag(request, "verify");

    // --- Evaluate through the shared engine with this worker's context. ---
    let stats_before = shared.engine.stats();
    let _ = pctx.take_timings(); // request-local breakdown starts here
    let qor =
        match shared
            .engine
            .try_evaluate_flow_with_ctx(&design, flow.transforms(), pctx, cancel)
        {
            Ok(qor) => qor,
            Err(cancelled) => return cancelled_response(shared, &cancelled),
        };

    // Export (and explicit verification) need the optimized netlist itself,
    // which the engine keeps inside its cache; rerun the flow through the
    // recycling context.  Both paths are deterministic and bit-identical.
    let mut export = None;
    if export_format.is_some() || want_verify {
        let optimized = match pctx.run_flow_cancellable(&design, flow.transforms(), cancel) {
            Ok(optimized) => optimized,
            Err(cancelled) => return cancelled_response(shared, &cancelled),
        };
        if want_verify && !random_equivalence_check(&design, &optimized, 8, VERIFY_SEED) {
            return error_response(
                500,
                "verify",
                "optimized network is not equivalent to the input design",
            );
        }
        if let Some(format) = export_format {
            let rendered = aig::io::render_design(&optimized, format);
            match String::from_utf8(rendered) {
                Ok(netlist) => {
                    export = Some(ExportReport {
                        path: format!("wire:{}", format.extension()),
                        format: format.extension().to_string(),
                        ands: optimized.num_ands(),
                        depth: optimized.depth(),
                        netlist: Some(netlist),
                    })
                }
                Err(_) => return error_response(500, "export", "rendered netlist is not UTF-8"),
            }
        }
        pctx.recycle(optimized);
    }
    let timings = pctx.take_timings();
    shared.engine.absorb_timings(&timings);

    let report = RunReport {
        design: design_report(&design, format),
        flow: FlowReport {
            script: flow.to_script(),
            preset,
            random_seed,
            length: flow.len(),
        },
        qor,
        eval: shared.engine.stats().since(&stats_before),
        timing: want_timing.then(|| TimingReport::of(&timings)),
        export,
    };
    match serde_json::to_string(&report) {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, "internal", &format!("report serialization: {e}")),
    }
}

fn design_report(design: &Aig, format: Format) -> DesignReport {
    DesignReport::of(design, &format!("wire:{}", format.extension()))
}
