//! The `flowd` binary: parse options, start the daemon, wait for drain.
//!
//! ```text
//! flowd --addr 127.0.0.1:7171 --workers 4 --store qor-store.jsonl
//! ```
//!
//! The daemon runs until `POST /shutdown` arrives, then drains gracefully.
//! Exit codes: `0` clean drain, `1` usage error, `2` runtime failure.

use std::path::PathBuf;

use flowc::args::Args;
use flowd::{Server, ServerConfig};

const USAGE: &str = "flowd — persistent synthesis service over HTTP/1.1

USAGE:
    flowd [OPTIONS]

OPTIONS:
    --addr <host:port>    bind address        [default: 127.0.0.1:7171]
    --workers <n>         worker threads      [default: min(cores, 8)]
    --queue <n>           waiting-connection cap before 503 [default: 64]
    --timeout-ms <n>      max queue wait per connection     [default: 5000]
    --deadline-ms <n>     per-request evaluation deadline (504 past it;
                          requests may lower it via ?deadline_ms=)
                                                            [default: 10000]
    --idle-ms <n>         keep-alive idle timeout           [default: 2000]
    --store <path>        persistent QoR store (checksummed segmented log;
                          legacy plain JSONL stores are read and upgraded on
                          their first compaction)
    --segment-bytes <n>   rotate the live store segment at this size
                                                            [default: 8388608]
    --probe-ms <n>        degraded-store recovery probe period [default: 500]
    --verify              verify every evaluated flow by random simulation
    --cache-nodes <n>     per-design AIG-node cache budget
    --edit-mode <mode>    how passes apply replacements: `inplace` mutates
                          the resident graph, `rebuild` is the pinned
                          re-emit path (bit-identical QoR)
                                                            [default: inplace]

ENDPOINTS:
    POST /run       evaluate a flow on the design in the request body
    GET  /healthz   liveness + store_mode (ok | degraded)
    GET  /stats     counters, queue depth, store + cache summaries
    POST /shutdown  graceful drain (fsyncs the store before exit)
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print!("{USAGE}");
        return;
    }
    let mut args = Args::new(argv);
    match parse_config(&mut args).and_then(|config| {
        args.finish()?;
        Ok(config)
    }) {
        Ok(config) => {
            let server = match Server::start(config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("flowd: cannot start: {e}");
                    std::process::exit(2);
                }
            };
            eprintln!("flowd: listening on {}", server.addr());
            if let Err(e) = server.join() {
                eprintln!("flowd: store flush on drain failed: {e}");
                std::process::exit(2);
            }
            eprintln!("flowd: drained");
        }
        Err(message) => {
            eprintln!("flowd: {message}\n");
            eprint!("{USAGE}");
            std::process::exit(1);
        }
    }
}

fn parse_config(args: &mut Args) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..ServerConfig::default()
    };
    if let Some(addr) = args.take_value("addr")? {
        config.addr = addr;
    }
    if let Some(n) = args.take_value("workers")? {
        config.workers = parse_number(&n, "workers")?;
    }
    if let Some(n) = args.take_value("queue")? {
        config.queue_capacity = parse_number(&n, "queue")?;
    }
    if let Some(n) = args.take_value("timeout-ms")? {
        config.request_timeout_ms = parse_number(&n, "timeout-ms")? as u64;
    }
    if let Some(n) = args.take_value("deadline-ms")? {
        config.deadline_ms = (parse_number(&n, "deadline-ms")? as u64).max(1);
    }
    if let Some(n) = args.take_value("idle-ms")? {
        config.keep_alive_idle_ms = parse_number(&n, "idle-ms")? as u64;
    }
    if let Some(path) = args.take_value("store")? {
        config.engine.store_path = Some(PathBuf::from(path));
    }
    if let Some(n) = args.take_value("segment-bytes")? {
        config.engine.store_options.segment_max_bytes =
            (parse_number(&n, "segment-bytes")? as u64).max(1);
    }
    if let Some(n) = args.take_value("probe-ms")? {
        config.store_probe_ms = (parse_number(&n, "probe-ms")? as u64).max(1);
    }
    if let Some(n) = args.take_value("cache-nodes")? {
        config.engine.cache_budget_aig_nodes = parse_number(&n, "cache-nodes")?;
    }
    if let Some(mode) = args.take_value("edit-mode")? {
        config.engine.edit_mode = parse_edit_mode(&mode)?;
    }
    config.engine.verify = args.take_flag("verify");
    Ok(config)
}

fn parse_edit_mode(value: &str) -> Result<synth::EditMode, String> {
    match value {
        "inplace" | "in-place" => Ok(synth::EditMode::InPlace),
        "rebuild" => Ok(synth::EditMode::Rebuild),
        other => Err(format!(
            "--edit-mode must be `inplace` or `rebuild`, got `{other}`"
        )),
    }
}

fn parse_number(value: &str, name: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("--{name} needs a number, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_mode_flag_parses() {
        assert_eq!(parse_edit_mode("inplace"), Ok(synth::EditMode::InPlace));
        assert_eq!(parse_edit_mode("in-place"), Ok(synth::EditMode::InPlace));
        assert_eq!(parse_edit_mode("rebuild"), Ok(synth::EditMode::Rebuild));
        assert!(parse_edit_mode("frobnicate").is_err());
    }

    #[test]
    fn edit_mode_flag_reaches_engine_config() {
        let mut args = Args::new(vec!["--edit-mode".into(), "rebuild".into()]);
        let config = parse_config(&mut args).expect("valid flags");
        args.finish().expect("all flags consumed");
        assert_eq!(config.engine.edit_mode, synth::EditMode::Rebuild);
    }
}
