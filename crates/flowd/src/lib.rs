//! # flowd — the persistent synthesis service
//!
//! The paper's framework (Yu, Xiao, De Micheli — DAC 2018) evaluates flows in
//! offline batch loops; the ROADMAP's north star is a system serving heavy
//! interactive traffic.  `flowd` is that step: it keeps one
//! [`floweval::EvalEngine`] resident in a long-running process and serves
//! flow-evaluation requests over a minimal HTTP/1.1 wire protocol, so the
//! QoR store and the sharded prefix-trie cache warm up **across clients and
//! connections** instead of per process.
//!
//! ## Protocol
//!
//! | Endpoint          | Meaning                                              |
//! |-------------------|------------------------------------------------------|
//! | `POST /run`       | body = design (AIGER/BLIF); query `flow`/`random`, `format`, `timing`, `verify`, `export` — answers `flowc run`'s JSON report |
//! | `GET /healthz`    | liveness (`{"status":"ok"}`)                         |
//! | `GET /stats`      | uptime, queue depth, worker utilization, [`floweval::EvalStats`], cache summary |
//! | `POST /shutdown`  | graceful drain: stop accepting, finish queued work   |
//!
//! The `qor` section of a `/run` response is **bit-identical** to an
//! in-process `flowc run` of the same design and flow (the integration tests
//! and the `flowd_perf` load generator assert this).
//!
//! ## Backpressure
//!
//! Admission control happens at accept time: beyond `queue_capacity` waiting
//! connections the daemon answers `503` + `Retry-After` immediately instead
//! of stacking unbounded work.  Connections that waited longer than the
//! request timeout are rejected the moment a worker picks them up (a request
//! already being evaluated is never preempted).  On shutdown the daemon
//! drains: accepted work finishes, new connections are turned away, the QoR
//! store is flushed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod protocol;
mod server;

pub use server::{Server, ServerConfig};
