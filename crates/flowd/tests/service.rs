//! End-to-end tests of the daemon over real loopback sockets.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use circuits::{Design, DesignScale};
use flowc::report::RunReport;
use flowd::{Server, ServerConfig};
use floweval::{EngineConfig, EvalEngine};
use httpwire::{read_response, write_request, Limits, Request, Response};
use synth::Transform;

fn tiny_server(workers: usize) -> Server {
    Server::start(ServerConfig {
        workers,
        queue_capacity: 8,
        engine: EngineConfig {
            cache_budget_aig_nodes: 100_000,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start server")
}

fn roundtrip(addr: std::net::SocketAddr, request: &Request) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_request(&mut writer, request).expect("send");
    read_response(&mut reader, &Limits::default()).expect("response")
}

fn run_request(design: &aig::Aig, query: &str) -> Request {
    Request::new("POST", &format!("/run?{query}"))
        .with_body(aig::io::render_design(design, aig::io::Format::AigerAscii))
}

fn body_text(response: &Response) -> String {
    String::from_utf8_lossy(&response.body).into_owned()
}

#[test]
fn healthz_stats_and_unknown_endpoints() {
    let server = tiny_server(2);
    let addr = server.addr();
    let health = roundtrip(addr, &Request::new("GET", "/healthz"));
    assert_eq!(health.status, 200);
    assert!(body_text(&health).contains("\"status\":\"ok\""));

    let stats = roundtrip(addr, &Request::new("GET", "/stats"));
    assert_eq!(stats.status, 200);
    let text = body_text(&stats);
    for field in ["uptime_s", "workers", "queue", "requests", "eval", "cache"] {
        assert!(text.contains(field), "stats missing `{field}`: {text}");
    }

    let missing = roundtrip(addr, &Request::new("GET", "/nope"));
    assert_eq!(missing.status, 404);

    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn wire_qor_is_bit_identical_to_in_process_engine() {
    let server = tiny_server(2);
    let addr = server.addr();
    let reference = EvalEngine::new(EngineConfig::default());
    for design_kind in Design::ALL {
        let design = design_kind.generate(DesignScale::Tiny);
        for flow_spec in ["resyn2", "balance; rewrite -z; refactor"] {
            let flow = flowgen::Flow::parse(flow_spec).expect("flow");
            let expected = reference.evaluate_batch(&design, &[flow.transforms().to_vec()])[0];

            let query = format!("flow={}", httpwire::percent_encode(flow_spec));
            let response = roundtrip(addr, &run_request(&design, &query));
            assert_eq!(response.status, 200, "body: {}", body_text(&response));
            let report: RunReport = serde_json::from_str(&body_text(&response)).expect("report");
            assert_eq!(report.qor, expected, "{design_kind:?} / {flow_spec}");
            assert_eq!(report.flow.script, flow.to_script());
            assert_eq!(
                report.design.fingerprint,
                floweval::fingerprint_design(&design).to_string(),
                "wire roundtrip must preserve the structural fingerprint"
            );
        }
    }
    // The same flows again are pure store hits across connections.
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2"));
    let report: RunReport = serde_json::from_str(&body_text(&response)).expect("report");
    assert_eq!(report.eval.store_hits, 1, "warm cache answers from store");
    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn random_flows_are_seed_deterministic() {
    let server = tiny_server(2);
    let addr = server.addr();
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let first = roundtrip(addr, &run_request(&design, "random=42"));
    let second = roundtrip(addr, &run_request(&design, "random=42"));
    assert_eq!(first.status, 200);
    let a: RunReport = serde_json::from_str(&body_text(&first)).expect("report");
    let b: RunReport = serde_json::from_str(&body_text(&second)).expect("report");
    assert_eq!(a.qor, b.qor);
    assert_eq!(a.flow.script, b.flow.script);
    assert_eq!(a.flow.random_seed, Some(42));
    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn timing_export_and_verify_sections() {
    let server = tiny_server(1);
    let addr = server.addr();
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let response = roundtrip(
        addr,
        &run_request(&design, "flow=compress&timing=1&export=aag&verify=1"),
    );
    assert_eq!(response.status, 200, "body: {}", body_text(&response));
    let report: RunReport = serde_json::from_str(&body_text(&response)).expect("report");
    let timing = report.timing.expect("timing section");
    assert!(timing.passes.iter().any(|p| p.calls > 0));
    let export = report.export.expect("export section");
    assert_eq!(export.format, "aag");
    let netlist = export.netlist.expect("inline netlist");
    let optimized = aig::io::parse_design(netlist.as_bytes(), aig::io::Format::AigerAscii)
        .expect("netlist parses");
    assert_eq!(optimized.num_ands(), export.ands);
    assert_eq!(optimized.num_ands(), report.qor.and_nodes);

    // Binary export cannot ride JSON and is refused up front.
    let response = roundtrip(addr, &run_request(&design, "flow=compress&export=aig"));
    assert_eq!(response.status, 400);
    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn malformed_inputs_get_400_and_workers_survive() {
    let server = tiny_server(1);
    let addr = server.addr();
    let design = Design::Alu64.generate(DesignScale::Tiny);

    // Garbage design bytes → typed 400, not a dead worker.
    let garbage = Request::new("POST", "/run?flow=resyn2").with_body(b"aag 1 2 3".to_vec());
    let response = roundtrip(addr, &garbage);
    assert_eq!(response.status, 400, "body: {}", body_text(&response));
    assert!(body_text(&response).contains("error"));

    // Unknown flow command → 400.
    let response = roundtrip(addr, &run_request(&design, "flow=frobnicate"));
    assert_eq!(response.status, 400);

    // Missing flow spec → 400.
    let response = roundtrip(addr, &run_request(&design, "format=aag"));
    assert_eq!(response.status, 400);

    // The single worker still serves real requests afterwards.
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2"));
    assert_eq!(response.status, 200);
    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn overload_gets_clean_503_with_retry_after() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        keep_alive_idle_ms: 10_000,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.addr();

    // Pin the single worker with an open keep-alive connection.
    let pin = TcpStream::connect(addr).expect("connect");
    pin.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut pin_writer = pin.try_clone().unwrap();
    let mut pin_reader = BufReader::new(pin.try_clone().unwrap());
    write_request(&mut pin_writer, &Request::new("GET", "/healthz")).unwrap();
    let first = read_response(&mut pin_reader, &Limits::default()).expect("pinned healthz");
    assert_eq!(first.status, 200);

    // Fill the single queue slot.
    let _queued = TcpStream::connect(addr).expect("connect queued");
    std::thread::sleep(Duration::from_millis(200)); // let the acceptor enqueue it

    // The next connection must be rejected immediately with backpressure —
    // the 503 arrives before any request is even sent.
    let stream = TcpStream::connect(addr).expect("connect rejected");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let rejected = read_response(&mut reader, &Limits::default()).expect("503 response");
    assert_eq!(rejected.status, 503, "body: {}", body_text(&rejected));
    assert_eq!(
        rejected.headers.get("retry-after").map(String::as_str),
        Some("1")
    );
    assert!(rejected.closes_connection());

    drop(pin); // release the worker so the drain below finishes quickly
    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn shutdown_drains_gracefully() {
    let server = tiny_server(2);
    let addr = server.addr();
    let design = Design::Aes128.generate(DesignScale::Tiny);
    let response = roundtrip(addr, &run_request(&design, "flow=resyn"));
    assert_eq!(response.status, 200);

    let bye = roundtrip(addr, &Request::new("POST", "/shutdown"));
    assert_eq!(bye.status, 200);
    assert!(bye.closes_connection());
    server.join().expect("drain");

    // The port is released: connections are refused or immediately closed.
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let outcome = write_request(&mut writer, &Request::new("GET", "/healthz"))
                .map_err(|_| ())
                .and_then(|_| read_response(&mut reader, &Limits::default()).map_err(|_| ()));
            assert!(outcome.is_err(), "drained server must not answer");
        }
    }
}

#[test]
fn cooperative_deadline_answers_504_and_worker_survives() {
    let server = tiny_server(1);
    let addr = server.addr();
    let design = Design::Aes128.generate(DesignScale::Tiny);
    // 30 passes: long enough that a 1 ms deadline always expires at one of
    // the pass-boundary checkpoints, whatever the machine speed.
    let spec = [
        "balance",
        "rewrite",
        "refactor",
        "restructure",
        "rewrite -z",
        "balance",
    ]
    .repeat(5)
    .join("; ");
    let query = format!("flow={}&deadline_ms=1", httpwire::percent_encode(&spec));
    let response = roundtrip(addr, &run_request(&design, &query));
    assert_eq!(response.status, 504, "body: {}", body_text(&response));
    assert!(response.closes_connection());
    assert!(body_text(&response).contains("deadline"));

    // Cooperative unwind: the worker answered itself, no watchdog involved.
    let stats = body_text(&roundtrip(addr, &Request::new("GET", "/stats")));
    assert!(stats.contains("\"deadline_exceeded\":1"), "stats: {stats}");
    assert!(stats.contains("\"watchdog_restarts\":0"), "stats: {stats}");

    // The same worker (and its recycled context) still evaluates correctly.
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2"));
    assert_eq!(response.status, 200, "body: {}", body_text(&response));
    let report: RunReport = serde_json::from_str(&body_text(&response)).expect("report");
    let reference = EvalEngine::new(EngineConfig::default());
    let flow = flowgen::Flow::parse("resyn2").expect("flow");
    let expected = reference.evaluate_batch(&design, &[flow.transforms().to_vec()])[0];
    assert_eq!(
        report.qor, expected,
        "post-cancel evaluation is bit-identical"
    );

    // A malformed deadline is a typed client error, not a hang.
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2&deadline_ms=soon"));
    assert_eq!(response.status, 400);
    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn evaluate_flow_with_ctx_matches_batch_engine() {
    // The service path (`evaluate_flow_with_ctx`) against the batch path, on
    // the embedded engine — no sockets, pure engine-level pin.
    let engine = EvalEngine::new(EngineConfig::default());
    let mut pctx = synth::PassContext::default();
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let flow = vec![
        Transform::Balance,
        Transform::Rewrite,
        Transform::RefactorZ,
        Transform::Balance,
    ];
    let service = engine.evaluate_flow_with_ctx(&design, &flow, &mut pctx);
    let reference = EvalEngine::new(EngineConfig::default());
    let batch = reference.evaluate_batch(&design, std::slice::from_ref(&flow))[0];
    assert_eq!(service, batch);
    // Second call is a store hit, not a re-evaluation.
    let again = engine.evaluate_flow_with_ctx(&design, &flow, &mut pctx);
    assert_eq!(again, service);
    assert_eq!(engine.stats().store_hits, 1);
}

/// Drain + restart on the same store: every record acked before the drain
/// (the drain checkpoint fsyncs the store) must come back, and the restarted
/// daemon must answer the same flows bit-identically from the store without
/// re-evaluating.
#[test]
fn restart_on_same_store_loses_no_acked_records() {
    let dir = std::env::temp_dir().join(format!("flowd-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("qor.jsonl");
    let store_server = || {
        Server::start(ServerConfig {
            workers: 2,
            queue_capacity: 8,
            engine: EngineConfig {
                store_path: Some(store_path.clone()),
                cache_budget_aig_nodes: 100_000,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("start store-backed server")
    };
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let seeds: Vec<u64> = (1..=6).collect();

    // First life: evaluate six distinct random flows, remember every answer.
    let server = store_server();
    let addr = server.addr();
    let mut first: Vec<(String, synth::Qor)> = Vec::new();
    for seed in &seeds {
        let response = roundtrip(addr, &run_request(&design, &format!("random={seed}")));
        assert_eq!(response.status, 200, "body: {}", body_text(&response));
        let report: RunReport = serde_json::from_str(&body_text(&response)).expect("report");
        first.push((report.flow.script, report.qor));
    }
    let bye = roundtrip(addr, &Request::new("POST", "/shutdown"));
    assert_eq!(bye.status, 200);
    server.join().expect("drain + store checkpoint");

    // Second life: every acked record is already there before any request.
    let server = store_server();
    let addr = server.addr();
    let stats = roundtrip(addr, &Request::new("GET", "/stats"));
    let text = body_text(&stats);
    assert!(
        text.contains(&format!("\"store_len\":{}", seeds.len())),
        "restarted store must hold all {} acked records: {text}",
        seeds.len()
    );
    assert!(
        text.contains("\"store_mode\":\"ok\""),
        "restart on a cleanly drained store is healthy: {text}"
    );
    assert!(
        text.contains("\"torn_tail\":0") && text.contains("\"corrupt_records\":0"),
        "a drained store reopens without damage: {text}"
    );
    for (seed, (script, qor)) in seeds.iter().zip(&first) {
        let response = roundtrip(addr, &run_request(&design, &format!("random={seed}")));
        assert_eq!(response.status, 200);
        let report: RunReport = serde_json::from_str(&body_text(&response)).expect("report");
        assert_eq!(&report.flow.script, script, "seed {seed} changed flow");
        assert_eq!(report.qor, *qor, "seed {seed} changed QoR across restart");
        assert_eq!(
            report.eval.store_hits, 1,
            "seed {seed} must be served from the store, not re-evaluated"
        );
        assert_eq!(report.eval.flows_evaluated, 0, "seed {seed} re-evaluated");
    }
    server.shutdown();
    server.join().expect("second drain");
    let _ = std::fs::remove_dir_all(&dir);
}
