//! Chaos suite: the daemon under seeded fault schedules.
//!
//! Compiled only with `--features failpoints`.  Every scenario drives a real
//! loopback daemon while the failpoint registry injects stalls, panics,
//! store-append errors, cache refusals and truncated wire reads, and asserts
//! the degradation contract: no hangs, well-formed responses, and QoR of
//! successful answers bit-identical to a fault-free run.
#![cfg(feature = "failpoints")]

use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use circuits::{Design, DesignScale};
use flow_core::fail;
use flowc::report::RunReport;
use flowd::{Server, ServerConfig};
use floweval::EngineConfig;
use httpwire::{read_response, write_request, HttpError, Limits, Request, Response};

/// The failpoint registry is process-global and the test harness runs test
/// functions on parallel threads: every scenario holds this lock for its
/// whole duration and clears the registry on entry and exit.
static REGISTRY: Mutex<()> = Mutex::new(());

struct FaultSession {
    _guard: std::sync::MutexGuard<'static, ()>,
}

impl FaultSession {
    fn begin(seed: u64) -> FaultSession {
        let guard = REGISTRY.lock().unwrap_or_else(|poison| poison.into_inner());
        fail::teardown();
        fail::set_seed(seed);
        FaultSession { _guard: guard }
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        fail::teardown();
    }
}

fn chaos_server(workers: usize, store: Option<PathBuf>) -> Server {
    Server::start(ServerConfig {
        workers,
        queue_capacity: 16,
        engine: EngineConfig {
            cache_budget_aig_nodes: 100_000,
            store_path: store,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start server")
}

fn try_roundtrip(addr: std::net::SocketAddr, request: &Request) -> Result<Response, HttpError> {
    let stream = TcpStream::connect(addr).map_err(HttpError::Io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_request(&mut writer, request)?;
    read_response(&mut reader, &Limits::default())
}

fn roundtrip(addr: std::net::SocketAddr, request: &Request) -> Response {
    try_roundtrip(addr, request).expect("response")
}

fn run_request(design: &aig::Aig, query: &str) -> Request {
    Request::new("POST", &format!("/run?{query}"))
        .with_body(aig::io::render_design(design, aig::io::Format::AigerAscii))
}

fn body_text(response: &Response) -> String {
    String::from_utf8_lossy(&response.body).into_owned()
}

fn stats_text(addr: std::net::SocketAddr) -> String {
    body_text(&roundtrip(addr, &Request::new("GET", "/stats")))
}

fn temp_store(label: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("flowd-chaos-{}-{label}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The acceptance corpus: 200 requests (tunable down via
/// `FLOWD_CHAOS_REQUESTS` for constrained CI runners) mixing designs,
/// presets and seed-deterministic random flows, with store-hit repeats.
fn corpus() -> (Vec<aig::Aig>, Vec<(usize, String)>) {
    let designs = vec![
        Design::Alu64.generate(DesignScale::Tiny),
        Design::Aes128.generate(DesignScale::Tiny),
        Design::Montgomery64.generate(DesignScale::Tiny),
    ];
    let count = std::env::var("FLOWD_CHAOS_REQUESTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(200);
    let script = httpwire::percent_encode("balance; rewrite -z; refactor");
    let requests = (0..count)
        .map(|i| {
            let design = i % designs.len();
            let query = match i % 4 {
                0 => "flow=resyn2".to_string(),
                1 => format!("random={}", i % 5),
                2 => format!("flow={script}"),
                _ => format!("random={}", 40 + (i % 7)),
            };
            (design, query)
        })
        .collect();
    (designs, requests)
}

#[test]
fn mixed_corpus_under_faults_matches_fault_free_qor() {
    let _session = FaultSession::begin(0xC0FFEE);
    let (designs, requests) = corpus();

    let run_corpus = |label: &str| -> (Vec<synth::Qor>, String) {
        let store = temp_store(label);
        let server = chaos_server(2, Some(store.clone()));
        let addr = server.addr();
        let mut qors = Vec::with_capacity(requests.len());
        for (design, query) in &requests {
            let response = roundtrip(addr, &run_request(&designs[*design], query));
            assert_eq!(
                response.status,
                200,
                "{label} `{query}`: {}",
                body_text(&response)
            );
            let report: RunReport = serde_json::from_str(&body_text(&response))
                .unwrap_or_else(|e| panic!("{label} `{query}`: malformed report: {e}"));
            qors.push(report.qor);
        }
        let stats = stats_text(addr);
        server.shutdown();
        server.join().expect("drain");
        let _ = std::fs::remove_file(&store);
        (qors, stats)
    };

    let (baseline, baseline_stats) = run_corpus("baseline");
    assert!(
        baseline_stats.contains("\"store_write_errors\":0"),
        "stats: {baseline_stats}"
    );

    // The same corpus under a seeded schedule: stalled passes, failed store
    // appends, refused trie-cache inserts.
    fail::cfg("pass.apply", "3%delay(25)").unwrap();
    fail::cfg("store.write", "50%return").unwrap();
    fail::cfg("trie.cache_insert", "50%return").unwrap();
    let (faulted, faulted_stats) = run_corpus("faulted");

    assert_eq!(baseline, faulted, "faults must degrade speed, never QoR");
    assert!(
        fail::triggers("store.write") > 0,
        "the schedule must exercise store appends"
    );
    assert!(fail::triggers("trie.cache_insert") > 0);
    assert!(fail::triggers("pass.apply") > 0);
    // Failed appends degrade to cache-only persistence and are surfaced.
    assert!(
        !faulted_stats.contains("\"store_write_errors\":0"),
        "stats must surface the injected append failures: {faulted_stats}"
    );
    assert!(faulted_stats.contains("\"store_write_errors\":"));
}

#[test]
fn injected_pass_panic_is_isolated_to_500() {
    let _session = FaultSession::begin(1);
    let server = chaos_server(1, None);
    let addr = server.addr();
    let design = Design::Alu64.generate(DesignScale::Tiny);

    fail::cfg("pass.apply", "1*panic(chaos)").unwrap();
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2"));
    assert_eq!(response.status, 500, "body: {}", body_text(&response));
    assert!(response.closes_connection());

    // The single worker survived with a rebuilt context; no watchdog event.
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2"));
    assert_eq!(response.status, 200, "body: {}", body_text(&response));
    let stats = stats_text(addr);
    assert!(stats.contains("\"handler_panics\":1"), "stats: {stats}");
    assert!(stats.contains("\"watchdog_restarts\":0"), "stats: {stats}");

    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn wedged_worker_is_hijacked_and_pool_recovers() {
    let _session = FaultSession::begin(2);
    let server = chaos_server(2, None);
    let addr = server.addr();
    let design = Design::Alu64.generate(DesignScale::Tiny);

    // A 10x stall: the next pass sleeps 3 s straight through its cancel
    // token, so only the watchdog can answer the client.
    fail::cfg("pass.apply", "1*delay(3000)").unwrap();
    let started = Instant::now();
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2&deadline_ms=300"));
    let elapsed = started.elapsed();
    assert_eq!(response.status, 504, "body: {}", body_text(&response));
    assert!(body_text(&response).contains("deadline"));
    assert!(
        elapsed <= Duration::from_millis(300 + 250),
        "504 must arrive within deadline + 250 ms, took {elapsed:?}"
    );

    // The wedged worker was retired and replaced; the pool still serves.
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2"));
    assert_eq!(response.status, 200, "body: {}", body_text(&response));
    let stats = stats_text(addr);
    assert!(stats.contains("\"watchdog_restarts\":1"), "stats: {stats}");
    assert!(stats.contains("\"deadline_exceeded\":1"), "stats: {stats}");

    server.shutdown();
    server.join().expect("drain");
}

#[test]
fn truncated_wire_reads_close_cleanly() {
    let _session = FaultSession::begin(3);
    let server = chaos_server(1, None);
    let addr = server.addr();
    let design = Design::Alu64.generate(DesignScale::Tiny);

    // The next head read collapses: the server sees a truncated request and
    // drops the connection without answering — no hang, no garbage.
    fail::cfg("httpwire.read_head", "1*return").unwrap();
    let outcome = try_roundtrip(addr, &run_request(&design, "flow=resyn2"));
    assert!(outcome.is_err(), "truncated read cannot yield a response");

    // The worker survived; the next request is served normally.
    let response = roundtrip(addr, &run_request(&design, "flow=resyn2"));
    assert_eq!(response.status, 200, "body: {}", body_text(&response));

    // Truncated bodies surface as clean client-side errors the same way.
    fail::cfg("httpwire.read_body", "1*return").unwrap();
    let outcome = try_roundtrip(addr, &Request::new("GET", "/healthz"));
    assert!(outcome.is_err(), "truncated body cannot yield a response");
    let response = roundtrip(addr, &Request::new("GET", "/healthz"));
    assert_eq!(response.status, 200);

    server.shutdown();
    server.join().expect("drain");
}

/// The ISSUE's ENOSPC scenario: every store append fails (disk full), the
/// store flips to degraded after three consecutive failures, and the daemon
/// keeps answering 2xx with bit-identical QoR from its in-memory index.
/// Backpressure answers name the degraded store in `X-Flowd-Store`.  When
/// the "disk" recovers, the periodic probe flips the store back to `ok` and
/// drains every parked record — nothing evaluated during the outage is lost.
#[test]
fn enospc_degraded_store_serves_cached_answers_and_recovers() {
    let _session = FaultSession::begin(0xD15C);
    let store = temp_store("degraded");
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        store_probe_ms: 50,
        engine: EngineConfig {
            cache_budget_aig_nodes: 100_000,
            store_path: Some(store.clone()),
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.addr();
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let evaluate = |seed: u64| -> (String, synth::Qor) {
        let response = roundtrip(addr, &run_request(&design, &format!("random={seed}")));
        assert_eq!(response.status, 200, "body: {}", body_text(&response));
        let report: RunReport = serde_json::from_str(&body_text(&response)).expect("report");
        (report.flow.script, report.qor)
    };

    // Warm phase: three flows land durably in the store.
    let warm: Vec<(u64, String, synth::Qor)> = (1..=3)
        .map(|seed| {
            let (script, qor) = evaluate(seed);
            (seed, script, qor)
        })
        .collect();

    // The disk fills up: every append fails from here on.
    fail::cfg("store.write", "return").unwrap();

    // Fresh flows keep answering 2xx; the failures flip the store to
    // degraded and park the records instead of dropping them.
    let outage: Vec<(u64, String, synth::Qor)> = (10..=14)
        .map(|seed| {
            let (script, qor) = evaluate(seed);
            (seed, script, qor)
        })
        .collect();
    let health = body_text(&roundtrip(addr, &Request::new("GET", "/healthz")));
    assert!(
        health.contains("\"store_mode\":\"degraded\""),
        "healthz: {health}"
    );
    let stats = stats_text(addr);
    assert!(
        stats.contains("\"store_mode\":\"degraded\"") && stats.contains("\"mode\":\"degraded\""),
        "stats: {stats}"
    );
    assert!(
        !stats.contains("\"store_write_errors\":0"),
        "stats must surface the append failures: {stats}"
    );

    // Every answer so far repeats bit-identically from the degraded store.
    for (seed, script, qor) in warm.iter().chain(&outage) {
        let (again_script, again_qor) = evaluate(*seed);
        assert_eq!(&again_script, script, "seed {seed} changed flow");
        assert_eq!(&again_qor, qor, "seed {seed}: degraded store changed QoR");
    }

    // Backpressure while degraded names the cause: pin the single worker
    // with an open keep-alive connection, fill both queue slots, and the
    // next connection is shed with a 503 that names the degraded store.
    let pin = TcpStream::connect(addr).expect("connect pin");
    pin.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut pin_writer = pin.try_clone().unwrap();
    let mut pin_reader = BufReader::new(pin.try_clone().unwrap());
    write_request(&mut pin_writer, &Request::new("GET", "/healthz")).unwrap();
    assert_eq!(
        read_response(&mut pin_reader, &Limits::default())
            .expect("pinned healthz")
            .status,
        200
    );
    let queued: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("connect queued"))
        .collect();
    std::thread::sleep(Duration::from_millis(200)); // let the acceptor enqueue
    let overflow = TcpStream::connect(addr).expect("connect overflow");
    overflow
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut overflow_reader = BufReader::new(overflow);
    let rejected = read_response(&mut overflow_reader, &Limits::default()).expect("503 response");
    assert_eq!(rejected.status, 503, "body: {}", body_text(&rejected));
    assert_eq!(
        rejected.headers.get("x-flowd-store").map(String::as_str),
        Some("degraded"),
        "degraded 503 must carry X-Flowd-Store"
    );
    assert_eq!(
        rejected.headers.get("retry-after").map(String::as_str),
        Some("1")
    );
    drop(pin);
    drop(queued);

    // The disk recovers: the watchdog probe flips the store back to ok.
    // The poll tolerates transient 503s while the worker drains the pinned
    // and queued connections released above.
    fail::cfg("store.write", "off").unwrap();
    let healthy_by = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(health) = try_roundtrip(addr, &Request::new("GET", "/healthz")) {
            if health.status == 200 && body_text(&health).contains("\"store_mode\":\"ok\"") {
                break;
            }
        }
        assert!(
            Instant::now() < healthy_by,
            "store did not auto-recover within 5 s"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    server.shutdown();
    server.join().expect("drain");

    // The drained store holds every record, including the parked ones the
    // probe drained after recovery — the outage lost nothing.
    let reopened = floweval::QorStore::open(&store).expect("reopen after recovery");
    assert_eq!(reopened.torn_tail_records(), 0);
    assert_eq!(reopened.corrupt_records(), 0);
    let config = floweval::fingerprint_config(
        &synth::CellLibrary::nangate14(),
        synth::MapperParams::default(),
    );
    let design_fp = floweval::fingerprint_design(&design);
    for (seed, script, qor) in warm.iter().chain(&outage) {
        let key = floweval::StoreKey {
            design: design_fp,
            config,
            flow: script.clone(),
        };
        assert_eq!(
            reopened.get(&key),
            Some(*qor),
            "seed {seed} (`{script}`) missing after recovery"
        );
    }
    let _ = std::fs::remove_file(&store);
}
