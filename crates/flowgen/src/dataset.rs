//! Labelled flow datasets.
//!
//! Component 1 of the framework (Figure 2) produces "training flows": random
//! flows together with the QoR obtained by actually running them through the
//! synthesis tool.  This module stores those records, derives labels with a
//! [`Labeler`](crate::Labeler), splits train/test sets and serves mini-batches.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use synth::{Qor, QorMetric};

use crate::flow::Flow;
use crate::label::Labeler;

/// One labelled training example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledFlow {
    /// The synthesis flow.
    pub flow: Flow,
    /// The QoR measured by running the flow.
    pub qor: Qor,
    /// The class assigned by the labelling model.
    pub label: usize,
}

/// A set of labelled flows for one design and one optimisation metric.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    examples: Vec<LabeledFlow>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset {
            examples: Vec::new(),
        }
    }

    /// Builds a seeded synthetic dataset over the paper's flow space whose
    /// label depends on an easily-learnable feature (the position of the
    /// first `Balance` transform), plus the flows it was built from.
    ///
    /// Used by the classifier tests and the `nn_perf` benchmark: it gives
    /// every harness the exact same learnable workload without evaluating
    /// real designs.
    pub fn synthetic_balance(count: usize, num_classes: usize) -> (Dataset, Vec<Flow>) {
        use rand::SeedableRng;
        let space = crate::space::FlowSpace::paper();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let flows = space.random_unique_flows(count, &mut rng);
        let qors: Vec<Qor> = flows
            .iter()
            .map(|f| {
                let pos = f
                    .transforms()
                    .iter()
                    .position(|&t| t == synth::Transform::Balance)
                    .unwrap_or(f.len());
                Qor {
                    area_um2: pos as f64 + 1.0,
                    delay_ps: pos as f64 + 1.0,
                    gates: 0,
                    and_nodes: 0,
                    depth: 0,
                }
            })
            .collect();
        let percentiles: Vec<f64> = (1..num_classes)
            .map(|i| i as f64 / num_classes as f64)
            .collect();
        let values: Vec<f64> = qors.iter().map(|q| q.area_um2).collect();
        let labeler = Labeler::from_percentiles(QorMetric::Area, &values, &percentiles);
        let eval_flows = flows.clone();
        (Dataset::from_evaluations(flows, qors, &labeler), eval_flows)
    }

    /// Builds a dataset by labelling `(flow, qor)` pairs with `labeler`.
    pub fn from_evaluations(flows: Vec<Flow>, qors: Vec<Qor>, labeler: &Labeler) -> Self {
        assert_eq!(flows.len(), qors.len(), "one QoR per flow required");
        let examples = flows
            .into_iter()
            .zip(qors)
            .map(|(flow, qor)| LabeledFlow {
                label: labeler.classify(&qor),
                flow,
                qor,
            })
            .collect();
        Dataset { examples }
    }

    /// Adds one labelled example.
    pub fn push(&mut self, example: LabeledFlow) {
        self.examples.push(example);
    }

    /// The labelled examples.
    pub fn examples(&self) -> &[LabeledFlow] {
        &self.examples
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Re-labels every example with a (typically re-fitted) labeler.
    ///
    /// The framework re-derives the determinators as more flows are collected,
    /// so labels of existing examples may change (Section 3.1: "the definitions
    /// of classes may change dynamically").
    pub fn relabel(&mut self, labeler: &Labeler) {
        for ex in &mut self.examples {
            ex.label = labeler.classify(&ex.qor);
        }
    }

    /// The raw metric values of all examples, used to fit determinators.
    pub fn metric_values(&self, metric: QorMetric) -> Vec<f64> {
        self.examples.iter().map(|e| e.qor.metric(metric)).collect()
    }

    /// Count of examples per class.
    pub fn class_histogram(&self, num_classes: usize) -> Vec<usize> {
        let mut hist = vec![0usize; num_classes];
        for e in &self.examples {
            if e.label < num_classes {
                hist[e.label] += 1;
            }
        }
        hist
    }

    /// Splits into `(train, test)` with `test_fraction` of examples held out,
    /// shuffling with the provided RNG.
    pub fn split(&self, test_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "fraction must be in [0, 1)"
        );
        let mut shuffled = self.examples.clone();
        shuffled.shuffle(rng);
        let test_len = (shuffled.len() as f64 * test_fraction).round() as usize;
        let test = shuffled.split_off(shuffled.len() - test_len.min(shuffled.len()));
        (Dataset { examples: shuffled }, Dataset { examples: test })
    }

    /// Draws a random mini-batch of `batch_size` examples (with replacement if
    /// the dataset is smaller than the batch).
    pub fn sample_batch<'a>(
        &'a self,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Vec<&'a LabeledFlow> {
        assert!(!self.is_empty(), "cannot sample from an empty dataset");
        (0..batch_size)
            .map(|_| &self.examples[rng.gen_range(0..self.examples.len())])
            .collect()
    }

    /// Serialises the dataset to JSON (the paper releases its datasets publicly;
    /// this is the equivalent artefact).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(&self.examples)
    }

    /// Restores a dataset from its JSON form.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        Ok(Dataset {
            examples: serde_json::from_str(json)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use synth::Transform;

    fn toy_dataset(n: usize) -> Dataset {
        let flows: Vec<Flow> = (0..n)
            .map(|i| Flow::new(vec![Transform::from_index(i % Transform::COUNT)]))
            .collect();
        let qors: Vec<Qor> = (0..n)
            .map(|i| Qor {
                area_um2: (i + 1) as f64,
                delay_ps: (n - i) as f64,
                gates: i,
                and_nodes: i,
                depth: 1,
            })
            .collect();
        let labeler = Labeler::paper_model(QorMetric::Area, &qors);
        Dataset::from_evaluations(flows, qors, &labeler)
    }

    #[test]
    fn labels_follow_the_metric_ordering() {
        let ds = toy_dataset(200);
        assert_eq!(ds.len(), 200);
        assert!(!ds.is_empty());
        // The first example has the smallest area, so it is in class 0.
        assert_eq!(ds.examples()[0].label, 0);
        assert_eq!(ds.examples()[199].label, 6);
        let hist = ds.class_histogram(7);
        assert_eq!(hist.iter().sum::<usize>(), 200);
        assert!(hist[0] > 0 && hist[6] > 0);
    }

    #[test]
    fn relabeling_with_delay_flips_the_order() {
        let mut ds = toy_dataset(100);
        let delay_labeler = Labeler::paper_model(
            QorMetric::Delay,
            &ds.examples().iter().map(|e| e.qor).collect::<Vec<_>>(),
        );
        ds.relabel(&delay_labeler);
        assert_eq!(
            ds.examples()[0].label,
            6,
            "smallest area has the largest delay"
        );
        assert_eq!(ds.examples()[99].label, 0);
    }

    #[test]
    fn split_partitions_examples() {
        let ds = toy_dataset(100);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (train, test) = ds.split(0.2, &mut rng);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len() + test.len(), ds.len());
    }

    #[test]
    fn batches_have_requested_size() {
        let ds = toy_dataset(10);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch = ds.sample_batch(5, &mut rng);
        assert_eq!(batch.len(), 5);
    }

    #[test]
    fn json_roundtrip() {
        let ds = toy_dataset(10);
        let json = ds.to_json().expect("serialise");
        let back = Dataset::from_json(&json).expect("deserialise");
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.examples()[3], ds.examples()[3]);
    }

    #[test]
    fn metric_values_match_qor() {
        let ds = toy_dataset(5);
        let areas = ds.metric_values(QorMetric::Area);
        assert_eq!(areas, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
