//! The fully autonomous flow-generation framework (Figure 2 of the paper).
//!
//! The framework ties the pieces together:
//!
//! 1. **Generate training data** — sample random m-repetition flows, run them
//!    through the synthesis tool ([`synth::FlowRunner`]) and label the results
//!    by QoR percentile ([`Labeler`]).  Collection is incremental: the CNN is
//!    first trained once `initial_flows` labelled flows exist and re-trained
//!    after every `retrain_interval` new flows (the paper uses 1000 / 500).
//! 2. **Train the CNN classifier** ([`FlowClassifier`]).
//! 3. **Output angel-flows and devil-flows** — predict a large pool of sample
//!    flows and keep the most confident class-0 / class-n predictions
//!    ([`select_angel_devil_flows`]).

use std::sync::Arc;

use aig::Aig;
use floweval::{EngineConfig, EvalEngine, EvalStats, SearchConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use synth::{FlowRunner, Qor, QorMetric};

use crate::classifier::{ClassifierConfig, FlowClassifier};
use crate::dataset::Dataset;
use crate::encode::FlowEncoder;
use crate::flow::Flow;
use crate::label::{Labeler, PAPER_PERCENTILES};
use crate::select::{angel_devil_accuracy, select_angel_devil_flows, Selection};
use crate::space::FlowSpace;

/// Configuration of one framework run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkConfig {
    /// The flow search space (n, m).
    pub space: FlowSpace,
    /// The QoR metric to optimise (area- or delay-driven flows).
    pub metric: QorMetric,
    /// Total number of labelled training flows to collect (paper: 10,000).
    pub training_flows: usize,
    /// Number of labelled flows required before the first training round (paper: 1000).
    pub initial_flows: usize,
    /// Re-train after this many newly labelled flows (paper: 500).
    pub retrain_interval: usize,
    /// Mini-batch steps per (re-)training round.
    pub steps_per_round: usize,
    /// Number of unlabeled sample flows to classify at the end (paper: 100,000).
    pub sample_flows: usize,
    /// Number of angel- and devil-flows to output (paper: 200 each).
    pub output_flows: usize,
    /// CNN configuration.
    pub classifier: ClassifierConfig,
    /// Master RNG seed.
    pub seed: u64,
    /// When `true`, the sample flows are also evaluated with the synthesis tool
    /// so the selection accuracy (Section 4.1) can be reported.  This is what
    /// the paper does for its evaluation; it dominates runtime.
    pub evaluate_samples: bool,
    /// When non-zero, label collection runs through the sharded work-stealing
    /// search orchestrator ([`floweval::EvalEngine::search_flows`]) with this
    /// many workers instead of the in-process batch evaluator.  Labels are
    /// bit-identical either way; the orchestrator overlaps evaluation across
    /// cores.  `0` (the default) keeps the single-threaded batch path.
    pub search_workers: usize,
}

impl FrameworkConfig {
    /// A laptop-scale configuration suitable for tests and the default bench
    /// harness: the same pipeline with reduced counts.
    pub fn laptop(metric: QorMetric) -> Self {
        FrameworkConfig {
            space: FlowSpace::paper(),
            metric,
            training_flows: 120,
            initial_flows: 60,
            retrain_interval: 30,
            steps_per_round: 150,
            sample_flows: 200,
            output_flows: 20,
            classifier: ClassifierConfig::default(),
            seed: 0xF10,
            evaluate_samples: true,
            search_workers: 0,
        }
    }

    /// The paper-scale configuration (3–4 days of compute in the original work).
    pub fn paper(metric: QorMetric) -> Self {
        FrameworkConfig {
            space: FlowSpace::paper(),
            metric,
            training_flows: 10_000,
            initial_flows: 1_000,
            retrain_interval: 500,
            steps_per_round: 5_000,
            sample_flows: 100_000,
            output_flows: 200,
            classifier: ClassifierConfig::paper(),
            seed: 0xF10,
            evaluate_samples: true,
            search_workers: 0,
        }
    }
}

/// Progress of one incremental training round, for reporting/plotting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingRound {
    /// Number of labelled flows available when the round started.
    pub labelled_flows: usize,
    /// Mean training loss of the round.
    pub training_loss: f32,
    /// Accuracy on the held-out labelled flows after the round.
    pub holdout_accuracy: f64,
    /// Cumulative wall-clock seconds spent (data collection + training).
    pub elapsed_s: f64,
}

/// The result of a full framework run.
#[derive(Debug, Clone)]
pub struct FrameworkReport {
    /// Design name.
    pub design: String,
    /// Metric the flows were optimised for.
    pub metric: QorMetric,
    /// The selected angel- and devil-flows.
    pub selection: Selection,
    /// Per-round training progress.
    pub rounds: Vec<TrainingRound>,
    /// QoR of every evaluated sample flow (empty if `evaluate_samples` is false).
    pub sample_qors: Vec<Qor>,
    /// True labels of the sample flows (empty if `evaluate_samples` is false).
    pub sample_labels: Vec<usize>,
    /// The paper's accuracy metric over the selected flows, when available.
    pub selection_accuracy: Option<f64>,
    /// The labelled training dataset (released publicly by the paper).
    pub dataset: Dataset,
    /// Evaluation-engine statistics for this run: store hits, trie hits and
    /// transform passes avoided relative to naive batch evaluation.
    pub eval_stats: EvalStats,
    /// Total wall-clock runtime in seconds.
    pub runtime_s: f64,
}

impl FrameworkReport {
    /// QoR records of the selected angel flows (requires `evaluate_samples`).
    pub fn angel_qors(&self) -> Vec<Qor> {
        self.selection
            .angel_flows
            .iter()
            .map(|s| self.sample_qors[s.index])
            .collect()
    }

    /// QoR records of the selected devil flows (requires `evaluate_samples`).
    pub fn devil_qors(&self) -> Vec<Qor> {
        self.selection
            .devil_flows
            .iter()
            .map(|s| self.sample_qors[s.index])
            .collect()
    }
}

/// The autonomous framework: design in, angel-/devil-flows out.
///
/// All QoR evaluation goes through a [`floweval::EvalEngine`], so batches
/// with shared prefixes cost one pass application per distinct prefix edge,
/// and flows already known to the engine's persistent store are never
/// re-evaluated.
#[derive(Debug)]
pub struct Framework {
    config: FrameworkConfig,
    engine: Arc<EvalEngine>,
}

impl Framework {
    /// Creates a framework with the default synthesis-tool configuration.
    pub fn new(config: FrameworkConfig) -> Self {
        Framework {
            config,
            engine: Arc::new(EvalEngine::new(EngineConfig::default())),
        }
    }

    /// Creates a framework evaluating exactly like `runner` (custom library,
    /// mapper parameters, verification).
    pub fn with_runner(config: FrameworkConfig, runner: FlowRunner) -> Self {
        let engine = EvalEngine::from_runner(&runner, EngineConfig::default());
        Framework {
            config,
            engine: Arc::new(engine),
        }
    }

    /// Creates a framework around a (possibly shared) evaluation engine —
    /// e.g. one backed by a persistent QoR store, reused across sweep points
    /// of an ablation so repeated flows are never re-evaluated.
    pub fn with_engine(config: FrameworkConfig, engine: Arc<EvalEngine>) -> Self {
        Framework { config, engine }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// The evaluation engine in use.
    pub fn engine(&self) -> &EvalEngine {
        &self.engine
    }

    /// Labels one batch of flows, through the sharded search orchestrator
    /// when [`FrameworkConfig::search_workers`] is non-zero and through the
    /// in-process batch evaluator otherwise.  Both paths return bit-identical
    /// QoR in flow order.
    fn collect_labels(&self, design: &Aig, flows: &[Vec<synth::Transform>]) -> Vec<Qor> {
        if self.config.search_workers == 0 {
            return self.engine.evaluate_batch(design, flows);
        }
        let config = SearchConfig {
            workers: self.config.search_workers,
            ..SearchConfig::default()
        };
        let outcome = self
            .engine
            .search_flows(std::slice::from_ref(design), flows, &config);
        debug_assert_eq!(outcome.labels.len(), flows.len());
        // One design and no eval budget: the sorted label set is exactly the
        // flow list in order.
        debug_assert!(outcome.labels.iter().enumerate().all(|(i, l)| l.flow == i));
        outcome.labels.into_iter().map(|l| l.qor).collect()
    }

    /// Runs the complete pipeline on `design` (the "HDL input" of Figure 2).
    pub fn run(&self, design: &Aig) -> FrameworkReport {
        let start = std::time::Instant::now();
        let stats_before = self.engine.stats();
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // ------------------------------------------------------------------
        // 1. Incremental training-data collection + (re-)training.
        // ------------------------------------------------------------------
        let all_training_flows = cfg.space.random_unique_flows(cfg.training_flows, &mut rng);
        let encoder = FlowEncoder::new(cfg.space.num_transforms(), cfg.space.flow_length(), true);
        let mut classifier_config = cfg.classifier.clone();
        classifier_config.seed = cfg.seed ^ 0xC1A55;
        let mut classifier = FlowClassifier::new(encoder, classifier_config);

        let mut collected_flows: Vec<Flow> = Vec::new();
        let mut collected_qors: Vec<Qor> = Vec::new();
        let mut rounds: Vec<TrainingRound> = Vec::new();
        let mut next_train_at = cfg.initial_flows.min(cfg.training_flows).max(1);

        let mut cursor = 0usize;
        while cursor < all_training_flows.len() {
            let end = next_train_at.min(all_training_flows.len());
            let chunk = &all_training_flows[cursor..end];
            let chunk_flows: Vec<Vec<synth::Transform>> =
                chunk.iter().map(|f| f.transforms().to_vec()).collect();
            let qors = self.collect_labels(design, &chunk_flows);
            collected_flows.extend_from_slice(chunk);
            collected_qors.extend_from_slice(&qors);
            cursor = end;

            // Re-fit the determinators on everything collected so far
            // ("the definitions of classes may change dynamically").
            let values: Vec<f64> = collected_qors
                .iter()
                .map(|q| q.metric(cfg.metric))
                .collect();
            let percentiles = class_percentiles(cfg.classifier.num_classes);
            let labeler = Labeler::from_percentiles(cfg.metric, &values, &percentiles);
            let dataset = Dataset::from_evaluations(
                collected_flows.clone(),
                collected_qors.clone(),
                &labeler,
            );
            let (train, holdout) = dataset.split(0.2, &mut rng);
            let loss = classifier.train(&train, cfg.steps_per_round);
            let holdout_accuracy = classifier.accuracy(&holdout);
            rounds.push(TrainingRound {
                labelled_flows: collected_qors.len(),
                training_loss: loss,
                holdout_accuracy,
                elapsed_s: start.elapsed().as_secs_f64(),
            });
            next_train_at = (next_train_at + cfg.retrain_interval).min(cfg.training_flows);
        }

        // Final labeler / dataset over all training flows.
        let values: Vec<f64> = collected_qors
            .iter()
            .map(|q| q.metric(cfg.metric))
            .collect();
        let percentiles = class_percentiles(cfg.classifier.num_classes);
        let labeler = Labeler::from_percentiles(cfg.metric, &values, &percentiles);
        let dataset = Dataset::from_evaluations(collected_flows, collected_qors, &labeler);

        // ------------------------------------------------------------------
        // 2. Classify the unlabeled sample pool and select angel/devil flows.
        // ------------------------------------------------------------------
        let sample_flows = cfg.space.random_unique_flows(cfg.sample_flows, &mut rng);
        let probabilities = classifier.predict_proba(&sample_flows);
        let selection = select_angel_devil_flows(&sample_flows, &probabilities, cfg.output_flows);

        // ------------------------------------------------------------------
        // 3. Optional evaluation against ground truth (Section 4).
        // ------------------------------------------------------------------
        let (sample_qors, sample_labels, selection_accuracy) = if cfg.evaluate_samples {
            let flows_as_transforms: Vec<Vec<synth::Transform>> = sample_flows
                .iter()
                .map(|f| f.transforms().to_vec())
                .collect();
            let qors = self.collect_labels(design, &flows_as_transforms);
            let sample_values: Vec<f64> = qors.iter().map(|q| q.metric(cfg.metric)).collect();
            let sample_labeler =
                Labeler::from_percentiles(cfg.metric, &sample_values, &percentiles);
            let labels: Vec<usize> = qors.iter().map(|q| sample_labeler.classify(q)).collect();
            let acc = angel_devil_accuracy(&selection, &labels, cfg.classifier.num_classes);
            (qors, labels, Some(acc))
        } else {
            (Vec::new(), Vec::new(), None)
        };

        FrameworkReport {
            design: design.name().to_string(),
            metric: cfg.metric,
            selection,
            rounds,
            sample_qors,
            sample_labels,
            selection_accuracy,
            dataset,
            eval_stats: self.engine.stats().since(&stats_before),
            runtime_s: start.elapsed().as_secs_f64(),
        }
    }
}

/// Determinator percentiles for a `num_classes`-class model: the paper's six
/// percentiles for 7 classes, otherwise evenly spread with pinched tails.
fn class_percentiles(num_classes: usize) -> Vec<f64> {
    if num_classes == 7 {
        return PAPER_PERCENTILES.to_vec();
    }
    let n = num_classes - 1;
    (1..=n).map(|i| i as f64 / (n + 1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{Design, DesignScale};

    fn quick_config(metric: QorMetric) -> FrameworkConfig {
        FrameworkConfig {
            training_flows: 24,
            initial_flows: 12,
            retrain_interval: 6,
            steps_per_round: 20,
            sample_flows: 30,
            output_flows: 5,
            classifier: ClassifierConfig {
                num_kernels: 2,
                dense_units: 8,
                num_classes: 5,
                ..ClassifierConfig::default()
            },
            ..FrameworkConfig::laptop(metric)
        }
    }

    #[test]
    fn paper_config_matches_published_numbers() {
        let c = FrameworkConfig::paper(QorMetric::Area);
        assert_eq!(c.training_flows, 10_000);
        assert_eq!(c.initial_flows, 1_000);
        assert_eq!(c.retrain_interval, 500);
        assert_eq!(c.sample_flows, 100_000);
        assert_eq!(c.output_flows, 200);
        assert_eq!(c.classifier.num_classes, 7);
    }

    #[test]
    fn class_percentiles_match_table_1() {
        assert_eq!(class_percentiles(7), PAPER_PERCENTILES.to_vec());
        let p5 = class_percentiles(5);
        assert_eq!(p5.len(), 4);
        assert!(p5.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn end_to_end_run_produces_flows_and_rounds() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let framework = Framework::new(quick_config(QorMetric::Area));
        let report = framework.run(&design);
        assert_eq!(report.design, design.name());
        assert!(
            !report.rounds.is_empty(),
            "incremental training must happen"
        );
        assert!(report.rounds.len() >= 2, "re-training after the interval");
        assert!(report.dataset.len() == 24);
        assert!(
            !report.selection.angel_flows.is_empty() || !report.selection.devil_flows.is_empty()
        );
        assert_eq!(report.sample_qors.len(), 30);
        assert_eq!(report.sample_labels.len(), 30);
        assert!(report.selection_accuracy.is_some());
        let acc = report.selection_accuracy.unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(report.runtime_s > 0.0);
        // Angel/devil QoR vectors are consistent with the selection sizes.
        assert_eq!(
            report.angel_qors().len(),
            report.selection.angel_flows.len()
        );
        assert_eq!(
            report.devil_qors().len(),
            report.selection.devil_flows.len()
        );
        // Rounds record monotonically increasing labelled-flow counts.
        assert!(report
            .rounds
            .windows(2)
            .all(|w| w[0].labelled_flows < w[1].labelled_flows));
    }

    #[test]
    fn report_surfaces_engine_statistics() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let framework = Framework::new(quick_config(QorMetric::Area));
        let report = framework.run(&design);
        let stats = report.eval_stats;
        // Training flows + evaluated samples all went through the engine.
        assert_eq!(stats.flows_requested, 24 + 30);
        assert_eq!(
            stats.store_hits + stats.flows_evaluated,
            stats.flows_requested
        );
        // Full-length m-repetition flows share prefixes, so the trie must
        // save passes relative to naive batch evaluation.
        assert!(stats.passes_applied < stats.passes_requested);
        assert!(stats.mappings_run > 0);
        // Running the identical configuration again is answered from the
        // engine's store without a single new transform pass.
        let again = framework.run(&design);
        assert_eq!(
            again.eval_stats.store_hits,
            again.eval_stats.flows_requested
        );
        assert_eq!(again.eval_stats.passes_applied, 0);
        assert_eq!(again.sample_qors, report.sample_qors);
    }

    #[test]
    fn orchestrated_label_collection_matches_direct() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let direct = Framework::new(quick_config(QorMetric::Area)).run(&design);
        let orchestrated = Framework::new(FrameworkConfig {
            search_workers: 3,
            ..quick_config(QorMetric::Area)
        })
        .run(&design);
        // Same seed, bit-identical labels → identical dataset, identical
        // sample QoR, identical selection.
        assert_eq!(orchestrated.sample_qors, direct.sample_qors);
        assert_eq!(orchestrated.sample_labels, direct.sample_labels);
        let indices = |s: &Selection| {
            (
                s.angel_flows.iter().map(|f| f.index).collect::<Vec<_>>(),
                s.devil_flows.iter().map(|f| f.index).collect::<Vec<_>>(),
            )
        };
        assert_eq!(indices(&orchestrated.selection), indices(&direct.selection));
        assert!(orchestrated.eval_stats.mappings_run > 0);
    }

    #[test]
    fn laptop_config_is_smaller_than_paper() {
        let l = FrameworkConfig::laptop(QorMetric::Delay);
        let p = FrameworkConfig::paper(QorMetric::Delay);
        assert!(l.training_flows < p.training_flows);
        assert!(l.sample_flows < p.sample_flows);
        assert_eq!(l.metric, QorMetric::Delay);
    }
}
