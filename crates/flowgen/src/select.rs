//! Angel-flow and devil-flow selection (Section 3.3 / Table 2 of the paper).
//!
//! After the classifier has predicted the classes of a large pool of unlabeled
//! sample flows, the framework keeps the flows predicted in the best class
//! (class 0) and the worst class (class `n`), ranked by the softmax confidence
//! of that prediction, and returns the top `k` of each as *angel-flows* and
//! *devil-flows*.

use nn::Tensor;

use crate::flow::Flow;

/// One selected flow together with the classifier's confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedFlow {
    /// Index of the flow in the sample pool.
    pub index: usize,
    /// The flow itself.
    pub flow: Flow,
    /// Probability assigned to the selection class by the classifier.
    pub confidence: f32,
}

/// The output of the selection step: the angel and devil flow lists.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Flows predicted in class 0 with the highest confidence (best QoR).
    pub angel_flows: Vec<SelectedFlow>,
    /// Flows predicted in class `n` with the highest confidence (worst QoR).
    pub devil_flows: Vec<SelectedFlow>,
}

/// Selects up to `count` angel- and devil-flows from `flows` given the
/// classifier probabilities (`[num_flows, num_classes]`).
///
/// A flow is an angel (devil) candidate only when its *predicted* class — the
/// arg-max of its probability row — is class 0 (class `n`), exactly as in
/// Example 4 of the paper (a flow whose highest probability is another class is
/// eliminated even if its class-0 probability is large).
///
/// # Panics
///
/// Panics if the probability tensor shape does not match `flows`.
pub fn select_angel_devil_flows(flows: &[Flow], probabilities: &Tensor, count: usize) -> Selection {
    assert_eq!(
        probabilities.shape().len(),
        2,
        "probabilities must be [flows, classes]"
    );
    assert_eq!(
        probabilities.shape()[0],
        flows.len(),
        "one probability row per flow"
    );
    let num_classes = probabilities.shape()[1];
    assert!(num_classes >= 2, "need at least two classes");
    let best_class = 0usize;
    let worst_class = num_classes - 1;

    let mut angels: Vec<SelectedFlow> = Vec::new();
    let mut devils: Vec<SelectedFlow> = Vec::new();
    for (i, flow) in flows.iter().enumerate() {
        let row: Vec<f32> = (0..num_classes).map(|c| probabilities.at2(i, c)).collect();
        let predicted = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(0);
        if predicted == best_class {
            angels.push(SelectedFlow {
                index: i,
                flow: flow.clone(),
                confidence: row[best_class],
            });
        } else if predicted == worst_class {
            devils.push(SelectedFlow {
                index: i,
                flow: flow.clone(),
                confidence: row[worst_class],
            });
        }
    }
    angels.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    devils.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    angels.truncate(count);
    devils.truncate(count);
    Selection {
        angel_flows: angels,
        devil_flows: devils,
    }
}

/// The accuracy definition of Section 4.1: the fraction of generated angel- and
/// devil-flows whose *true* class is class 0 / class `n` respectively.
///
/// `true_labels[i]` is the true class of sample flow `i` (obtained in the paper
/// by explicitly running all 100,000 sample flows).
pub fn angel_devil_accuracy(
    selection: &Selection,
    true_labels: &[usize],
    num_classes: usize,
) -> f64 {
    let total = selection.angel_flows.len() + selection.devil_flows.len();
    if total == 0 {
        return 0.0;
    }
    let n_angel = selection
        .angel_flows
        .iter()
        .filter(|s| true_labels[s.index] == 0)
        .count();
    let n_devil = selection
        .devil_flows
        .iter()
        .filter(|s| true_labels[s.index] == num_classes - 1)
        .count();
    (n_angel + n_devil) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::Transform;

    fn flows(n: usize) -> Vec<Flow> {
        (0..n)
            .map(|i| Flow::new(vec![Transform::from_index(i % Transform::COUNT)]))
            .collect()
    }

    /// Table 2 of the paper as a literal test case.
    #[test]
    fn example_4_table_2_selection() {
        let fls = flows(5);
        let probs = Tensor::from_vec(
            &[5, 7],
            vec![
                0.47, 0.13, 0.22, 0.02, 0.03, 0.12, 0.01, // F0 -> class 0
                0.51, 0.12, 0.01, 0.09, 0.17, 0.08, 0.02, // F1 -> class 0
                0.02, 0.45, 0.14, 0.12, 0.11, 0.10, 0.06, // F2 -> class 1 (eliminated)
                0.12, 0.03, 0.17, 0.62, 0.01, 0.02, 0.03, // F3 -> class 3 (eliminated)
                0.35, 0.23, 0.09, 0.02, 0.13, 0.17, 0.01, // F4 -> class 0 (lower confidence)
            ],
        );
        let sel = select_angel_devil_flows(&fls, &probs, 2);
        let picked: Vec<usize> = sel.angel_flows.iter().map(|s| s.index).collect();
        assert_eq!(
            picked,
            vec![1, 0],
            "F1 (0.51) and F0 (0.47) selected, F4 eliminated"
        );
        assert!(
            sel.devil_flows.is_empty(),
            "no flow is predicted in class 6"
        );
    }

    #[test]
    fn devils_are_taken_from_the_worst_class() {
        let fls = flows(4);
        let probs = Tensor::from_vec(
            &[4, 3],
            vec![
                0.8, 0.1, 0.1, // class 0
                0.1, 0.1, 0.8, // class 2
                0.2, 0.1, 0.7, // class 2
                0.1, 0.8, 0.1, // class 1
            ],
        );
        let sel = select_angel_devil_flows(&fls, &probs, 10);
        assert_eq!(sel.angel_flows.len(), 1);
        assert_eq!(sel.devil_flows.len(), 2);
        assert_eq!(
            sel.devil_flows[0].index, 1,
            "highest worst-class confidence first"
        );
        assert!(sel.devil_flows[0].confidence > sel.devil_flows[1].confidence);
    }

    #[test]
    fn accuracy_counts_true_class_membership() {
        let fls = flows(4);
        let probs = Tensor::from_vec(
            &[4, 3],
            vec![
                0.9, 0.05, 0.05, // angel candidate
                0.85, 0.1, 0.05, // angel candidate
                0.05, 0.05, 0.9, // devil candidate
                0.1, 0.8, 0.1,
            ],
        );
        let sel = select_angel_devil_flows(&fls, &probs, 2);
        // True labels: flow 0 really is class 0, flow 1 is not, flow 2 really is class 2.
        let truth = vec![0usize, 1, 2, 1];
        let acc = angel_devil_accuracy(&sel, &truth, 3);
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selection_has_zero_accuracy() {
        let sel = Selection::default();
        assert_eq!(angel_devil_accuracy(&sel, &[], 7), 0.0);
    }

    #[test]
    fn count_truncates_selection() {
        let fls = flows(6);
        let mut data = Vec::new();
        for i in 0..6 {
            data.extend_from_slice(&[0.5 + i as f32 * 0.05, 0.3, 0.2 - i as f32 * 0.01]);
        }
        let probs = Tensor::from_vec(&[6, 3], data);
        let sel = select_angel_devil_flows(&fls, &probs, 3);
        assert_eq!(sel.angel_flows.len(), 3);
        // Highest confidence first.
        assert!(sel.angel_flows[0].confidence >= sel.angel_flows[2].confidence);
    }
}
