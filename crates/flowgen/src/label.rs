//! QoR-based flow labelling (Table 1 of the paper).
//!
//! Flows are labelled into `n + 1` classes by comparing their QoR against
//! *determinators* `{x_0, …, x_{n-1}}` derived from percentiles of the QoR
//! values collected so far.  The paper uses seven classes whose determinators
//! sit at the {5, 15, 40, 65, 90, 95} % points of the observed distribution;
//! class 0 holds the best flows (angel candidates) and class `n` the worst
//! (devil candidates).

use serde::{Deserialize, Serialize};
use synth::{Qor, QorMetric};

/// The percentile positions of the determinators for the paper's 7-class model.
pub const PAPER_PERCENTILES: [f64; 6] = [0.05, 0.15, 0.40, 0.65, 0.90, 0.95];

/// A single-metric labelling model (left column of Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Labeler {
    metric: QorMetric,
    determinators: Vec<f64>,
}

impl Labeler {
    /// Builds a labeler whose determinators are the given percentiles of the
    /// observed `values` (lower is better for both area and delay).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `percentiles` is empty / not sorted.
    pub fn from_percentiles(metric: QorMetric, values: &[f64], percentiles: &[f64]) -> Self {
        assert!(
            !values.is_empty(),
            "cannot derive determinators from no data"
        );
        assert!(
            !percentiles.is_empty(),
            "at least one determinator required"
        );
        assert!(
            percentiles.windows(2).all(|w| w[0] <= w[1]),
            "percentiles must be non-decreasing"
        );
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let determinators = percentiles
            .iter()
            .map(|&p| {
                let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
                sorted[idx.min(sorted.len() - 1)]
            })
            .collect();
        Labeler {
            metric,
            determinators,
        }
    }

    /// Builds the paper's 7-class labeler from raw QoR records.
    pub fn paper_model(metric: QorMetric, qors: &[Qor]) -> Self {
        let values: Vec<f64> = qors.iter().map(|q| q.metric(metric)).collect();
        Self::from_percentiles(metric, &values, &PAPER_PERCENTILES)
    }

    /// The QoR metric this labeler classifies on.
    pub fn metric(&self) -> QorMetric {
        self.metric
    }

    /// The determinator values `{x_0, …}`.
    pub fn determinators(&self) -> &[f64] {
        &self.determinators
    }

    /// Number of classes (`number of determinators + 1`).
    pub fn num_classes(&self) -> usize {
        self.determinators.len() + 1
    }

    /// Classifies a raw metric value following Table 1: class 0 for
    /// `r ≤ x_0`, class `i` for `x_{i-1} < r ≤ x_i`, class `n` for `r > x_{n-1}`.
    pub fn classify_value(&self, value: f64) -> usize {
        for (i, &x) in self.determinators.iter().enumerate() {
            if value <= x {
                return i;
            }
        }
        self.determinators.len()
    }

    /// Classifies a QoR record on this labeler's metric.
    pub fn classify(&self, qor: &Qor) -> usize {
        self.classify_value(qor.metric(self.metric))
    }

    /// The best class (angel candidates).
    pub fn best_class(&self) -> usize {
        0
    }

    /// The worst class (devil candidates).
    pub fn worst_class(&self) -> usize {
        self.num_classes() - 1
    }
}

/// A multi-metric labelling model (right column of Table 1): a flow's class is
/// the worst of its per-metric classes, so class 0 still means "best on every
/// metric" and class `n` "worst on some metric".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiMetricLabeler {
    labelers: Vec<Labeler>,
}

impl MultiMetricLabeler {
    /// Combines several single-metric labelers.
    ///
    /// # Panics
    ///
    /// Panics if `labelers` is empty or the class counts disagree.
    pub fn new(labelers: Vec<Labeler>) -> Self {
        assert!(!labelers.is_empty(), "at least one metric required");
        let classes = labelers[0].num_classes();
        assert!(
            labelers.iter().all(|l| l.num_classes() == classes),
            "all metrics must use the same number of classes"
        );
        MultiMetricLabeler { labelers }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.labelers[0].num_classes()
    }

    /// Classifies a QoR record as the worst per-metric class.
    pub fn classify(&self, qor: &Qor) -> usize {
        self.labelers
            .iter()
            .map(|l| l.classify(qor))
            .max()
            .unwrap_or(0)
    }

    /// The underlying per-metric labelers.
    pub fn labelers(&self) -> &[Labeler] {
        &self.labelers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qor(area: f64, delay: f64) -> Qor {
        Qor {
            area_um2: area,
            delay_ps: delay,
            gates: 0,
            and_nodes: 0,
            depth: 0,
        }
    }

    #[test]
    fn classes_partition_the_value_range() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let labeler = Labeler::from_percentiles(QorMetric::Area, &values, &PAPER_PERCENTILES);
        assert_eq!(labeler.num_classes(), 7);
        assert_eq!(labeler.classify_value(0.5), 0);
        assert_eq!(labeler.classify_value(1001.0), 6);
        // Classification is monotone in the value.
        let mut last = 0;
        for v in (1..=1000).map(|i| i as f64) {
            let c = labeler.classify_value(v);
            assert!(c >= last);
            last = c;
        }
        assert_eq!(labeler.best_class(), 0);
        assert_eq!(labeler.worst_class(), 6);
    }

    #[test]
    fn determinators_sit_at_the_requested_percentiles() {
        // With 1000 uniform values 1..=1000 the 5% determinator is ~the 50th
        // smallest value, exactly the example given in Section 3.1.
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let labeler = Labeler::from_percentiles(QorMetric::Delay, &values, &PAPER_PERCENTILES);
        let d = labeler.determinators();
        assert!(
            (d[0] - 51.0).abs() <= 1.0,
            "5% determinator near the 50th value, got {}",
            d[0]
        );
        assert!(
            (d[5] - 950.0).abs() <= 2.0,
            "95% determinator near the 950th value"
        );
        assert_eq!(labeler.metric(), QorMetric::Delay);
    }

    #[test]
    fn class_proportions_match_percentile_gaps() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| (i as f64).sin() * 100.0 + 200.0)
            .collect();
        let labeler = Labeler::from_percentiles(QorMetric::Area, &values, &PAPER_PERCENTILES);
        let mut counts = vec![0usize; labeler.num_classes()];
        for &v in &values {
            counts[labeler.classify_value(v)] += 1;
        }
        let total = values.len() as f64;
        let expected = [0.05, 0.10, 0.25, 0.25, 0.25, 0.05, 0.05];
        for (c, &want) in expected.iter().enumerate() {
            let got = counts[c] as f64 / total;
            assert!(
                (got - want).abs() < 0.03,
                "class {c}: expected ~{want}, got {got}"
            );
        }
    }

    #[test]
    fn qor_classification_uses_selected_metric() {
        let qors: Vec<Qor> = (1..=100)
            .map(|i| qor(i as f64, 1000.0 - i as f64))
            .collect();
        let area = Labeler::paper_model(QorMetric::Area, &qors);
        let delay = Labeler::paper_model(QorMetric::Delay, &qors);
        let best_area = qor(1.0, 999.0);
        assert_eq!(area.classify(&best_area), 0);
        assert_eq!(
            delay.classify(&best_area),
            6,
            "worst delay even though best area"
        );
    }

    #[test]
    fn multi_metric_takes_the_worst_class() {
        let qors: Vec<Qor> = (1..=100).map(|i| qor(i as f64, i as f64)).collect();
        let multi = MultiMetricLabeler::new(vec![
            Labeler::paper_model(QorMetric::Area, &qors),
            Labeler::paper_model(QorMetric::Delay, &qors),
        ]);
        assert_eq!(multi.num_classes(), 7);
        assert_eq!(multi.labelers().len(), 2);
        assert_eq!(multi.classify(&qor(1.0, 1.0)), 0);
        assert_eq!(multi.classify(&qor(1.0, 100.0)), 6);
        assert_eq!(multi.classify(&qor(100.0, 1.0)), 6);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_data_is_rejected() {
        let _ = Labeler::from_percentiles(QorMetric::Area, &[], &PAPER_PERCENTILES);
    }
}
