//! The CNN flow classifier (Section 3.2 / Figure 3 of the paper).
//!
//! Architecture (Figure 3): two convolution + max-pool stages, a
//! locally-connected layer, a dense layer, dropout (rate 0.4) and a softmax
//! output, trained with sparse softmax cross-entropy and mini-batches of 5.
//! Kernel shape, kernel count, activation function and optimiser are all
//! configurable because the paper studies each of them (Figures 4–7).

use nn::{
    Activation, ActivationLayer, Backend, Conv2d, Dense, Dropout, Flatten, GradientDescent,
    LocallyConnected2d, MaxPool2d, Network, Optimizer, Tensor,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;
use crate::encode::FlowEncoder;
use crate::flow::Flow;

/// Configuration of the CNN classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierConfig {
    /// Convolution kernel `(height, width)`; the paper recommends `n × 2n`.
    pub kernel: (usize, usize),
    /// Number of kernels (filters) per convolution layer (the paper uses 200).
    pub num_kernels: usize,
    /// Activation function used throughout the network.
    pub activation: Activation,
    /// Number of QoR classes (the paper uses 7).
    pub num_classes: usize,
    /// Dropout rate of the dropout layer (the paper uses 0.4).
    pub dropout: f32,
    /// Width of the dense layer before the softmax output.
    pub dense_units: usize,
    /// Gradient-descent algorithm.
    pub optimizer: GradientDescent,
    /// Learning rate (the paper uses 1e-4).
    pub learning_rate: f32,
    /// Mini-batch size (the paper uses 5).
    pub batch_size: usize,
    /// RNG seed for weight initialisation, dropout and batch sampling.
    pub seed: u64,
    /// Compute backend for the network layers ([`Backend::Fast`] by default;
    /// [`Backend::Reference`] keeps the scalar loops for differential tests).
    pub backend: Backend,
}

impl Default for ClassifierConfig {
    /// A small configuration for quick experiments and unit tests: the
    /// paper's architecture with fewer kernels.  The full-size network is no
    /// longer off-limits on a CPU — the GEMM-backed [`Backend::Fast`] trains
    /// it in minutes, not hours (see the `nn_perf` bench and
    /// `BENCH_PR3.json`); select it with [`ClassifierConfig::paper_scale`].
    fn default() -> Self {
        ClassifierConfig {
            kernel: (3, 6),
            num_kernels: 12,
            activation: Activation::Selu,
            num_classes: 7,
            dropout: 0.4,
            dense_units: 32,
            optimizer: GradientDescent::RmsProp { decay: 0.9 },
            learning_rate: 1e-3,
            batch_size: 5,
            seed: 0xDAC18,
            backend: Backend::Fast,
        }
    }
}

impl ClassifierConfig {
    /// The paper's full-size configuration (two conv stages of 200 kernels
    /// each, rectangular 6×12 `n × 2n` kernel, SELU, RMSProp, learning rate
    /// 1e-4, batch size 5).
    pub fn paper_scale() -> Self {
        ClassifierConfig {
            kernel: (6, 12),
            num_kernels: 200,
            activation: Activation::Selu,
            num_classes: 7,
            dropout: 0.4,
            dense_units: 128,
            optimizer: GradientDescent::RmsProp { decay: 0.9 },
            learning_rate: 1e-4,
            batch_size: 5,
            seed: 0xDAC18,
            backend: Backend::Fast,
        }
    }

    /// Alias of [`ClassifierConfig::paper_scale`] (kept for callers of the
    /// pre-backend API).
    pub fn paper() -> Self {
        Self::paper_scale()
    }

    /// Returns the configuration with the given compute backend selected.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// The CNN flow classifier: encoder + network + optimiser.
#[derive(Debug)]
pub struct FlowClassifier {
    config: ClassifierConfig,
    encoder: FlowEncoder,
    network: Network,
    optimizer: Optimizer,
    rng: ChaCha8Rng,
    steps_trained: usize,
}

impl FlowClassifier {
    /// Builds the classifier for a given flow encoder.
    pub fn new(encoder: FlowEncoder, config: ClassifierConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let (h, w) = encoder.sample_shape();
        let k = config.num_kernels;
        let mut network = Network::new();
        // Stage 1: conv + activation + pool.
        network.push(Conv2d::new(config.kernel, 1, k, &mut rng));
        network.push(ActivationLayer::new(config.activation));
        network.push(MaxPool2d::new((2, 2)));
        let (h1, w1) = ((h / 2).max(1), (w / 2).max(1));
        // Stage 2: conv + activation + pool.
        network.push(Conv2d::new(config.kernel, k, k, &mut rng));
        network.push(ActivationLayer::new(config.activation));
        network.push(MaxPool2d::new((2, 2)));
        let (h2, w2) = ((h1 / 2).max(1), (w1 / 2).max(1));
        // Locally-connected layer over the remaining spatial map.
        let local_kernel = (2.min(h2), 2.min(w2));
        let local_out = (k / 2).max(1);
        network.push(LocallyConnected2d::new(
            (h2, w2, k),
            local_kernel,
            local_out,
            &mut rng,
        ));
        network.push(ActivationLayer::new(config.activation));
        network.push(Flatten::new());
        let local_h = h2 - local_kernel.0 + 1;
        let local_w = w2 - local_kernel.1 + 1;
        let flat = local_h * local_w * local_out;
        // Dense head with dropout and softmax output.
        network.push(Dense::new(flat, config.dense_units, &mut rng));
        network.push(ActivationLayer::new(config.activation));
        network.push(Dropout::new(config.dropout, config.seed ^ 0x5EED));
        network.push(Dense::new(config.dense_units, config.num_classes, &mut rng));
        network.set_backend(config.backend);

        let optimizer = Optimizer::new(config.optimizer, config.learning_rate);
        FlowClassifier {
            config,
            encoder,
            network,
            optimizer,
            rng,
            steps_trained: 0,
        }
    }

    /// Builds the classifier for the paper's flow space (24-step flows over six
    /// transformations, reshaped to 12×12).
    pub fn for_paper_space(config: ClassifierConfig) -> Self {
        FlowClassifier::new(FlowEncoder::paper(), config)
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClassifierConfig {
        &self.config
    }

    /// The flow encoder in use.
    pub fn encoder(&self) -> &FlowEncoder {
        &self.encoder
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&mut self) -> usize {
        self.network.num_parameters()
    }

    /// Number of mini-batch steps performed so far.
    pub fn steps_trained(&self) -> usize {
        self.steps_trained
    }

    /// A human-readable summary of the network architecture.
    pub fn summary(&self) -> String {
        self.network.summary()
    }

    /// Trains for `steps` mini-batches sampled from `dataset`; returns the mean
    /// training loss over those steps.
    pub fn train(&mut self, dataset: &Dataset, steps: usize) -> f32 {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let mut total = 0.0f32;
        for _ in 0..steps {
            let batch = dataset.sample_batch(self.config.batch_size, &mut self.rng);
            let flows: Vec<&Flow> = batch.iter().map(|e| &e.flow).collect();
            let labels: Vec<usize> = batch.iter().map(|e| e.label).collect();
            let x = self.encoder.encode_batch(&flows);
            let out = self.network.train_step(&x, &labels, &mut self.optimizer);
            total += out.loss;
        }
        self.steps_trained += steps;
        total / steps.max(1) as f32
    }

    /// Predicts class probabilities for a batch of flows (`[batch, classes]`).
    pub fn predict_proba(&mut self, flows: &[Flow]) -> Tensor {
        let refs: Vec<&Flow> = flows.iter().collect();
        let x = self.encoder.encode_batch(&refs);
        self.network.predict_proba(&x)
    }

    /// Predicts the class of each flow.
    pub fn predict(&mut self, flows: &[Flow]) -> Vec<usize> {
        let refs: Vec<&Flow> = flows.iter().collect();
        let x = self.encoder.encode_batch(&refs);
        self.network.predict(&x)
    }

    /// Classification accuracy over a labelled dataset.
    pub fn accuracy(&mut self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let flows: Vec<Flow> = dataset.examples().iter().map(|e| e.flow.clone()).collect();
        let labels: Vec<usize> = dataset.examples().iter().map(|e| e.label).collect();
        let predictions = self.predict(&flows);
        nn::accuracy(&predictions, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::FlowSpace;

    fn tiny_config() -> ClassifierConfig {
        ClassifierConfig {
            kernel: (3, 6),
            num_kernels: 4,
            dense_units: 16,
            num_classes: 3,
            learning_rate: 2e-3,
            ..ClassifierConfig::default()
        }
    }

    #[test]
    fn builds_the_figure_3_stack() {
        let mut clf = FlowClassifier::for_paper_space(tiny_config());
        let s = clf.summary();
        assert!(s.contains("Conv2d"), "{s}");
        assert!(
            s.matches("Conv2d").count() == 2,
            "two convolution stages: {s}"
        );
        assert!(s.contains("MaxPool2d"));
        assert!(s.contains("LocallyConnected2d"));
        assert!(s.contains("Dropout"));
        assert!(s.contains("Dense"));
        assert!(clf.num_parameters() > 500);
        assert_eq!(clf.steps_trained(), 0);
    }

    #[test]
    fn paper_config_matches_published_hyperparameters() {
        let c = ClassifierConfig::paper();
        assert_eq!(c.num_kernels, 200);
        assert_eq!(c.kernel, (6, 12));
        assert_eq!(c.num_classes, 7);
        assert!((c.dropout - 0.4).abs() < 1e-6);
        assert!((c.learning_rate - 1e-4).abs() < 1e-9);
        assert_eq!(c.batch_size, 5);
        assert_eq!(c.activation, Activation::Selu);
        assert_eq!(c.optimizer, GradientDescent::RmsProp { decay: 0.9 });
    }

    #[test]
    fn training_improves_over_chance_on_learnable_labels() {
        let (dataset, _) = Dataset::synthetic_balance(150, 3);
        let mut clf = FlowClassifier::for_paper_space(tiny_config());
        let before = clf.accuracy(&dataset);
        let first_loss = clf.train(&dataset, 30);
        let _ = clf.train(&dataset, 270);
        let last_loss = clf.train(&dataset, 30);
        let after = clf.accuracy(&dataset);
        assert!(clf.steps_trained() >= 300);
        assert!(
            last_loss < first_loss || after > before + 0.1 || after > 0.5,
            "training made no progress: loss {first_loss} -> {last_loss}, acc {before} -> {after}"
        );
    }

    #[test]
    fn probabilities_are_normalised() {
        let space = FlowSpace::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let flows = space.random_unique_flows(4, &mut rng);
        let mut clf = FlowClassifier::for_paper_space(tiny_config());
        let probs = clf.predict_proba(&flows);
        assert_eq!(probs.shape(), &[4, 3]);
        for b in 0..4 {
            let s: f32 = (0..3).map(|c| probs.at2(b, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let preds = clf.predict(&flows);
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|&p| p < 3));
    }
}
