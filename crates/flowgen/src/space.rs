//! The synthesis-flow search space (Section 2.1 of the paper).
//!
//! Definitions 1 and 2 of the paper introduce *non-repetition* and
//! *m-repetition* flows over a transformation set `S` of size `n`, and Remark 3
//! counts the m-repetition flows of a given length.  This module provides exact
//! counting (`u128` arithmetic) plus seeded random sampling of flows.

use rand::seq::SliceRandom;
use rand::Rng;
use synth::Transform;

use crate::flow::Flow;

/// The m-repetition flow search space over the paper's transformation set.
///
/// ```
/// use flowgen::FlowSpace;
/// let space = FlowSpace::paper();        // n = 6, m = 4, L = 24
/// assert_eq!(space.flow_length(), 24);
/// assert!(space.num_complete_flows() > 10u128.pow(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpace {
    /// Number of transformations (`n`).
    num_transforms: usize,
    /// Number of repetitions of the whole set (`m`).
    repetition: usize,
}

impl FlowSpace {
    /// Creates a space over the first `num_transforms` elements of
    /// [`Transform::ALL`] with `repetition` copies of each.
    ///
    /// # Panics
    ///
    /// Panics if `num_transforms` is zero or exceeds the available set, or if
    /// `repetition` is zero.
    pub fn new(num_transforms: usize, repetition: usize) -> Self {
        assert!((1..=Transform::COUNT).contains(&num_transforms));
        assert!(repetition >= 1, "at least one repetition required");
        FlowSpace {
            num_transforms,
            repetition,
        }
    }

    /// The paper's setup: all six transformations with 4 repetitions (L = 24).
    pub fn paper() -> Self {
        FlowSpace::new(Transform::COUNT, 4)
    }

    /// Number of transformations `n`.
    pub fn num_transforms(&self) -> usize {
        self.num_transforms
    }

    /// Repetition count `m`.
    pub fn repetition(&self) -> usize {
        self.repetition
    }

    /// Flow length `L = n × m` (Remark 2).
    pub fn flow_length(&self) -> usize {
        self.num_transforms * self.repetition
    }

    /// The transformation subset in use.
    pub fn transforms(&self) -> &'static [Transform] {
        &Transform::ALL[..self.num_transforms]
    }

    /// Number of complete m-repetition flows: `(n·m)! / (m!)^n`.
    pub fn num_complete_flows(&self) -> u128 {
        count_limited_permutations(self.num_transforms, self.repetition, self.flow_length())
    }

    /// Number of length-`length` prefixes (`f(n, L, m)` of Remark 3): sequences
    /// of `length` transformations in which no transformation appears more than
    /// `m` times.
    pub fn num_partial_flows(&self, length: usize) -> u128 {
        count_limited_permutations(self.num_transforms, self.repetition, length)
    }

    /// Draws one uniformly random m-repetition flow.
    pub fn random_flow(&self, rng: &mut impl Rng) -> Flow {
        let mut seq: Vec<Transform> = Vec::with_capacity(self.flow_length());
        for &t in self.transforms() {
            for _ in 0..self.repetition {
                seq.push(t);
            }
        }
        seq.shuffle(rng);
        Flow::new(seq)
    }

    /// Draws `count` *distinct* random m-repetition flows.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the size of the search space.
    pub fn random_unique_flows(&self, count: usize, rng: &mut impl Rng) -> Vec<Flow> {
        assert!(
            (count as u128) <= self.num_complete_flows(),
            "requested more unique flows than the space contains"
        );
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut flows = Vec::with_capacity(count);
        while flows.len() < count {
            let f = self.random_flow(rng);
            if seen.insert(f.clone()) {
                flows.push(f);
            }
        }
        flows
    }
}

/// Counts length-`length` sequences over `n` symbols where each symbol appears
/// at most `m` times (and exactly `m` times when `length == n * m`).
///
/// Computed by dynamic programming over symbols:
/// `ways(i, l) = Σ_k C(l, k) · ways(i-1, l-k)` for `k ≤ min(m, l)`.
fn count_limited_permutations(n: usize, m: usize, length: usize) -> u128 {
    if length > n * m {
        return 0;
    }
    // ways[l] = number of ways to fill `l` chosen positions with the symbols
    // processed so far; positions are distinguishable, so multiply by C(l, k).
    let mut ways = vec![0u128; length + 1];
    ways[0] = 1;
    for _symbol in 0..n {
        let mut next = vec![0u128; length + 1];
        for l in 0..=length {
            if ways[l] == 0 {
                continue;
            }
            for k in 0..=m.min(length - l) {
                next[l + k] += ways[l] * binomial(l + k, k);
            }
        }
        ways = next;
    }
    ways[length]
}

/// Exact binomial coefficient in `u128`.
fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u128;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn example_1_non_repetition_flows() {
        // Definition 1 / Example 1: 3 independent transformations, 6 flows.
        let space = FlowSpace::new(3, 1);
        assert_eq!(space.num_complete_flows(), 6);
        assert_eq!(space.flow_length(), 3);
    }

    #[test]
    fn example_2_two_repetition_flows() {
        // Definition 2 / Example 2: S = {p0, p1}, m = 2 gives 6 flows.
        let space = FlowSpace::new(2, 2);
        assert_eq!(space.num_complete_flows(), 6);
    }

    #[test]
    fn paper_space_exceeds_1e15() {
        // Section 2.2 claims "more than 10^16" flows; the exact multiset
        // permutation count 24!/(4!)^6 is 3.25e15, the same order of magnitude.
        let space = FlowSpace::paper();
        assert_eq!(space.num_transforms(), 6);
        assert_eq!(space.repetition(), 4);
        assert_eq!(space.flow_length(), 24);
        let count = space.num_complete_flows();
        // 24! / (4!)^6 = 3.25e15; the paper rounds this up to "more than 10^16".
        assert!(count > 3 * 10u128.pow(15), "got {count}");
        // Exact value: 24! / (4!)^6.
        let factorial_24: u128 = (1..=24u128).product();
        let factorial_4: u128 = 24;
        assert_eq!(count, factorial_24 / factorial_4.pow(6));
    }

    #[test]
    fn remark_3_bounds_hold() {
        // n! < f(n, L, m) < n^L for complete m-repetition flows with m >= 2.
        for n in 2..=5usize {
            for m in 2..=3usize {
                let space = FlowSpace::new(n, m);
                let f = space.num_complete_flows();
                let n_fact: u128 = (1..=n as u128).product();
                let n_pow_l = (n as u128).pow((n * m) as u32);
                assert!(n_fact < f, "n={n} m={m}: {n_fact} !< {f}");
                assert!(f < n_pow_l, "n={n} m={m}: {f} !< {n_pow_l}");
            }
        }
    }

    #[test]
    fn partial_flow_counts_are_monotone_and_consistent() {
        let space = FlowSpace::new(3, 2);
        // Length 0: one empty flow; length 1: n choices.
        assert_eq!(space.num_partial_flows(0), 1);
        assert_eq!(space.num_partial_flows(1), 3);
        // Length 2: all ordered pairs allowed (each symbol can repeat twice) = 9.
        assert_eq!(space.num_partial_flows(2), 9);
        // Full length matches the complete count; beyond it, zero.
        assert_eq!(space.num_partial_flows(6), space.num_complete_flows());
        assert_eq!(space.num_partial_flows(7), 0);
    }

    #[test]
    fn random_flows_are_valid_m_repetition_permutations() {
        let space = FlowSpace::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let flow = space.random_flow(&mut rng);
        assert_eq!(flow.len(), 24);
        for t in space.transforms() {
            let occurrences = flow.transforms().iter().filter(|&&x| x == *t).count();
            assert_eq!(occurrences, 4, "{t} must appear exactly m times");
        }
    }

    #[test]
    fn unique_sampling_produces_distinct_flows() {
        let space = FlowSpace::new(4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let flows = space.random_unique_flows(50, &mut rng);
        let set: std::collections::HashSet<_> = flows.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let space = FlowSpace::paper();
        let a = space.random_flow(&mut ChaCha8Rng::seed_from_u64(9));
        let b = space.random_flow(&mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(24, 12), 2_704_156);
    }
}
