//! Synthesis flows: ordered sequences of transformations.

use serde::{Deserialize, Serialize};
use synth::Transform;

/// A synthesis flow: the ordered sequence of transformations applied to a design
/// (Definition 1 / 2 of the paper).
///
/// ```
/// use flowgen::Flow;
/// use synth::Transform;
///
/// let flow = Flow::new(vec![Transform::Balance, Transform::Rewrite]);
/// assert_eq!(flow.len(), 2);
/// assert_eq!(flow.to_script(), "balance; rewrite");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flow {
    transforms: Vec<Transform>,
}

impl Flow {
    /// Creates a flow from a sequence of transformations.
    pub fn new(transforms: Vec<Transform>) -> Self {
        Flow { transforms }
    }

    /// The transformation sequence.
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Flow length `L`.
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// Returns `true` for the empty flow.
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Checks whether this flow is a valid m-repetition flow over the first
    /// `n` transformations: every transformation appears exactly `m` times.
    pub fn is_m_repetition(&self, n: usize, m: usize) -> bool {
        if self.transforms.len() != n * m {
            return false;
        }
        Transform::ALL[..n]
            .iter()
            .all(|t| self.transforms.iter().filter(|&&x| x == *t).count() == m)
    }

    /// Renders the flow as an ABC-style script (`cmd; cmd; …`).
    pub fn to_script(&self) -> String {
        self.transforms
            .iter()
            .map(|t| t.command())
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// The named flow presets: the classic ABC optimization scripts expressed
    /// over this reproduction's transformation set, in a stable order.
    ///
    /// These are the flows users reach for by name (`flowc run --flow resyn2`)
    /// and the fixed workloads of the perf harness.
    pub fn presets() -> &'static [(&'static str, &'static [Transform])] {
        use Transform::*;
        &[
            ("compress", &[Balance, Rewrite, RewriteZ, Balance, Rewrite]),
            (
                "compress2",
                &[
                    Balance, Rewrite, Refactor, Balance, Rewrite, RewriteZ, Balance, RefactorZ,
                    RewriteZ, Balance,
                ],
            ),
            ("resyn", &[Balance, Rewrite, Rewrite, Balance, Rewrite]),
            (
                "resyn2",
                &[Balance, Rewrite, Refactor, Balance, RewriteZ, RefactorZ],
            ),
            (
                "resyn3",
                &[
                    Balance,
                    Restructure,
                    RewriteZ,
                    Balance,
                    RefactorZ,
                    Restructure,
                ],
            ),
        ]
    }

    /// Looks up a named preset (see [`Flow::presets`]).
    pub fn named(name: &str) -> Option<Flow> {
        Flow::presets()
            .iter()
            .find(|(preset, _)| *preset == name)
            .map(|(_, transforms)| Flow::new(transforms.to_vec()))
    }

    /// Parses a flow given either as a preset name or as an ABC-style script.
    ///
    /// # Errors
    ///
    /// Returns the offending command string when the input is neither a known
    /// preset nor a parsable script.
    pub fn parse(input: &str) -> Result<Flow, String> {
        match Flow::named(input.trim()) {
            Some(flow) => Ok(flow),
            None => Flow::parse_script(input),
        }
    }

    /// Parses an ABC-style script back into a flow.
    ///
    /// # Errors
    ///
    /// Returns the offending command string when it does not name a known
    /// transformation.
    pub fn parse_script(script: &str) -> Result<Flow, String> {
        let mut transforms = Vec::new();
        for part in script.split(';') {
            let cmd = part.trim();
            if cmd.is_empty() {
                continue;
            }
            let t = Transform::ALL
                .iter()
                .find(|t| t.command() == cmd)
                .copied()
                .ok_or_else(|| cmd.to_string())?;
            transforms.push(t);
        }
        Ok(Flow::new(transforms))
    }
}

impl std::fmt::Display for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_script())
    }
}

impl FromIterator<Transform> for Flow {
    fn from_iter<I: IntoIterator<Item = Transform>>(iter: I) -> Self {
        Flow::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_roundtrip() {
        let flow = Flow::new(vec![
            Transform::Balance,
            Transform::RewriteZ,
            Transform::RefactorZ,
            Transform::Restructure,
        ]);
        let script = flow.to_script();
        assert_eq!(script, "balance; rewrite -z; refactor -z; restructure");
        let parsed = Flow::parse_script(&script).expect("valid script");
        assert_eq!(parsed, flow);
    }

    #[test]
    fn parse_rejects_unknown_commands() {
        let err = Flow::parse_script("balance; strash").unwrap_err();
        assert_eq!(err, "strash");
    }

    #[test]
    fn m_repetition_check() {
        let flow: Flow = Transform::ALL.into_iter().collect();
        assert!(flow.is_m_repetition(6, 1));
        assert!(!flow.is_m_repetition(6, 2));
        assert!(!flow.is_m_repetition(5, 1));
        let double: Flow = Transform::ALL.into_iter().chain(Transform::ALL).collect();
        assert!(double.is_m_repetition(6, 2));
    }

    #[test]
    fn empty_flow() {
        let f = Flow::new(vec![]);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.to_script(), "");
        assert_eq!(Flow::parse_script("").expect("empty ok"), f);
    }

    #[test]
    fn display_matches_script() {
        let flow = Flow::new(vec![Transform::Rewrite]);
        assert_eq!(flow.to_string(), "rewrite");
    }

    #[test]
    fn presets_are_named_nonempty_and_script_roundtrippable() {
        assert!(!Flow::presets().is_empty());
        for (name, transforms) in Flow::presets() {
            let flow = Flow::named(name).expect("preset resolves");
            assert_eq!(flow.transforms(), *transforms);
            assert!(!flow.is_empty(), "preset `{name}` is empty");
            assert_eq!(Flow::parse_script(&flow.to_script()).unwrap(), flow);
        }
        assert!(Flow::named("dch").is_none());
    }

    #[test]
    fn parse_accepts_presets_and_scripts() {
        assert_eq!(
            Flow::parse("resyn2").unwrap(),
            Flow::named("resyn2").unwrap()
        );
        assert_eq!(
            Flow::parse("balance; rewrite -z").unwrap(),
            Flow::new(vec![Transform::Balance, Transform::RewriteZ])
        );
        assert_eq!(Flow::parse("unknown-thing").unwrap_err(), "unknown-thing");
    }
}
