//! # flowgen — autonomous synthesis-flow generation (the paper's contribution)
//!
//! This crate reproduces the framework of *Developing Synthesis Flows Without
//! Human Knowledge* (Yu, Xiao, De Micheli — DAC 2018): a fully autonomous
//! pipeline that, given a design, discovers *angel-flows* (best-QoR synthesis
//! flows) and *devil-flows* (worst-QoR flows) without human guidance by
//! training a CNN to classify one-hot-encoded flows by their QoR class.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | §2.1 search space, Remark 3 counting | [`FlowSpace`] |
//! | §3.1 framework overview (Figure 2)    | [`Framework`] |
//! | §3.1 labelling model (Table 1)        | [`Labeler`], [`MultiMetricLabeler`] |
//! | §3.2.1 one-hot flow encoding          | [`FlowEncoder`] |
//! | §3.2.2 CNN architecture (Figure 3)    | [`FlowClassifier`], [`ClassifierConfig`] |
//! | §3.3 angel/devil selection (Table 2)  | [`select_angel_devil_flows`] |
//! | §4.1 accuracy definition              | [`angel_devil_accuracy`] |
//!
//! ## Quick example
//!
//! ```no_run
//! use circuits::{Design, DesignScale};
//! use flowgen::{Framework, FrameworkConfig};
//! use synth::QorMetric;
//!
//! let design = Design::Alu64.generate(DesignScale::Small);
//! let framework = Framework::new(FrameworkConfig::laptop(QorMetric::Area));
//! let report = framework.run(&design);
//! for angel in &report.selection.angel_flows {
//!     println!("{} (confidence {:.2})", angel.flow, angel.confidence);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod dataset;
mod encode;
mod flow;
mod framework;
mod label;
mod select;
mod space;

pub use classifier::{ClassifierConfig, FlowClassifier};
pub use dataset::{Dataset, LabeledFlow};
pub use encode::FlowEncoder;
pub use flow::Flow;
pub use framework::{Framework, FrameworkConfig, FrameworkReport, TrainingRound};
pub use label::{Labeler, MultiMetricLabeler, PAPER_PERCENTILES};
pub use select::{angel_devil_accuracy, select_angel_devil_flows, SelectedFlow, Selection};
pub use space::FlowSpace;
