//! One-hot representation of synthesis flows (Section 3.2.1).
//!
//! A flow of length `L` over `n` transformations becomes an `L × n` binary
//! matrix: row `j` is the one-hot vector of the `j`-th transformation.  For the
//! paper's setup (L = 24, n = 6) the matrix is reshaped to 12 × 12 so that two
//! convolution + pooling stages fit (Section 4).

use nn::Tensor;

use crate::flow::Flow;

/// Encodes flows into the binary matrices consumed by the CNN classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEncoder {
    num_transforms: usize,
    flow_length: usize,
    reshape_square: bool,
}

impl FlowEncoder {
    /// Creates an encoder for flows of `flow_length` transformations drawn from
    /// a set of `num_transforms`.
    ///
    /// When `reshape_square` is `true` and `flow_length * num_transforms` is a
    /// perfect square, encoded matrices are reshaped to that square (the paper
    /// reshapes 24×6 to 12×12).
    pub fn new(num_transforms: usize, flow_length: usize, reshape_square: bool) -> Self {
        FlowEncoder {
            num_transforms,
            flow_length,
            reshape_square,
        }
    }

    /// The paper's encoder: 24×6 one-hot matrices reshaped to 12×12.
    pub fn paper() -> Self {
        FlowEncoder::new(6, 24, true)
    }

    /// Height and width of one encoded sample.
    pub fn sample_shape(&self) -> (usize, usize) {
        let elements = self.flow_length * self.num_transforms;
        if self.reshape_square {
            let side = (elements as f64).sqrt() as usize;
            if side * side == elements {
                return (side, side);
            }
        }
        (self.flow_length, self.num_transforms)
    }

    /// Encodes one flow as an `[1, H, W, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the flow length does not match the encoder configuration.
    pub fn encode(&self, flow: &Flow) -> Tensor {
        self.encode_batch(&[flow])
    }

    /// Encodes a batch of flows as an `[batch, H, W, 1]` tensor.
    pub fn encode_batch(&self, flows: &[&Flow]) -> Tensor {
        let (h, w) = self.sample_shape();
        let sample_len = self.flow_length * self.num_transforms;
        let mut data = Vec::with_capacity(flows.len() * sample_len);
        for flow in flows {
            assert_eq!(
                flow.len(),
                self.flow_length,
                "flow length {} does not match encoder length {}",
                flow.len(),
                self.flow_length
            );
            let mut matrix = vec![0.0f32; sample_len];
            for (row, t) in flow.transforms().iter().enumerate() {
                let col = t.index();
                assert!(
                    col < self.num_transforms,
                    "transformation {t} outside the encoder's set"
                );
                matrix[row * self.num_transforms + col] = 1.0;
            }
            data.extend_from_slice(&matrix);
        }
        Tensor::from_vec(&[flows.len(), h, w, 1], data)
    }

    /// Encodes a batch of owned flows (convenience wrapper).
    pub fn encode_owned(&self, flows: &[Flow]) -> Tensor {
        let refs: Vec<&Flow> = flows.iter().collect();
        self.encode_batch(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use synth::Transform;

    #[test]
    fn example_3_one_hot_matrix() {
        // Example 3 of the paper: S = {p0, p1}, F = p0 -> p0 -> p1 -> p1 gives
        // the 4×2 matrix [[1,0],[1,0],[0,1],[0,1]].
        let encoder = FlowEncoder::new(2, 4, false);
        let flow = Flow::new(vec![
            Transform::from_index(0),
            Transform::from_index(0),
            Transform::from_index(1),
            Transform::from_index(1),
        ]);
        let t = encoder.encode(&flow);
        assert_eq!(t.shape(), &[1, 4, 2, 1]);
        assert_eq!(t.data(), &[1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn each_row_has_exactly_one_hot_bit() {
        let space = crate::FlowSpace::paper();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let flow = space.random_flow(&mut rng);
        let encoder = FlowEncoder::new(6, 24, false);
        let t = encoder.encode(&flow);
        assert_eq!(t.shape(), &[1, 24, 6, 1]);
        for row in 0..24 {
            let ones: f32 = (0..6).map(|c| t.data()[row * 6 + c]).sum();
            assert_eq!(ones, 1.0, "row {row}");
        }
        assert_eq!(t.sum() as usize, 24);
    }

    #[test]
    fn paper_encoder_reshapes_to_12x12() {
        let encoder = FlowEncoder::paper();
        assert_eq!(encoder.sample_shape(), (12, 12));
        let space = crate::FlowSpace::paper();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let flow = space.random_flow(&mut rng);
        let t = encoder.encode(&flow);
        assert_eq!(t.shape(), &[1, 12, 12, 1]);
        assert_eq!(t.sum() as usize, 24, "reshaping preserves the 24 one-bits");
    }

    #[test]
    fn non_square_sizes_keep_l_by_n_shape() {
        let encoder = FlowEncoder::new(6, 12, true);
        // 12 * 6 = 72 is not a perfect square, so the L×n shape is kept.
        assert_eq!(encoder.sample_shape(), (12, 6));
    }

    #[test]
    fn batch_encoding_stacks_samples() {
        let space = crate::FlowSpace::new(6, 1);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let flows = space.random_unique_flows(3, &mut rng);
        let encoder = FlowEncoder::new(6, 6, true);
        let t = encoder.encode_owned(&flows);
        assert_eq!(t.shape(), &[3, 6, 6, 1]);
        // Different flows give different matrices.
        let a = &t.data()[0..36];
        let b = &t.data()[36..72];
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not match encoder length")]
    fn rejects_wrong_length() {
        let encoder = FlowEncoder::paper();
        let flow = Flow::new(vec![Transform::Balance]);
        let _ = encoder.encode(&flow);
    }
}
