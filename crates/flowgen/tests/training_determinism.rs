//! End-to-end training determinism of the flow classifier on the fast nn
//! backend: a seeded training run must produce bit-identical losses and
//! predictions regardless of the worker-thread count (extending the PR 1
//! `runner_determinism` pattern from flow evaluation to classifier training).

use flowgen::{ClassifierConfig, Dataset, FlowClassifier};
use nn::Backend;

/// All thread-count variations run inside this single `#[test]` because the
/// pool size is process-global state.
#[test]
fn seeded_training_is_bit_identical_across_thread_counts() {
    let (dataset, eval_flows) = Dataset::synthetic_balance(60, 3);
    let config = ClassifierConfig {
        num_kernels: 6,
        dense_units: 16,
        num_classes: 3,
        backend: Backend::Fast,
        ..ClassifierConfig::default()
    };

    let run = |threads: usize| -> (Vec<f32>, Vec<usize>) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut clf = FlowClassifier::for_paper_space(config.clone());
            // Several mean-loss observations along the run, not just the last,
            // so divergence at any step is caught.
            let losses: Vec<f32> = (0..4).map(|_| clf.train(&dataset, 10)).collect();
            let preds = clf.predict(&eval_flows);
            (losses, preds)
        })
    };

    let (losses_1, preds_1) = run(1);
    for threads in [2usize, 4] {
        let (losses_n, preds_n) = run(threads);
        assert_eq!(
            losses_1.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            losses_n.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "{threads} threads changed seeded training losses bitwise"
        );
        assert_eq!(
            preds_1, preds_n,
            "{threads} threads changed post-training predictions"
        );
    }
}

/// The two backends must agree on predictions after identical seeded training
/// (logits differ only by summation order, within tolerance).
#[test]
fn backends_agree_on_seeded_classifier_predictions() {
    let (dataset, eval_flows) = Dataset::synthetic_balance(40, 3);
    let mut configs = Vec::new();
    for backend in [Backend::Reference, Backend::Fast] {
        configs.push(ClassifierConfig {
            num_kernels: 4,
            dense_units: 16,
            num_classes: 3,
            backend,
            ..ClassifierConfig::default()
        });
    }
    let mut results = Vec::new();
    for config in configs {
        let mut clf = FlowClassifier::for_paper_space(config);
        let loss = clf.train(&dataset, 20);
        let probs = clf.predict_proba(&eval_flows);
        let preds = clf.predict(&eval_flows);
        results.push((loss, probs, preds));
    }
    let (loss_ref, probs_ref, preds_ref) = &results[0];
    let (loss_fast, probs_fast, preds_fast) = &results[1];
    assert!(
        (loss_ref - loss_fast).abs() <= 1e-3 * loss_ref.abs().max(1.0),
        "training losses diverged: {loss_ref} vs {loss_fast}"
    );
    for (a, b) in probs_ref.data().iter().zip(probs_fast.data()) {
        assert!(
            (a - b).abs() <= 1e-3,
            "class probabilities diverged: {a} vs {b}"
        );
    }
    assert_eq!(preds_ref, preds_fast, "argmax predictions diverged");
}
