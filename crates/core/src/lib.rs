//! # flow-core — shared dependency-free primitives
//!
//! Small utilities used across the workspace that must not pull in any other
//! crate: a stable (platform- and run-independent) [`Fnv64`] hasher and the
//! [`Fingerprint`] type built on it.
//!
//! The flow-evaluation engine (the `floweval` crate) content-addresses
//! its persistent QoR store with these fingerprints: a design's fingerprint
//! plus an evaluation-configuration fingerprint plus the flow script uniquely
//! identify one evaluation result, so results can be reused across processes
//! and machines.  `std::collections::hash_map::DefaultHasher` is explicitly
//! *not* suitable for that purpose — its output is randomised per process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod crc32;
#[cfg(feature = "failpoints")]
pub mod fail;

pub use cancel::{silence_cancel_unwinds, CancelReason, CancelToken, Cancelled};

/// Evaluates a named failpoint (see the `fail` module, which is compiled in
/// only under the `failpoints` feature).
///
/// Expands to nothing unless the **consuming** crate enables its own
/// `failpoints` feature (which must forward to `flow-core/failpoints`), so
/// instrumented hot paths cost zero in normal builds.
///
/// Two forms:
///
/// * `fail_point!("name")` — delay and panic tasks act in place; `return`
///   tasks are ignored.
/// * `fail_point!("name", |arg| expr)` — a triggered `return` task makes the
///   **enclosing function** return `expr`, with `arg: Option<String>` from
///   the spec.  Delay/panic tasks still act in place.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            let _ = $crate::fail::eval($name);
        }
    }};
    ($name:expr, $handler:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            if let Some(__fp_arg) = $crate::fail::eval($name) {
                return ($handler)(__fp_arg);
            }
        }
    }};
}

/// A 64-bit FNV-1a hasher with a stable, documented output.
///
/// ```
/// use flow_core::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"hello");
/// // FNV-1a test vector for "hello".
/// assert_eq!(h.finish(), 0xa430d84680aabd0b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fnv64 {
    /// Creates a hasher with the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, value: u32) {
        self.write(&value.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to 64 bits so the hash is
    /// architecture-independent.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        self.write(value.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// A stable 64-bit content fingerprint, displayed as fixed-width hex.
///
/// ```
/// use flow_core::Fingerprint;
/// let fp = Fingerprint::of_bytes(b"abc");
/// assert_eq!(fp, Fingerprint::of_bytes(b"abc"));
/// assert_eq!(fp.to_string().len(), 16);
/// assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprints a byte string.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = Fnv64::new();
        h.write(bytes);
        Fingerprint(h.finish())
    }

    /// Wraps a finished hasher.
    pub fn from_hasher(hasher: Fnv64) -> Self {
        Fingerprint(hasher.finish())
    }

    /// Parses the fixed-width hex form produced by `Display`.
    pub fn parse(text: &str) -> Option<Self> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_test_vectors() {
        // Canonical FNV-1a 64-bit vectors.
        let cases: [(&[u8], u64); 3] = [
            (b"", 0xcbf29ce484222325),
            (b"a", 0xaf63dc4c8601ec8c),
            (b"foobar", 0x85944171f73967e8),
        ];
        for (input, expected) in cases {
            let mut h = Fnv64::new();
            h.write(input);
            assert_eq!(h.finish(), expected, "input {input:?}");
        }
    }

    #[test]
    fn length_prefixed_strings_do_not_collide() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprint_hex_roundtrip() {
        let fp = Fingerprint(0x0123_4567_89AB_CDEF);
        assert_eq!(fp.to_string(), "0123456789abcdef");
        assert_eq!(Fingerprint::parse("0123456789abcdef"), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(Fingerprint::parse(""), None);
    }

    #[test]
    fn usize_width_independence() {
        let mut h = Fnv64::new();
        h.write_usize(7);
        let mut g = Fnv64::new();
        g.write_u64(7);
        assert_eq!(h.finish(), g.finish());
    }
}
