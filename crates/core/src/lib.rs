pub fn placeholder() {}
