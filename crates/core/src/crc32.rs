//! CRC32 (IEEE 802.3) — the checksum guarding QoR store records.
//!
//! Vendored per workspace policy (no crates.io).  The reflected polynomial
//! `0xEDB88320` with init/xorout `0xFFFF_FFFF` matches zlib's `crc32()`, so
//! store files can be cross-checked with standard tooling.
//!
//! ```
//! use flow_core::crc32;
//! // The canonical CRC32 check value.
//! assert_eq!(crc32::of(b"123456789"), 0xCBF4_3926);
//! ```

/// The byte-at-a-time lookup table for the reflected IEEE polynomial,
/// built in a `const` context so the table costs nothing at runtime.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC32 hasher.
///
/// ```
/// use flow_core::crc32::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum of a byte string.
pub fn of(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee_test_vectors() {
        // zlib-compatible vectors.
        let cases: [(&[u8], u32); 4] = [
            (b"", 0x0000_0000),
            (b"a", 0xE8B7_BE43),
            (b"123456789", 0xCBF4_3926),
            (b"The quick brown fox jumps over the lazy dog", 0x414F_A339),
        ];
        for (input, expected) in cases {
            assert_eq!(of(input), expected, "input {input:?}");
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello checksummed world";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), of(data), "split at {split}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let good = of(b"v2 record payload");
        let flipped = of(b"v2 record paylosd");
        assert_ne!(good, flipped);
    }
}
