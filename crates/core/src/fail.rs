//! Deterministic, seeded fault injection ("failpoints").
//!
//! Compiled in only with the `failpoints` cargo feature; release builds
//! without the feature carry zero code and zero runtime cost (the
//! [`fail_point!`](crate::fail_point) macro expands to nothing in crates
//! that do not enable their own forwarding feature).
//!
//! Unlike probabilistic fault injectors, triggering is **deterministic**:
//! whether hit `n` of point `p` fires is a pure function of the global seed,
//! the point name and `n`, so a chaos run can be replayed exactly by
//! configuring the same seed and schedule.
//!
//! Spec grammar (a subset of the `fail` crate's):
//!
//! ```text
//! off                      disable the point, keep its counters
//! [<pct>%][<cnt>*]<task>[(arg)]
//! ```
//!
//! where `<task>` is `return`, `panic`, `delay` (milliseconds arg) or
//! `abort` (kill the whole process without unwinding or flushing — the
//! crash-consistency harness schedules these mid-write), `<pct>` limits the
//! deterministic trigger probability and `<cnt>` caps the total number of
//! triggers.  Examples: `return`, `25%panic`, `1*delay(3000)`, `5%delay(30)`,
//! `2*return(io)`, `1*abort`.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::Fnv64;

/// What a triggered point does.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Task {
    /// Short-circuit the caller (handler form of the macro) with an optional
    /// argument string.
    Return(Option<String>),
    /// Panic with a recognisable message (exercises panic isolation).
    Panic(Option<String>),
    /// Stall the calling thread (exercises deadlines and the watchdog).
    Delay(u64),
    /// Kill the process on the spot — no unwinding, no buffered flushes —
    /// simulating a power cut at an instrumented point.
    Abort,
}

#[derive(Debug)]
struct Point {
    /// Deterministic trigger probability in percent (100 = always).
    pct: u8,
    /// Remaining trigger budget (`None` = unlimited).
    remaining: Option<u64>,
    task: Option<Task>,
    hits: u64,
    triggers: u64,
}

#[derive(Debug, Default)]
struct Registry {
    seed: u64,
    points: HashMap<String, Point>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Sets the global seed that makes percentage triggers deterministic.
pub fn set_seed(seed: u64) {
    registry().lock().expect("failpoint registry").seed = seed;
}

/// Configures (or reconfigures) a failpoint.  Counters reset.
pub fn cfg(name: &str, spec: &str) -> Result<(), String> {
    let (pct, remaining, task) = parse_spec(spec)?;
    let mut reg = registry().lock().expect("failpoint registry");
    reg.points.insert(
        name.to_string(),
        Point {
            pct,
            remaining,
            task,
            hits: 0,
            triggers: 0,
        },
    );
    Ok(())
}

/// Removes one failpoint (its counters disappear with it).
pub fn remove(name: &str) {
    registry()
        .lock()
        .expect("failpoint registry")
        .points
        .remove(name);
}

/// Removes every configured failpoint.
pub fn teardown() {
    registry()
        .lock()
        .expect("failpoint registry")
        .points
        .clear();
}

/// How often the named point was reached (configured points only).
pub fn hits(name: &str) -> u64 {
    registry()
        .lock()
        .expect("failpoint registry")
        .points
        .get(name)
        .map_or(0, |p| p.hits)
}

/// How often the named point actually fired.
pub fn triggers(name: &str) -> u64 {
    registry()
        .lock()
        .expect("failpoint registry")
        .points
        .get(name)
        .map_or(0, |p| p.triggers)
}

/// Evaluates a failpoint at a call site.  Delay and panic tasks act right
/// here; a `return` task hands its argument to the macro's handler via
/// `Some(arg)`.
pub fn eval(name: &str) -> Option<Option<String>> {
    let fired = {
        let mut reg = registry().lock().expect("failpoint registry");
        let seed = reg.seed;
        let point = reg.points.get_mut(name)?;
        let hit = point.hits;
        point.hits += 1;
        let task = point.task.clone()?;
        if !decide(seed, name, hit, point.pct) {
            return None;
        }
        match point.remaining {
            Some(0) => return None,
            Some(ref mut n) => *n -= 1,
            None => {}
        }
        point.triggers += 1;
        task
        // Lock released here: delays and panics must not hold the registry.
    };
    match fired {
        Task::Return(arg) => Some(arg),
        Task::Panic(message) => {
            let detail = message.as_deref().unwrap_or("injected panic");
            panic!("failpoint {name}: {detail}");
        }
        Task::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Task::Abort => std::process::abort(),
    }
}

/// Deterministic per-hit trigger decision: FNV over (seed, name, hit).
fn decide(seed: u64, name: &str, hit: u64, pct: u8) -> bool {
    if pct >= 100 {
        return true;
    }
    if pct == 0 {
        return false;
    }
    let mut h = Fnv64::new();
    h.write_u64(seed);
    h.write_str(name);
    h.write_u64(hit);
    (h.finish() % 100) < u64::from(pct)
}

fn parse_spec(spec: &str) -> Result<(u8, Option<u64>, Option<Task>), String> {
    let spec = spec.trim();
    if spec == "off" {
        return Ok((100, None, None));
    }
    let mut rest = spec;
    let mut pct: u8 = 100;
    if let Some(idx) = rest.find('%') {
        pct = rest[..idx]
            .parse::<u8>()
            .map_err(|_| format!("bad percentage in `{spec}`"))?
            .min(100);
        rest = &rest[idx + 1..];
    }
    let mut remaining = None;
    if let Some(idx) = rest.find('*') {
        remaining = Some(
            rest[..idx]
                .parse::<u64>()
                .map_err(|_| format!("bad trigger count in `{spec}`"))?,
        );
        rest = &rest[idx + 1..];
    }
    let (task_name, arg) = match rest.find('(') {
        Some(open) => {
            let close = rest
                .rfind(')')
                .ok_or_else(|| format!("unclosed argument in `{spec}`"))?;
            (&rest[..open], Some(rest[open + 1..close].to_string()))
        }
        None => (rest, None),
    };
    let task = match task_name {
        "return" => Task::Return(arg),
        "panic" => Task::Panic(arg),
        "delay" | "sleep" => {
            let ms = arg
                .as_deref()
                .unwrap_or("0")
                .parse::<u64>()
                .map_err(|_| format!("bad delay millis in `{spec}`"))?;
            Task::Delay(ms)
        }
        "abort" => Task::Abort,
        other => return Err(format!("unknown failpoint task `{other}` in `{spec}`")),
    };
    Ok((pct, remaining, Some(task)))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; keep the tests on one point namespace
    // each so parallel test threads cannot interfere.

    #[test]
    fn unconfigured_points_are_silent() {
        assert_eq!(eval("tests.never-configured"), None);
        assert_eq!(hits("tests.never-configured"), 0);
    }

    #[test]
    fn return_task_hands_arg_to_handler() {
        cfg("tests.ret", "return(io)").unwrap();
        assert_eq!(eval("tests.ret"), Some(Some("io".to_string())));
        assert_eq!(hits("tests.ret"), 1);
        assert_eq!(triggers("tests.ret"), 1);
        remove("tests.ret");
        assert_eq!(eval("tests.ret"), None);
    }

    #[test]
    fn trigger_budget_is_respected() {
        cfg("tests.budget", "2*return").unwrap();
        assert!(eval("tests.budget").is_some());
        assert!(eval("tests.budget").is_some());
        assert!(eval("tests.budget").is_none());
        assert_eq!(hits("tests.budget"), 3);
        assert_eq!(triggers("tests.budget"), 2);
        remove("tests.budget");
    }

    #[test]
    fn percentage_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            set_seed(seed);
            cfg("tests.pct", "30%return").unwrap();
            let fired = (0..64).map(|_| eval("tests.pct").is_some()).collect();
            remove("tests.pct");
            fired
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        let c = run(8);
        assert_ne!(a, c, "different seed, different schedule");
        set_seed(0);
    }

    #[test]
    fn off_keeps_counters_but_never_fires() {
        cfg("tests.off", "off").unwrap();
        assert_eq!(eval("tests.off"), None);
        assert_eq!(hits("tests.off"), 1);
        assert_eq!(triggers("tests.off"), 0);
        remove("tests.off");
    }

    #[test]
    fn delay_task_stalls_then_continues() {
        cfg("tests.delay", "1*delay(20)").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(eval("tests.delay"), None);
        assert!(start.elapsed() >= Duration::from_millis(20));
        // Budget of one: the second hit is instant.
        let start = std::time::Instant::now();
        assert_eq!(eval("tests.delay"), None);
        assert!(start.elapsed() < Duration::from_millis(20));
        remove("tests.delay");
    }

    #[test]
    fn spec_errors_are_reported() {
        assert!(parse_spec("frobnicate").is_err());
        assert!(parse_spec("x%return").is_err());
        assert!(parse_spec("delay(abc)").is_err());
        assert!(parse_spec("return(unclosed").is_err());
        // `abort` parses; triggering it would kill the test process, so only
        // the subprocess-based crash harness ever fires one.
        assert!(parse_spec("1*abort").is_ok());
    }
}
