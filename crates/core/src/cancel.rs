//! Cooperative cancellation and deadline propagation.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between the party
//! imposing a budget (a service request handler, a watchdog) and the code
//! doing the work (synthesis passes, the mapper).  Workers poll
//! [`CancelToken::check`] at natural checkpoints — pass boundaries and
//! per-node sweep loops — and unwind when the token reports [`Cancelled`].
//!
//! The unwind itself is panic-based: deep pass internals return `()` and
//! thread no `Result` type, so the cancelling caller wraps the work in
//! `std::panic::catch_unwind` and downcasts the payload to [`Cancelled`].
//! Real panics (bugs) are re-raised; cancellation is converted into a typed
//! error.  [`silence_cancel_unwinds`] installs a panic-hook filter so these
//! intentional unwinds do not spam stderr with backtraces.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why a unit of work was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called explicitly (drain, watchdog, client
    /// disconnect).
    Cancelled,
    /// The token's wall-clock deadline passed.
    DeadlineExceeded,
}

/// The typed payload carried by a cancellation unwind.
///
/// Also serves as the error type returned by cancellable entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the work was stopped.
    pub reason: CancelReason,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            CancelReason::Cancelled => write!(f, "evaluation cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "evaluation deadline exceeded"),
        }
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation handle, optionally carrying a wall-clock deadline.
///
/// Cloning is cheap (one `Arc` bump); all clones observe the same state.
/// A token with neither a deadline nor an explicit [`cancel`](Self::cancel)
/// call never fires, so "no budget" is just [`CancelToken::never`] — callers
/// need no `Option` plumbing.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never cancels on its own (can still be cancelled
    /// explicitly).
    pub fn never() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that expires `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` when no deadline was set; zero
    /// once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Requests cancellation.  Idempotent; wins over a later deadline expiry
    /// when reporting the reason.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// The current state: `Some(reason)` once the token has fired.
    pub fn state(&self) -> Option<CancelReason> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(CancelReason::Cancelled);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// `Err(Cancelled)` once the token has fired; cheap enough for inner
    /// loops when strided (the explicit-cancel flag is one atomic load, the
    /// deadline one `Instant::now()`).
    pub fn check(&self) -> Result<(), Cancelled> {
        match self.state() {
            Some(reason) => Err(Cancelled { reason }),
            None => Ok(()),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::never()
    }
}

/// Installs (once per process) a panic-hook filter that swallows unwinds
/// whose payload is [`Cancelled`], keeping intentional cancellation quiet
/// while leaving real panics on the previous hook.
pub fn silence_cancel_unwinds() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Cancelled>() {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_stays_quiet() {
        let token = CancelToken::never();
        assert_eq!(token.state(), None);
        assert!(token.check().is_ok());
        assert_eq!(token.deadline(), None);
        assert_eq!(token.remaining(), None);
    }

    #[test]
    fn explicit_cancel_fires_and_wins() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(token.check().is_ok());
        let clone = token.clone();
        clone.cancel();
        assert_eq!(token.state(), Some(CancelReason::Cancelled));
        assert_eq!(
            token.check().unwrap_err().reason,
            CancelReason::Cancelled,
            "explicit cancel reported even with a live deadline"
        );
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(token.state(), Some(CancelReason::DeadlineExceeded));
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancelled_payload_roundtrips_through_catch_unwind() {
        silence_cancel_unwinds();
        let outcome = std::panic::catch_unwind(|| {
            std::panic::panic_any(Cancelled {
                reason: CancelReason::DeadlineExceeded,
            });
        });
        let payload = outcome.unwrap_err();
        let cancelled = payload.downcast::<Cancelled>().expect("typed payload");
        assert_eq!(cancelled.reason, CancelReason::DeadlineExceeded);
    }
}
