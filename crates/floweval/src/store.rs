//! Persistent, content-addressed QoR store.
//!
//! Every evaluated (design, evaluation-config, flow) triple maps to exactly
//! one [`Qor`] because the whole pipeline is deterministic, so results are
//! addressed by content: a stable design fingerprint, a fingerprint of the
//! cell library + mapper parameters, and the flow's ABC-style script.  Records
//! are appended to a JSON-lines file, making the store crash-tolerant (a torn
//! final line is skipped on load) and trivially mergeable across machines —
//! concatenating two stores is a valid store.
//!
//! Repeated framework runs, benches and ablations over the same design never
//! re-evaluate a known flow: dataset collection is the dominant cost in the
//! paper (3–4 days of compute) and this store amortises it across processes.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use flow_core::Fingerprint;
use serde::{Deserialize, Serialize};
use synth::Qor;

/// The address of one evaluation result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Fingerprint of the design's structure.
    pub design: Fingerprint,
    /// Fingerprint of the evaluation configuration (library + mapper).
    pub config: Fingerprint,
    /// The flow as an ABC-style script (`cmd; cmd; …`).
    pub flow: String,
}

/// One JSON-lines record of the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QorRecord {
    /// Hex design fingerprint.
    design: String,
    /// Hex evaluation-config fingerprint.
    config: String,
    /// Flow script.
    flow: String,
    /// The evaluation result.
    qor: Qor,
}

/// A persistent map from [`StoreKey`] to [`Qor`], with optional disk backing.
#[derive(Debug)]
pub struct QorStore {
    index: HashMap<StoreKey, Qor>,
    writer: Option<File>,
    path: Option<PathBuf>,
    loaded: usize,
    skipped: usize,
    duplicates: usize,
}

/// What [`QorStore::compact`] did to the backing file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CompactionReport {
    /// Distinct records surviving compaction.
    pub records: usize,
    /// Duplicate lines (same key appearing more than once) dropped.
    pub duplicates_dropped: usize,
    /// Malformed lines dropped.
    pub malformed_dropped: usize,
    /// File size before compaction, in bytes.
    pub bytes_before: u64,
    /// File size after compaction, in bytes.
    pub bytes_after: u64,
}

impl QorStore {
    /// Creates a store with no disk backing (useful for tests and one-shot
    /// runs).
    pub fn in_memory() -> Self {
        QorStore {
            index: HashMap::new(),
            writer: None,
            path: None,
            loaded: 0,
            skipped: 0,
            duplicates: 0,
        }
    }

    /// Opens (or creates) a JSON-lines store at `path`, loading every valid
    /// record.  Malformed lines — e.g. a torn final line after a crash — are
    /// counted in [`QorStore::skipped_records`] and otherwise ignored.
    ///
    /// Duplicate keys (which arise when several processes append to one file,
    /// or when two stores are concatenated) resolve **last-write-wins**: the
    /// record appended last is the one served, matching append order.  The
    /// number of superseded lines is reported by
    /// [`QorStore::duplicate_records`]; [`QorStore::compact`] rewrites the
    /// file without them.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut index = HashMap::new();
        let mut loaded = 0usize;
        let mut skipped = 0usize;
        let mut duplicates = 0usize;
        let mut ends_mid_line = false;
        match File::open(&path) {
            Ok(mut file) => {
                ends_mid_line = !ends_with_newline(&mut file)?;
                for line in BufReader::new(file).lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_record(&line) {
                        Some((key, qor)) => {
                            // Last-write-wins: a later line supersedes an
                            // earlier one for the same key.
                            if index.insert(key, qor).is_some() {
                                duplicates += 1;
                            }
                            loaded += 1;
                        }
                        None => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if ends_mid_line {
            // A crash tore the final line; terminate it so the next record
            // starts on a fresh line instead of being glued to the fragment.
            file.write_all(b"\n")?;
        }
        Ok(QorStore {
            index,
            writer: Some(file),
            path: Some(path),
            loaded,
            skipped,
            duplicates,
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of records currently indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records loaded from disk at open time.
    pub fn loaded_records(&self) -> usize {
        self.loaded
    }

    /// Malformed lines skipped at open time.
    pub fn skipped_records(&self) -> usize {
        self.skipped
    }

    /// Superseded duplicate lines observed at open time (last write won).
    pub fn duplicate_records(&self) -> usize {
        self.duplicates
    }

    /// Rewrites the backing file to exactly one line per key, dropping
    /// superseded duplicates and malformed lines, then reopens the append
    /// writer.  Records are written in a stable order (sorted by design,
    /// config, flow) so compacting the same store twice produces identical
    /// bytes.
    ///
    /// The rewrite goes through a sibling temp file followed by an atomic
    /// rename, so a crash mid-compaction leaves either the old or the new
    /// file, never a torn one.  No-op (returning zero counts) for in-memory
    /// stores.
    pub fn compact(&mut self) -> std::io::Result<CompactionReport> {
        let Some(path) = self.path.clone() else {
            return Ok(CompactionReport {
                records: self.index.len(),
                duplicates_dropped: 0,
                malformed_dropped: 0,
                bytes_before: 0,
                bytes_after: 0,
            });
        };
        self.flush()?;
        let bytes_before = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        let mut entries: Vec<(&StoreKey, &Qor)> = self.index.iter().collect();
        entries.sort_unstable_by(|(a, _), (b, _)| {
            (a.design.0, a.config.0, &a.flow).cmp(&(b.design.0, b.config.0, &b.flow))
        });
        let mut body = String::new();
        for (key, qor) in entries {
            let record = QorRecord {
                design: key.design.to_string(),
                config: key.config.to_string(),
                flow: key.flow.clone(),
                qor: *qor,
            };
            match serde_json::to_string(&record) {
                Ok(json) => {
                    body.push_str(&json);
                    body.push('\n');
                }
                Err(e) => {
                    return Err(std::io::Error::other(format!(
                        "cannot serialize store record: {e}"
                    )))
                }
            }
        }

        let tmp = path.with_extension("compact.tmp");
        // Drop the append handle before replacing the file it points at.
        self.writer = None;
        self.write_compacted(&tmp, body.as_bytes())?;
        std::fs::rename(&tmp, &path)?;
        self.writer = Some(OpenOptions::new().create(true).append(true).open(&path)?);

        let report = CompactionReport {
            records: self.index.len(),
            duplicates_dropped: self.duplicates,
            malformed_dropped: self.skipped,
            bytes_before,
            bytes_after: body.len() as u64,
        };
        self.loaded = self.index.len();
        self.duplicates = 0;
        self.skipped = 0;
        Ok(report)
    }

    /// Writes and `sync_all`s the compaction temp file, so the atomic rename
    /// never publishes a file whose contents could still be lost to a crash.
    fn write_compacted(&mut self, tmp: &std::path::Path, body: &[u8]) -> std::io::Result<()> {
        flow_core::fail_point!("store.compact", |_| Err(injected_io_error("compact")));
        let mut file = File::create(tmp)?;
        file.write_all(body)?;
        file.sync_all()
    }

    /// Looks up a result.
    pub fn get(&self, key: &StoreKey) -> Option<Qor> {
        self.index.get(key).copied()
    }

    /// Inserts a result, appending it to the backing file when present.
    ///
    /// Each record (including its trailing newline) is submitted as one
    /// unbuffered write on an `O_APPEND` file, which keeps concurrent
    /// processes sharing a store file from interleaving partial lines on
    /// local filesystems (records are far below the pipe/page sizes where
    /// short writes occur; a torn line would be skipped on the next load,
    /// never mis-parsed).
    ///
    /// An `Err` means only the on-disk append failed: the record is kept in
    /// the in-memory index regardless, so the store degrades to cache-only
    /// operation under disk faults instead of re-evaluating or failing
    /// requests.  Callers surface the error count (`EvalStats`), they do not
    /// abort on it.
    pub fn insert(&mut self, key: StoreKey, qor: Qor) -> std::io::Result<()> {
        if self.index.contains_key(&key) {
            return Ok(());
        }
        let mut appended = Ok(());
        if let Some(writer) = &mut self.writer {
            let record = QorRecord {
                design: key.design.to_string(),
                config: key.config.to_string(),
                flow: key.flow.clone(),
                qor,
            };
            appended = match serde_json::to_string(&record) {
                Ok(mut json) => {
                    json.push('\n');
                    append_record(writer, json.as_bytes())
                }
                Err(e) => Err(std::io::Error::other(format!(
                    "cannot serialize store record: {e}"
                ))),
            };
        }
        self.index.insert(key, qor);
        appended
    }

    /// Makes every appended record durable: records are written unbuffered,
    /// so this is the `fsync` point (`sync_all`).  Called at drain/compact
    /// time, not per insert — per-record fsync would serialize the service's
    /// hot path on the disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        flow_core::fail_point!("store.flush", |_| Err(injected_io_error("flush")));
        match &mut self.writer {
            Some(writer) => {
                writer.flush()?;
                writer.sync_all()
            }
            None => Ok(()),
        }
    }
}

/// One unbuffered append (failpoint-instrumented).
fn append_record(writer: &mut File, bytes: &[u8]) -> std::io::Result<()> {
    flow_core::fail_point!("store.write", |_| Err(injected_io_error("write")));
    writer.write_all(bytes)
}

#[cfg(feature = "failpoints")]
fn injected_io_error(op: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint: injected store {op} error"))
}

/// Returns `true` for an empty file or one whose last byte is `\n`.
fn ends_with_newline(file: &mut File) -> std::io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(true);
    }
    file.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    file.read_exact(&mut last)?;
    file.seek(SeekFrom::Start(0))?;
    Ok(last[0] == b'\n')
}

impl Drop for QorStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

fn parse_record(line: &str) -> Option<(StoreKey, Qor)> {
    let record: QorRecord = serde_json::from_str(line).ok()?;
    let key = StoreKey {
        design: Fingerprint::parse(&record.design)?,
        config: Fingerprint::parse(&record.config)?,
        flow: record.flow,
    };
    Some((key, record.qor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(flow: &str) -> StoreKey {
        StoreKey {
            design: Fingerprint(0xAB),
            config: Fingerprint(0xCD),
            flow: flow.to_string(),
        }
    }

    fn qor(area: f64) -> Qor {
        Qor {
            area_um2: area,
            delay_ps: 10.0,
            gates: 3,
            and_nodes: 4,
            depth: 2,
        }
    }

    #[test]
    fn in_memory_store_roundtrip() {
        let mut store = QorStore::in_memory();
        assert!(store.is_empty());
        store.insert(key("balance"), qor(1.5)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&key("balance")), Some(qor(1.5)));
        assert_eq!(store.get(&key("rewrite")), None);
    }

    #[test]
    fn disk_store_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("floweval-store-{}", std::process::id()));
        let path = dir.join("qor.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance; rewrite"), qor(2.25)).unwrap();
            store.insert(key("refactor"), qor(3.5)).unwrap();
            store.flush().expect("flush");
        }
        {
            let store = QorStore::open(&path).expect("reopen");
            assert_eq!(store.loaded_records(), 2);
            assert_eq!(store.skipped_records(), 0);
            assert_eq!(store.get(&key("balance; rewrite")), Some(qor(2.25)));
            assert_eq!(store.get(&key("refactor")), Some(qor(3.5)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("floweval-torn-{}", std::process::id()));
        let path = dir.join("qor.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance"), qor(1.0)).unwrap();
            store.flush().expect("flush");
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("append");
            write!(f, "{{\"design\":\"torn").expect("write");
        }
        let store = QorStore::open(&path).expect("reopen");
        assert_eq!(store.loaded_records(), 1);
        assert_eq!(store.skipped_records(), 1);
        assert_eq!(store.get(&key("balance")), Some(qor(1.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_after_a_torn_line_without_newline_survive() {
        let dir = std::env::temp_dir().join(format!("floweval-notnl-{}", std::process::id()));
        let path = dir.join("qor.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance"), qor(1.0)).unwrap();
        }
        {
            // Crash mid-append: torn fragment with NO trailing newline.
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("append");
            write!(f, "{{\"design\":\"torn").expect("write");
        }
        {
            let mut store = QorStore::open(&path).expect("reopen");
            assert_eq!(store.skipped_records(), 1);
            store.insert(key("rewrite"), qor(2.0)).unwrap();
        }
        // The record appended after the torn fragment must load cleanly.
        let store = QorStore::open(&path).expect("re-reopen");
        assert_eq!(store.loaded_records(), 2);
        assert_eq!(store.skipped_records(), 1);
        assert_eq!(store.get(&key("rewrite")), Some(qor(2.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Appends a raw record line for `key` with the given area, bypassing the
    /// in-memory index — simulating another process appending to the file.
    fn append_raw(path: &Path, key: &StoreKey, area: f64) {
        use std::io::Write as _;
        let record = QorRecord {
            design: key.design.to_string(),
            config: key.config.to_string(),
            flow: key.flow.clone(),
            qor: qor(area),
        };
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("append");
        writeln!(f, "{}", serde_json::to_string(&record).unwrap()).expect("write");
    }

    #[test]
    fn duplicates_on_disk_resolve_last_write_wins() {
        let dir = std::env::temp_dir().join(format!("floweval-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qor.jsonl");
        let _ = std::fs::remove_file(&path);
        append_raw(&path, &key("balance"), 1.0);
        append_raw(&path, &key("rewrite"), 5.0);
        append_raw(&path, &key("balance"), 2.0);
        append_raw(&path, &key("balance"), 3.0);
        let store = QorStore::open(&path).expect("open");
        assert_eq!(store.len(), 2);
        assert_eq!(store.loaded_records(), 4);
        assert_eq!(store.duplicate_records(), 2);
        assert_eq!(
            store.get(&key("balance")),
            Some(qor(3.0)),
            "last write wins"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_drops_duplicates_and_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("floweval-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qor.jsonl");
        let _ = std::fs::remove_file(&path);
        for area in [1.0, 2.0, 3.0] {
            append_raw(&path, &key("balance"), area);
        }
        append_raw(&path, &key("rewrite"), 9.0);
        {
            // A torn line is dropped by compaction too.
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"design\":\"torn").unwrap();
        }
        let mut store = QorStore::open(&path).expect("open");
        let report = store.compact().expect("compact");
        assert_eq!(report.records, 2);
        assert_eq!(report.duplicates_dropped, 2);
        assert_eq!(report.malformed_dropped, 1);
        assert!(report.bytes_after < report.bytes_before);

        // Appends after compaction still land in the rewritten file.
        store.insert(key("refactor"), qor(7.0)).unwrap();
        drop(store);

        let mut store = QorStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 3);
        assert_eq!(store.duplicate_records(), 0);
        assert_eq!(store.skipped_records(), 0);
        assert_eq!(store.get(&key("balance")), Some(qor(3.0)));
        assert_eq!(store.get(&key("refactor")), Some(qor(7.0)));
        // Stable order: compacting an already-compact store is byte-identical.
        store.compact().expect("recompact");
        let bytes_first = std::fs::read(&path).unwrap();
        store.compact().expect("recompact again");
        drop(store);
        let bytes_second = std::fs::read(&path).unwrap();
        assert_eq!(bytes_first, bytes_second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_compact_is_a_no_op() {
        let mut store = QorStore::in_memory();
        store.insert(key("balance"), qor(1.0)).unwrap();
        let report = store.compact().expect("compact");
        assert_eq!(report.records, 1);
        assert_eq!(report.bytes_before, 0);
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut store = QorStore::in_memory();
        store.insert(key("balance"), qor(1.0)).unwrap();
        store.insert(key("balance"), qor(9.0)).unwrap();
        assert_eq!(
            store.get(&key("balance")),
            Some(qor(1.0)),
            "first write wins"
        );
        assert_eq!(store.len(), 1);
    }
}
