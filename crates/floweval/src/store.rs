//! Persistent, content-addressed QoR store — a durable, verifiable log.
//!
//! Every evaluated (design, evaluation-config, flow) triple maps to exactly
//! one [`Qor`] because the whole pipeline is deterministic, so results are
//! addressed by content: a stable design fingerprint, a fingerprint of the
//! cell library + mapper parameters, and the flow's ABC-style script.
//!
//! ## On-disk format
//!
//! Records live in JSON-lines files.  Since format version 2 each line is
//! framed as `v2 <crc32-hex8> <json>` — the checksum covers the JSON bytes,
//! so a bit flip anywhere in a record is detected rather than silently
//! served.  Legacy stores (plain `{...}` lines without a checksum) are still
//! read; `#`-prefixed comment lines (probe writes) are skipped silently.
//!
//! A version-2 store is **segmented**: records append to a live segment
//! (`<base>.NNNNNN.seg`) with size-based rotation, under a small manifest
//! (`<base>.manifest`) naming the ordered segment list.  The manifest is
//! replaced atomically (temp file, fsync, rename, parent-directory fsync),
//! as is every compaction — a crash at any point leaves the old store or the
//! new one, never a hybrid.  A legacy store keeps appending to its original
//! file until the first [`QorStore::compact`], which upgrades it in place.
//!
//! ## Scrub and quarantine
//!
//! [`QorStore::open`] scrubs every segment, distinguishing a benign
//! **torn tail** (a crash mid-append tore the final line) from **mid-file
//! corruption** (a checksum or parse failure on an interior line).  Bad
//! spans are copied to a `<base>.quarantine` sidecar — bytes are never
//! silently discarded — and the damaged file is healed (tail truncated,
//! corrupt lines removed via atomic rewrite) so a reopen is clean.
//!
//! ## Degraded mode
//!
//! Persistent append failure (ENOSPC, EIO) flips the store to
//! [`StoreMode::Degraded`] after a consecutive-failure threshold: lookups
//! keep answering from the in-memory index, new results are parked in a
//! bounded queue, and a successful [`QorStore::probe`] (periodically driven
//! by `flowd`) drains the parked queue and recovers to [`StoreMode::Ok`].

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use flow_core::{crc32, Fingerprint};
use serde::{Deserialize, Serialize};
use synth::Qor;

/// The address of one evaluation result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Fingerprint of the design's structure.
    pub design: Fingerprint,
    /// Fingerprint of the evaluation configuration (library + mapper).
    pub config: Fingerprint,
    /// The flow as an ABC-style script (`cmd; cmd; …`).
    pub flow: String,
}

/// One JSON record of the store (the payload inside the v2 frame).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QorRecord {
    /// Hex design fingerprint.
    design: String,
    /// Hex evaluation-config fingerprint.
    config: String,
    /// Flow script.
    flow: String,
    /// The evaluation result.
    qor: Qor,
}

/// Health of the persistent layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Appends reach the disk.
    Ok,
    /// Appends fail persistently; the store serves from memory and parks
    /// new records until a probe write succeeds.
    Degraded,
}

impl StoreMode {
    /// The wire name used by `/healthz`, `/stats` and `flowc`.
    pub fn as_str(self) -> &'static str {
        match self {
            StoreMode::Ok => "ok",
            StoreMode::Degraded => "degraded",
        }
    }
}

/// Tunables for the durable log.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Rotate the live segment once it reaches this size.
    pub segment_max_bytes: u64,
    /// Consecutive append failures before the store flips to
    /// [`StoreMode::Degraded`].
    pub degraded_after: u32,
    /// Maximum records parked while degraded (oldest dropped beyond this).
    pub parked_cap: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_max_bytes: 8 * 1024 * 1024,
            degraded_after: 3,
            parked_cap: 4096,
        }
    }
}

/// What [`QorStore::compact`] did to the backing files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CompactionReport {
    /// Distinct records surviving compaction.
    pub records: usize,
    /// Duplicate lines (same key appearing more than once) dropped.
    pub duplicates_dropped: usize,
    /// Malformed lines dropped (already quarantined at open time).
    pub malformed_dropped: usize,
    /// Store size before compaction, in bytes.
    pub bytes_before: u64,
    /// Store size after compaction, in bytes.
    pub bytes_after: u64,
}

/// A point-in-time summary of the persistent layer, for monitoring
/// endpoints (`flowd /stats`) and `flowc store fsck`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StoreSummary {
    /// `"ok"` or `"degraded"`.
    pub mode: String,
    /// Records in the in-memory index.
    pub records: usize,
    /// Whether the store uses the v2 segmented layout.
    pub segmented: bool,
    /// Segments in the manifest (0 for legacy and in-memory stores).
    pub segments: usize,
    /// Total on-disk bytes.
    pub disk_bytes: u64,
    /// Torn final lines healed at open time.
    pub torn_tail: usize,
    /// Mid-file corrupt lines quarantined at open time.
    pub corrupt_records: usize,
    /// Lines copied to the `.quarantine` sidecar at open time.
    pub quarantined: usize,
    /// Superseded duplicate lines observed at open time.
    pub duplicates: usize,
    /// Records parked in memory while degraded.
    pub parked: usize,
    /// Parked records dropped to the queue bound.
    pub parked_dropped: usize,
}

/// Paths derived from the store's base path.
#[derive(Debug, Clone)]
struct Layout {
    base: PathBuf,
}

impl Layout {
    fn sibling(&self, suffix: &str) -> PathBuf {
        let mut name = self.base.as_os_str().to_os_string();
        name.push(suffix);
        PathBuf::from(name)
    }

    fn manifest(&self) -> PathBuf {
        self.sibling(".manifest")
    }

    fn quarantine(&self) -> PathBuf {
        self.sibling(".quarantine")
    }

    fn segment(&self, id: u64) -> PathBuf {
        self.sibling(&format!(".{id:06}.seg"))
    }

    fn dir(&self) -> PathBuf {
        match self.base.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
            _ => PathBuf::from("."),
        }
    }

    /// Segment ids present on disk (sorted), manifest-listed or orphaned.
    fn scan_segments(&self) -> Vec<u64> {
        let Some(file_name) = self.base.file_name().and_then(|n| n.to_str()) else {
            return Vec::new();
        };
        let prefix = format!("{file_name}.");
        let mut ids = Vec::new();
        if let Ok(entries) = std::fs::read_dir(self.dir()) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(middle) = name
                    .strip_prefix(&prefix)
                    .and_then(|rest| rest.strip_suffix(".seg"))
                else {
                    continue;
                };
                if middle.len() == 6 && middle.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(id) = middle.parse::<u64>() {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }
}

/// A persistent map from [`StoreKey`] to [`Qor`], with optional disk backing.
#[derive(Debug)]
pub struct QorStore {
    index: HashMap<StoreKey, Qor>,
    writer: Option<File>,
    layout: Option<Layout>,
    /// Manifest-ordered segment ids; empty while reading a legacy store.
    segments: Vec<u64>,
    segmented: bool,
    live_bytes: u64,
    options: StoreOptions,
    mode: StoreMode,
    consecutive_failures: u32,
    parked: VecDeque<(StoreKey, Qor)>,
    parked_dropped: usize,
    loaded: usize,
    torn_tail: usize,
    corrupt: usize,
    duplicates: usize,
    quarantined: usize,
}

impl QorStore {
    /// Creates a store with no disk backing (useful for tests and one-shot
    /// runs).
    pub fn in_memory() -> Self {
        QorStore {
            index: HashMap::new(),
            writer: None,
            layout: None,
            segments: Vec::new(),
            segmented: false,
            live_bytes: 0,
            options: StoreOptions::default(),
            mode: StoreMode::Ok,
            consecutive_failures: 0,
            parked: VecDeque::new(),
            parked_dropped: 0,
            loaded: 0,
            torn_tail: 0,
            corrupt: 0,
            duplicates: 0,
            quarantined: 0,
        }
    }

    /// Opens (or creates) the store at `path` with default [`StoreOptions`].
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with(path, StoreOptions::default())
    }

    /// Opens (or creates) the store at `path`, scrubbing every record.
    ///
    /// The open is a **scrub**: each line's checksum and shape are verified;
    /// a torn final line is counted in [`QorStore::torn_tail_records`],
    /// any other bad line in [`QorStore::corrupt_records`].  Bad spans are
    /// copied to the `.quarantine` sidecar and the damaged file healed, so
    /// an immediate reopen reports a clean store.  Plain-JSONL stores from
    /// before format v2 are read transparently and upgraded on the first
    /// [`QorStore::compact`].
    ///
    /// Duplicate keys (concatenated stores, racing appenders) resolve
    /// **last-write-wins** in append order; the superseded count is reported
    /// by [`QorStore::duplicate_records`].
    ///
    /// The scrub heals files in place, so the store must have a single
    /// writing process at a time (the daemon owns its store).
    pub fn open_with(path: impl AsRef<Path>, options: StoreOptions) -> std::io::Result<Self> {
        let base = path.as_ref().to_path_buf();
        if let Some(parent) = base.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let layout = Layout { base };

        let mut store = QorStore::in_memory();
        store.layout = Some(layout.clone());
        store.options = options;

        // Decide the layout generation: a manifest (or stray segments) means
        // v2 segmented; a bare base file means legacy; nothing means fresh.
        let on_disk = layout.scan_segments();
        let manifest = read_manifest(&layout);
        let segmented = !matches!(manifest, ManifestState::Missing) || !on_disk.is_empty();

        if segmented {
            store.segmented = true;
            store.segments = match manifest {
                ManifestState::Present(ids) if !ids.is_empty() => ids,
                ManifestState::Present(_) | ManifestState::Missing | ManifestState::Corrupt => {
                    // A torn or missing manifest with segments on disk:
                    // recover the listing from the directory (append order is
                    // id order by construction) and rewrite it.
                    if matches!(manifest, ManifestState::Corrupt) {
                        store.corrupt += 1;
                        store.quarantined +=
                            quarantine_file(&layout, &layout.manifest(), "corrupt-manifest")?;
                    }
                    let ids = if on_disk.is_empty() { vec![1] } else { on_disk };
                    write_manifest(&layout, &ids)?;
                    ids
                }
            };
            for (pos, id) in store.segments.clone().iter().enumerate() {
                let is_live = pos + 1 == store.segments.len();
                store.scrub_file(&layout.segment(*id), is_live)?;
            }
            let live = layout.segment(*store.segments.last().expect("non-empty"));
            let writer = OpenOptions::new().create(true).append(true).open(&live)?;
            store.live_bytes = writer.metadata()?.len();
            store.writer = Some(writer);
        } else if layout.base.exists() {
            // Legacy plain-JSONL store: read (and heal) it in place; the
            // first compact() upgrades it to the segmented format.
            store.scrub_file(&layout.base.clone(), true)?;
            let writer = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&layout.base)?;
            store.live_bytes = writer.metadata()?.len();
            store.writer = Some(writer);
        } else {
            // Fresh store: segment 1 plus a manifest, both durable before
            // the first record is acknowledged.
            store.segmented = true;
            store.segments = vec![1];
            let seg = layout.segment(1);
            let file = OpenOptions::new().create(true).append(true).open(&seg)?;
            file.sync_all()?;
            fsync_dir(&layout.dir())?;
            write_manifest(&layout, &store.segments)?;
            store.writer = Some(OpenOptions::new().append(true).open(&seg)?);
        }
        Ok(store)
    }

    /// Scrubs one JSONL file into the index, quarantining and healing any
    /// damage.  `is_live` marks the file whose tail may legitimately be torn.
    fn scrub_file(&mut self, path: &Path, is_live: bool) -> std::io::Result<()> {
        let data = match std::fs::read(path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let layout = self.layout.clone().expect("disk-backed");

        // Split into lines by hand so byte offsets (for healing) and the
        // missing-final-newline case stay visible.
        let mut lines: Vec<(usize, usize, bool)> = Vec::new(); // (start, end, newline)
        let mut start = 0usize;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                lines.push((start, i, true));
                start = i + 1;
            }
        }
        if start < data.len() {
            lines.push((start, data.len(), false));
        }

        let mut corrupt_spans: Vec<(usize, usize, usize)> = Vec::new(); // (line no, start, end)
        let mut torn_span: Option<(usize, usize, usize)> = None;
        let mut needs_newline = false;
        for (no, &(s, e, newline)) in lines.iter().enumerate() {
            let raw = &data[s..e];
            let text = String::from_utf8_lossy(raw);
            let trimmed = text.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match parse_line(trimmed) {
                Some((key, qor)) => {
                    if self.index.insert(key, qor).is_some() {
                        self.duplicates += 1;
                    }
                    self.loaded += 1;
                    if !newline {
                        needs_newline = true;
                    }
                }
                None if !newline => {
                    // A bad final line without its newline: the classic
                    // crash-torn append.  (`is_live` is advisory — a sealed
                    // segment can carry one from a crash during rotation.)
                    let _ = is_live;
                    torn_span = Some((no, s, e));
                }
                None => corrupt_spans.push((no, s, e)),
            }
        }
        self.torn_tail += usize::from(torn_span.is_some());
        self.corrupt += corrupt_spans.len();

        if corrupt_spans.is_empty() && torn_span.is_none() {
            if needs_newline {
                // A parseable final record missing only its newline: close
                // the line so the next append starts fresh.
                let mut f = OpenOptions::new().append(true).open(path)?;
                f.write_all(b"\n")?;
                f.sync_all()?;
            }
            return Ok(());
        }

        // Quarantine first (no byte is discarded before its copy is
        // durable), then heal.  A crash in between re-quarantines on the
        // next open — duplicated sidecar entries, never lost ones.
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        {
            let mut q = OpenOptions::new()
                .create(true)
                .append(true)
                .open(layout.quarantine())?;
            for &(no, s, e) in corrupt_spans.iter().chain(torn_span.iter()) {
                let reason = if torn_span == Some((no, s, e)) {
                    "torn-tail"
                } else {
                    "corrupt"
                };
                writeln!(q, "# {reason} file={file_name} line={}", no + 1)?;
                q.write_all(&data[s..e])?;
                q.write_all(b"\n")?;
                self.quarantined += 1;
            }
            q.sync_all()?;
        }

        if corrupt_spans.is_empty() {
            // Only a torn tail: truncate the fragment away.
            let (_, s, _) = torn_span.expect("checked");
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(s as u64)?;
            f.sync_all()?;
        } else {
            // Mid-file corruption: rewrite the file atomically without the
            // bad spans, preserving healthy lines byte-for-byte.
            let dead: std::collections::HashSet<usize> = corrupt_spans
                .iter()
                .chain(torn_span.iter())
                .map(|&(no, _, _)| no)
                .collect();
            let mut body = Vec::with_capacity(data.len());
            for (no, &(s, e, _)) in lines.iter().enumerate() {
                if dead.contains(&no) {
                    continue;
                }
                body.extend_from_slice(&data[s..e]);
                body.push(b'\n');
            }
            let tmp = layout.sibling(".scrub.tmp");
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)?;
            fsync_dir(&layout.dir())?;
        }
        Ok(())
    }

    /// The backing base path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.layout.as_ref().map(|l| l.base.as_path())
    }

    /// Number of records currently indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records loaded from disk at open time.
    pub fn loaded_records(&self) -> usize {
        self.loaded
    }

    /// Bad lines skipped at open time (torn tail + corruption).
    pub fn skipped_records(&self) -> usize {
        self.torn_tail + self.corrupt
    }

    /// Torn final lines (benign crash truncation) healed at open time.
    pub fn torn_tail_records(&self) -> usize {
        self.torn_tail
    }

    /// Mid-file corrupt lines (checksum or shape failures) quarantined at
    /// open time.
    pub fn corrupt_records(&self) -> usize {
        self.corrupt
    }

    /// Lines copied to the `.quarantine` sidecar at open time.
    pub fn quarantined_records(&self) -> usize {
        self.quarantined
    }

    /// Superseded duplicate lines observed at open time (last write won).
    pub fn duplicate_records(&self) -> usize {
        self.duplicates
    }

    /// Whether the store uses the v2 segmented layout (vs legacy JSONL).
    pub fn is_segmented(&self) -> bool {
        self.segmented
    }

    /// Number of segments in the manifest (0 for legacy and in-memory).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Current health of the persistent layer.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// Records parked in memory while the store is degraded.
    pub fn parked_records(&self) -> usize {
        self.parked.len()
    }

    /// Parked records dropped because the parked queue overflowed.
    pub fn parked_dropped(&self) -> usize {
        self.parked_dropped
    }

    /// Total bytes of the on-disk store (segments or legacy file).
    pub fn disk_bytes(&self) -> u64 {
        let Some(layout) = &self.layout else { return 0 };
        if self.segmented {
            self.segments
                .iter()
                .filter_map(|id| std::fs::metadata(layout.segment(*id)).ok())
                .map(|m| m.len())
                .sum()
        } else {
            std::fs::metadata(&layout.base)
                .map(|m| m.len())
                .unwrap_or(0)
        }
    }

    /// A point-in-time summary of the persistent layer.
    pub fn summary(&self) -> StoreSummary {
        StoreSummary {
            mode: self.mode.as_str().to_string(),
            records: self.index.len(),
            segmented: self.segmented,
            segments: self.segments.len(),
            disk_bytes: self.disk_bytes(),
            torn_tail: self.torn_tail,
            corrupt_records: self.corrupt,
            quarantined: self.quarantined,
            duplicates: self.duplicates,
            parked: self.parked.len(),
            parked_dropped: self.parked_dropped,
        }
    }

    /// Looks up a result.
    pub fn get(&self, key: &StoreKey) -> Option<Qor> {
        self.index.get(key).copied()
    }

    /// Inserts a result, appending it durably when disk-backed.
    ///
    /// Each record (including its trailing newline) is submitted as one
    /// unbuffered write on an `O_APPEND` file; [`QorStore::flush`] is the
    /// fsync point.  The in-memory index is updated **regardless** of disk
    /// outcome, so the store degrades to cache-only operation under disk
    /// faults instead of re-evaluating or failing requests.
    ///
    /// An `Err` means one on-disk append failed (callers count it in
    /// `EvalStats::store_write_errors`).  After
    /// [`StoreOptions::degraded_after`] consecutive failures the store flips
    /// to [`StoreMode::Degraded`]: further inserts park their records and
    /// return `Ok` without touching the disk until a [`QorStore::probe`]
    /// recovers it.
    pub fn insert(&mut self, key: StoreKey, qor: Qor) -> std::io::Result<()> {
        if self.index.contains_key(&key) {
            return Ok(());
        }
        if self.writer.is_none() {
            self.index.insert(key, qor);
            return Ok(());
        }
        if self.mode == StoreMode::Degraded {
            self.park(key.clone(), qor);
            self.index.insert(key, qor);
            return Ok(());
        }
        let line = match record_line(&key, &qor) {
            Ok(line) => line,
            Err(e) => {
                self.index.insert(key, qor);
                return Err(e);
            }
        };
        let appended = self.raw_append(line.as_bytes());
        match &appended {
            Ok(()) => {
                self.consecutive_failures = 0;
                self.maybe_rotate();
            }
            Err(_) => {
                self.consecutive_failures += 1;
                self.park(key.clone(), qor);
                if self.consecutive_failures >= self.options.degraded_after {
                    self.mode = StoreMode::Degraded;
                }
            }
        }
        self.index.insert(key, qor);
        appended
    }

    /// One unbuffered append to the live file.
    fn raw_append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let writer = self.writer.as_mut().expect("disk-backed");
        append_record(writer, bytes)?;
        self.live_bytes += bytes.len() as u64;
        Ok(())
    }

    fn park(&mut self, key: StoreKey, qor: Qor) {
        if self.parked.len() >= self.options.parked_cap {
            self.parked.pop_front();
            self.parked_dropped += 1;
        }
        self.parked.push_back((key, qor));
    }

    /// Rotates the live segment when it outgrew the configured size.  A
    /// failed rotation is not an error: appends continue into the oversized
    /// segment and rotation is retried on the next insert.
    fn maybe_rotate(&mut self) {
        if self.segmented && self.live_bytes >= self.options.segment_max_bytes {
            let _ = self.rotate();
        }
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        flow_core::fail_point!("store.rotate", |_| Err(injected_io_error("rotate")));
        let layout = self.layout.clone().expect("segmented store");
        // Seal the outgoing segment: everything in it is durable before the
        // manifest stops calling it live.
        self.writer.as_mut().expect("disk-backed").sync_all()?;
        let next = self.segments.last().copied().unwrap_or(0) + 1;
        let seg = layout.segment(next);
        // `truncate` rather than `create_new`: a crash after creating the
        // file but before publishing the manifest leaves an orphan, which a
        // retry reuses.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&seg)?;
        file.sync_all()?;
        fsync_dir(&layout.dir())?;
        flow_core::fail_point!("store.rotate.publish", |_| Err(injected_io_error(
            "rotate.publish"
        )));
        let mut ids = self.segments.clone();
        ids.push(next);
        write_manifest(&layout, &ids)?;
        self.segments = ids;
        self.writer = Some(OpenOptions::new().append(true).open(&seg)?);
        self.live_bytes = 0;
        Ok(())
    }

    /// Attempts to bring a degraded store back to [`StoreMode::Ok`] (and to
    /// drain any parked records).  Returns the health after the attempt.
    ///
    /// The probe is a real write: parked records are appended first; when
    /// none are waiting, a `# probe` comment line (skipped by the scrub)
    /// exercises the disk.  Success fsyncs and resets the failure counter.
    /// `flowd` drives this periodically from its watchdog thread.
    pub fn probe(&mut self) -> StoreMode {
        if self.writer.is_none() {
            return StoreMode::Ok;
        }
        if self.mode == StoreMode::Ok && self.parked.is_empty() {
            return StoreMode::Ok;
        }
        let mut wrote = false;
        while let Some((key, qor)) = self.parked.pop_front() {
            let Ok(line) = record_line(&key, &qor) else {
                continue; // unserializable: drop, the index still has it
            };
            if let Err(_e) = self.raw_append(line.as_bytes()) {
                self.parked.push_front((key, qor));
                self.consecutive_failures += 1;
                return self.mode;
            }
            wrote = true;
        }
        if !wrote && self.raw_append(b"# probe\n").is_err() {
            self.consecutive_failures += 1;
            return self.mode;
        }
        if self.flush().is_err() {
            return self.mode;
        }
        self.mode = StoreMode::Ok;
        self.consecutive_failures = 0;
        self.maybe_rotate();
        self.mode
    }

    /// Rewrites the store to exactly one line per key, dropping superseded
    /// duplicates, probe comments and (already-quarantined) bad lines, then
    /// reopens the append writer.  Records are written in a stable order
    /// (sorted by design, config, flow) so compacting the same store twice
    /// produces identical segment bytes.
    ///
    /// The survivors land in a single **new** segment published by an
    /// atomic manifest replacement (temp file, fsync, rename, directory
    /// fsync): a crash at any point leaves either the old store or the new
    /// one, never a hybrid.  Compacting a legacy plain-JSONL store upgrades
    /// it to the checksummed segmented format.  No-op for in-memory stores.
    pub fn compact(&mut self) -> std::io::Result<CompactionReport> {
        let Some(layout) = self.layout.clone() else {
            return Ok(CompactionReport {
                records: self.index.len(),
                duplicates_dropped: 0,
                malformed_dropped: 0,
                bytes_before: 0,
                bytes_after: 0,
            });
        };
        self.flush()?;
        let bytes_before = self.disk_bytes();

        let mut entries: Vec<(&StoreKey, &Qor)> = self.index.iter().collect();
        entries.sort_unstable_by(|(a, _), (b, _)| {
            (a.design.0, a.config.0, &a.flow).cmp(&(b.design.0, b.config.0, &b.flow))
        });
        let mut body = String::new();
        for (key, qor) in entries {
            body.push_str(&record_line(key, qor)?);
        }

        let new_id = layout.scan_segments().last().copied().unwrap_or(0) + 1;
        let new_seg = layout.segment(new_id);
        let tmp = layout.sibling(".compact.tmp");
        // Drop the append handle before replacing the files it points at.
        self.writer = None;
        let published = (|| -> std::io::Result<()> {
            self.write_compacted(&tmp, body.as_bytes())?;
            std::fs::rename(&tmp, &new_seg)?;
            fsync_dir(&layout.dir())?;
            flow_core::fail_point!("store.compact.publish", |_| Err(injected_io_error(
                "compact.publish"
            )));
            write_manifest(&layout, &[new_id])
        })();
        if let Err(e) = published {
            // The old store is still the published one; restore the append
            // handle onto its live file and report the failure.
            let _ = std::fs::remove_file(&tmp);
            let live = if self.segmented {
                layout.segment(*self.segments.last().expect("segmented"))
            } else {
                layout.base.clone()
            };
            self.writer = Some(OpenOptions::new().create(true).append(true).open(&live)?);
            return Err(e);
        }

        // The new manifest is durable: retire every superseded file.  Purely
        // cosmetic from here on, so errors are ignored.
        for id in layout.scan_segments() {
            if id != new_id {
                let _ = std::fs::remove_file(layout.segment(id));
            }
        }
        if !self.segmented {
            let _ = std::fs::remove_file(&layout.base);
        }
        self.segmented = true;
        self.segments = vec![new_id];
        self.live_bytes = body.len() as u64;
        self.writer = Some(OpenOptions::new().append(true).open(&new_seg)?);

        let report = CompactionReport {
            records: self.index.len(),
            duplicates_dropped: self.duplicates,
            malformed_dropped: self.torn_tail + self.corrupt,
            bytes_before,
            bytes_after: body.len() as u64,
        };
        self.loaded = self.index.len();
        self.duplicates = 0;
        self.torn_tail = 0;
        self.corrupt = 0;
        Ok(report)
    }

    /// Writes and `sync_all`s the compaction temp file, so the atomic rename
    /// never publishes a file whose contents could still be lost to a crash.
    fn write_compacted(&mut self, tmp: &Path, body: &[u8]) -> std::io::Result<()> {
        flow_core::fail_point!("store.compact", |_| Err(injected_io_error("compact")));
        let mut file = File::create(tmp)?;
        file.write_all(body)?;
        file.sync_all()
    }

    /// Makes every appended record durable: records are written unbuffered,
    /// so this is the `fsync` point (`sync_all`).  Called at drain/compact
    /// time, not per insert — per-record fsync would serialize the service's
    /// hot path on the disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        flow_core::fail_point!("store.flush", |_| Err(injected_io_error("flush")));
        match &mut self.writer {
            Some(writer) => {
                writer.flush()?;
                writer.sync_all()
            }
            None => Ok(()),
        }
    }

    /// The drain-time durability barrier: fsync the live file **and**
    /// rewrite the manifest, so a restart finds exactly the acknowledged
    /// state.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        self.flush()?;
        if let (Some(layout), true) = (self.layout.clone(), self.segmented) {
            write_manifest(&layout, &self.segments)?;
        }
        Ok(())
    }
}

/// Serializes one record as a framed v2 line (trailing newline included).
fn record_line(key: &StoreKey, qor: &Qor) -> std::io::Result<String> {
    let record = QorRecord {
        design: key.design.to_string(),
        config: key.config.to_string(),
        flow: key.flow.clone(),
        qor: *qor,
    };
    let json = serde_json::to_string(&record)
        .map_err(|e| std::io::Error::other(format!("cannot serialize store record: {e}")))?;
    Ok(format!("v2 {:08x} {json}\n", crc32::of(json.as_bytes())))
}

/// Parses a record line, v2-framed (checksum verified) or legacy plain JSON.
fn parse_line(line: &str) -> Option<(StoreKey, Qor)> {
    let json = if let Some(rest) = line.strip_prefix("v2 ") {
        let (crc_hex, json) = rest.split_at_checked(8)?;
        let json = json.strip_prefix(' ')?;
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        if crc32::of(json.as_bytes()) != crc {
            return None;
        }
        json
    } else if line.starts_with('{') {
        line
    } else {
        return None;
    };
    let record: QorRecord = serde_json::from_str(json).ok()?;
    let key = StoreKey {
        design: Fingerprint::parse(&record.design)?,
        config: Fingerprint::parse(&record.config)?,
        flow: record.flow,
    };
    Some((key, record.qor))
}

/// One unbuffered append (failpoint-instrumented).
///
/// The `store.write` point injects clean append failures (ENOSPC-style);
/// `store.write.torn` writes a prefix of the record and kills the process —
/// the crash-consistency harness schedules it to manufacture torn tails.
fn append_record(writer: &mut File, bytes: &[u8]) -> std::io::Result<()> {
    flow_core::fail_point!("store.write", |_| Err(injected_io_error("write")));
    #[cfg(feature = "failpoints")]
    if let Some(arg) = flow_core::fail::eval("store.write.torn") {
        let cut = arg
            .and_then(|a| a.parse::<usize>().ok())
            .unwrap_or(bytes.len() / 2)
            .min(bytes.len().saturating_sub(1));
        let _ = writer.write_all(&bytes[..cut]);
        let _ = writer.sync_all();
        std::process::abort();
    }
    writer.write_all(bytes)
}

#[cfg(feature = "failpoints")]
fn injected_io_error(op: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint: injected store {op} error"))
}

/// Fsyncs a directory so a just-renamed or just-created entry survives a
/// crash.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[derive(Debug, PartialEq)]
enum ManifestState {
    Missing,
    Corrupt,
    Present(Vec<u64>),
}

/// Reads and verifies the manifest: one v2-framed line listing the ordered
/// segment ids, e.g. `v2 <crc> {"version":2,"segments":[1,2]}`.
fn read_manifest(layout: &Layout) -> ManifestState {
    let text = match std::fs::read_to_string(layout.manifest()) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return ManifestState::Missing,
        Err(_) => return ManifestState::Corrupt,
    };
    let Some(line) = text.lines().find(|l| !l.trim().is_empty()) else {
        return ManifestState::Corrupt;
    };
    let Some(rest) = line.trim().strip_prefix("v2 ") else {
        return ManifestState::Corrupt;
    };
    let Some((crc_hex, json)) = rest.split_at_checked(8) else {
        return ManifestState::Corrupt;
    };
    let json = json.trim_start();
    let Ok(crc) = u32::from_str_radix(crc_hex, 16) else {
        return ManifestState::Corrupt;
    };
    if crc32::of(json.as_bytes()) != crc {
        return ManifestState::Corrupt;
    }
    match parse_manifest_json(json) {
        Some(ids) => ManifestState::Present(ids),
        None => ManifestState::Corrupt,
    }
}

/// The manifest JSON is a fixed tiny shape; parse it directly.
fn parse_manifest_json(json: &str) -> Option<Vec<u64>> {
    let at = json.find("\"segments\"")?;
    let open = at + json[at..].find('[')?;
    let close = open + json[open..].find(']')?;
    let mut ids = Vec::new();
    for part in json[open + 1..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        ids.push(part.parse::<u64>().ok()?);
    }
    Some(ids)
}

/// Atomically replaces the manifest (temp file, fsync, rename, dir fsync).
fn write_manifest(layout: &Layout, segments: &[u64]) -> std::io::Result<()> {
    let ids: Vec<String> = segments.iter().map(|id| id.to_string()).collect();
    let json = format!("{{\"version\":2,\"segments\":[{}]}}", ids.join(","));
    let line = format!("v2 {:08x} {json}\n", crc32::of(json.as_bytes()));
    let tmp = layout.sibling(".manifest.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(line.as_bytes())?;
    file.sync_all()?;
    std::fs::rename(&tmp, layout.manifest())?;
    fsync_dir(&layout.dir())
}

/// Copies a whole damaged sidecar file (e.g. a corrupt manifest) into the
/// quarantine, returning the number of entries written.
fn quarantine_file(layout: &Layout, path: &Path, reason: &str) -> std::io::Result<usize> {
    let Ok(data) = std::fs::read(path) else {
        return Ok(0);
    };
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
    let mut q = OpenOptions::new()
        .create(true)
        .append(true)
        .open(layout.quarantine())?;
    writeln!(q, "# {reason} file={file_name}")?;
    q.write_all(&data)?;
    if !data.ends_with(b"\n") {
        q.write_all(b"\n")?;
    }
    q.sync_all()?;
    Ok(1)
}

impl Drop for QorStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(flow: &str) -> StoreKey {
        StoreKey {
            design: Fingerprint(0xAB),
            config: Fingerprint(0xCD),
            flow: flow.to_string(),
        }
    }

    fn qor(area: f64) -> Qor {
        Qor {
            area_um2: area,
            delay_ps: 10.0,
            gates: 3,
            and_nodes: 4,
            depth: 2,
        }
    }

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("floweval-store-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The live file new records land in: last manifest segment, or the
    /// base file for a legacy store.
    fn live_file(base: &Path) -> PathBuf {
        let layout = Layout {
            base: base.to_path_buf(),
        };
        match read_manifest(&layout) {
            ManifestState::Present(ids) if !ids.is_empty() => layout.segment(*ids.last().unwrap()),
            _ => base.to_path_buf(),
        }
    }

    #[test]
    fn in_memory_store_roundtrip() {
        let mut store = QorStore::in_memory();
        assert!(store.is_empty());
        store.insert(key("balance"), qor(1.5)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&key("balance")), Some(qor(1.5)));
        assert_eq!(store.get(&key("rewrite")), None);
        assert_eq!(store.mode(), StoreMode::Ok);
        assert_eq!(store.probe(), StoreMode::Ok);
    }

    #[test]
    fn disk_store_persists_across_reopen() {
        let dir = temp_dir("reopen");
        let path = dir.join("qor.jsonl");
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance; rewrite"), qor(2.25)).unwrap();
            store.insert(key("refactor"), qor(3.5)).unwrap();
            store.flush().expect("flush");
        }
        {
            let store = QorStore::open(&path).expect("reopen");
            assert_eq!(store.loaded_records(), 2);
            assert_eq!(store.skipped_records(), 0);
            assert_eq!(store.get(&key("balance; rewrite")), Some(qor(2.25)));
            assert_eq!(store.get(&key("refactor")), Some(qor(3.5)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_store_is_segmented_and_checksummed() {
        let dir = temp_dir("fresh");
        let path = dir.join("qor.jsonl");
        let mut store = QorStore::open(&path).expect("open");
        assert!(store.is_segmented());
        assert_eq!(store.segment_count(), 1);
        store.insert(key("balance"), qor(1.0)).unwrap();
        store.flush().unwrap();
        drop(store);
        assert!(
            path.with_extension("jsonl.manifest").exists() || {
                let mut os = path.as_os_str().to_os_string();
                os.push(".manifest");
                PathBuf::from(os).exists()
            }
        );
        let live = live_file(&path);
        assert_ne!(live, path, "records live in a segment, not the base path");
        let text = std::fs::read_to_string(&live).unwrap();
        assert!(
            text.lines().all(|l| l.starts_with("v2 ")),
            "all lines framed: {text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Appends a raw **legacy** (plain JSON) record line for `key`,
    /// bypassing the store — simulating a pre-v2 store file.
    fn append_raw(path: &Path, key: &StoreKey, area: f64) {
        let record = QorRecord {
            design: key.design.to_string(),
            config: key.config.to_string(),
            flow: key.flow.clone(),
            qor: qor(area),
        };
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("append");
        writeln!(f, "{}", serde_json::to_string(&record).unwrap()).expect("write");
    }

    #[test]
    fn legacy_plain_jsonl_is_read_in_place() {
        let dir = temp_dir("legacy");
        let path = dir.join("qor.jsonl");
        append_raw(&path, &key("balance"), 1.0);
        append_raw(&path, &key("rewrite"), 2.0);
        let mut store = QorStore::open(&path).expect("open");
        assert!(!store.is_segmented());
        assert_eq!(store.loaded_records(), 2);
        assert_eq!(store.get(&key("balance")), Some(qor(1.0)));
        // New appends join the legacy file (as framed lines) until the
        // first compact() upgrades the layout.
        store.insert(key("refactor"), qor(3.0)).unwrap();
        drop(store);
        let store = QorStore::open(&path).expect("reopen");
        assert!(!store.is_segmented());
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(&key("refactor")), Some(qor(3.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_quarantined_and_healed() {
        let dir = temp_dir("torn");
        let path = dir.join("qor.jsonl");
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance"), qor(1.0)).unwrap();
            store.flush().expect("flush");
        }
        let live = live_file(&path);
        {
            let mut f = OpenOptions::new().append(true).open(&live).expect("append");
            write!(f, "v2 00000000 {{\"design\":\"torn").expect("write");
        }
        {
            let store = QorStore::open(&path).expect("reopen");
            assert_eq!(store.loaded_records(), 1);
            assert_eq!(store.torn_tail_records(), 1);
            assert_eq!(store.corrupt_records(), 0);
            assert_eq!(store.skipped_records(), 1);
            assert_eq!(store.quarantined_records(), 1);
            assert_eq!(store.get(&key("balance")), Some(qor(1.0)));
        }
        // The fragment was preserved in the sidecar and healed away: the
        // next open is clean.
        let quarantine = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".quarantine");
            PathBuf::from(os)
        };
        let sidecar = std::fs::read_to_string(&quarantine).unwrap();
        assert!(sidecar.contains("torn-tail"), "sidecar: {sidecar}");
        assert!(sidecar.contains("torn"), "sidecar: {sidecar}");
        let store = QorStore::open(&path).expect("clean reopen");
        assert_eq!(store.skipped_records(), 0);
        assert_eq!(store.loaded_records(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_after_a_torn_line_survive() {
        let dir = temp_dir("notnl");
        let path = dir.join("qor.jsonl");
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance"), qor(1.0)).unwrap();
        }
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(live_file(&path))
                .expect("append");
            write!(f, "{{\"design\":\"torn").expect("write");
        }
        {
            let mut store = QorStore::open(&path).expect("reopen");
            assert_eq!(store.skipped_records(), 1);
            store.insert(key("rewrite"), qor(2.0)).unwrap();
        }
        let store = QorStore::open(&path).expect("re-reopen");
        assert_eq!(store.loaded_records(), 2);
        assert_eq!(store.skipped_records(), 0, "healed on the previous open");
        assert_eq!(store.get(&key("rewrite")), Some(qor(2.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_detected_and_healthy_records_survive() {
        let dir = temp_dir("corrupt");
        let path = dir.join("qor.jsonl");
        {
            let mut store = QorStore::open(&path).expect("open");
            for (i, flow) in ["balance", "rewrite", "refactor"].iter().enumerate() {
                store.insert(key(flow), qor(i as f64 + 1.0)).unwrap();
            }
            store.flush().unwrap();
        }
        // Flip one byte inside the middle record's JSON: the line still
        // looks structurally plausible, only the checksum can catch it.
        let live = live_file(&path);
        let mut data = std::fs::read(&live).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                data.iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let mid = line_starts[1];
        let flip = (mid..data.len()).find(|&i| data[i] == b'1').unwrap();
        data[flip] = b'7';
        std::fs::write(&live, &data).unwrap();

        let store = QorStore::open(&path).expect("reopen");
        assert_eq!(store.corrupt_records(), 1, "checksum must catch the flip");
        assert_eq!(store.torn_tail_records(), 0);
        assert_eq!(store.loaded_records(), 2, "healthy remainder kept");
        assert_eq!(store.quarantined_records(), 1);
        drop(store);
        // Healed: the corrupt line is physically gone, the rest intact.
        let store = QorStore::open(&path).expect("clean reopen");
        assert_eq!(store.corrupt_records(), 0);
        assert_eq!(store.loaded_records(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_comment_lines_are_skipped_silently() {
        let dir = temp_dir("comment");
        let path = dir.join("qor.jsonl");
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance"), qor(1.0)).unwrap();
        }
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(live_file(&path))
                .unwrap();
            writeln!(f, "# probe").unwrap();
        }
        let store = QorStore::open(&path).expect("reopen");
        assert_eq!(store.loaded_records(), 1);
        assert_eq!(store.skipped_records(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicates_on_disk_resolve_last_write_wins() {
        let dir = temp_dir("dup");
        let path = dir.join("qor.jsonl");
        append_raw(&path, &key("balance"), 1.0);
        append_raw(&path, &key("rewrite"), 5.0);
        append_raw(&path, &key("balance"), 2.0);
        append_raw(&path, &key("balance"), 3.0);
        let store = QorStore::open(&path).expect("open");
        assert_eq!(store.len(), 2);
        assert_eq!(store.loaded_records(), 4);
        assert_eq!(store.duplicate_records(), 2);
        assert_eq!(
            store.get(&key("balance")),
            Some(qor(3.0)),
            "last write wins"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_upgrades_legacy_drops_duplicates_and_is_idempotent() {
        let dir = temp_dir("compact");
        let path = dir.join("qor.jsonl");
        for area in [1.0, 2.0, 3.0] {
            append_raw(&path, &key("balance"), area);
        }
        append_raw(&path, &key("rewrite"), 9.0);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"design\":\"torn").unwrap();
        }
        let mut store = QorStore::open(&path).expect("open");
        assert!(!store.is_segmented());
        let report = store.compact().expect("compact");
        assert_eq!(report.records, 2);
        assert_eq!(report.duplicates_dropped, 2);
        assert_eq!(report.malformed_dropped, 1);
        assert!(report.bytes_after < report.bytes_before);
        // The upgrade retired the legacy file in favor of the segment tree.
        assert!(store.is_segmented());
        assert!(!path.exists(), "legacy file replaced by segments");

        // Appends after compaction still land in the (new) live segment.
        store.insert(key("refactor"), qor(7.0)).unwrap();
        drop(store);

        let mut store = QorStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 3);
        assert_eq!(store.duplicate_records(), 0);
        assert_eq!(store.skipped_records(), 0);
        assert_eq!(store.get(&key("balance")), Some(qor(3.0)));
        assert_eq!(store.get(&key("refactor")), Some(qor(7.0)));
        // Stable order: compacting twice produces identical segment bytes
        // (the segment id advances; the contents must not).
        store.compact().expect("recompact");
        let bytes_first = std::fs::read(live_file(&path)).unwrap();
        store.compact().expect("recompact again");
        drop(store);
        let bytes_second = std::fs::read(live_file(&path)).unwrap();
        assert_eq!(bytes_first, bytes_second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_segments_and_loses_nothing() {
        let dir = temp_dir("rotate");
        let path = dir.join("qor.jsonl");
        let options = StoreOptions {
            segment_max_bytes: 256,
            ..StoreOptions::default()
        };
        let n = 40;
        {
            let mut store = QorStore::open_with(&path, options).expect("open");
            for i in 0..n {
                store
                    .insert(key(&format!("flow-{i}")), qor(i as f64))
                    .unwrap();
            }
            assert!(store.segment_count() > 1, "rotation must have happened");
            store.flush().unwrap();
        }
        let store = QorStore::open_with(&path, options).expect("reopen");
        assert_eq!(store.len(), n);
        assert_eq!(store.skipped_records(), 0);
        assert!(store.segment_count() > 1);
        for i in 0..n {
            assert_eq!(store.get(&key(&format!("flow-{i}"))), Some(qor(i as f64)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_collapses_segments_to_one() {
        let dir = temp_dir("collapse");
        let path = dir.join("qor.jsonl");
        let options = StoreOptions {
            segment_max_bytes: 256,
            ..StoreOptions::default()
        };
        let mut store = QorStore::open_with(&path, options).expect("open");
        for i in 0..40 {
            store
                .insert(key(&format!("flow-{i}")), qor(i as f64))
                .unwrap();
        }
        let before = store.segment_count();
        assert!(before > 1);
        store.compact().expect("compact");
        assert_eq!(store.segment_count(), 1);
        drop(store);
        let store = QorStore::open_with(&path, options).expect("reopen");
        assert_eq!(store.len(), 40);
        // Superseded segment files were retired from the directory.
        let layout = Layout { base: path.clone() };
        assert_eq!(layout.scan_segments().len(), 1);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_recovers_from_directory_scan() {
        let dir = temp_dir("manifest");
        let path = dir.join("qor.jsonl");
        {
            let mut store = QorStore::open(&path).expect("open");
            store.insert(key("balance"), qor(1.0)).unwrap();
            store.flush().unwrap();
        }
        let manifest = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".manifest");
            PathBuf::from(os)
        };
        std::fs::write(&manifest, b"garbage\n").unwrap();
        let store = QorStore::open(&path).expect("open survives bad manifest");
        assert_eq!(store.len(), 1);
        assert_eq!(store.corrupt_records(), 1, "bad manifest is counted");
        drop(store);
        let store = QorStore::open(&path).expect("clean reopen");
        assert_eq!(store.corrupt_records(), 0, "manifest was rewritten");
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_compact_is_a_no_op() {
        let mut store = QorStore::in_memory();
        store.insert(key("balance"), qor(1.0)).unwrap();
        let report = store.compact().expect("compact");
        assert_eq!(report.records, 1);
        assert_eq!(report.bytes_before, 0);
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut store = QorStore::in_memory();
        store.insert(key("balance"), qor(1.0)).unwrap();
        store.insert(key("balance"), qor(9.0)).unwrap();
        assert_eq!(
            store.get(&key("balance")),
            Some(qor(1.0)),
            "first write wins"
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn manifest_json_roundtrip() {
        assert_eq!(
            parse_manifest_json("{\"version\":2,\"segments\":[1,2,30]}"),
            Some(vec![1, 2, 30])
        );
        assert_eq!(
            parse_manifest_json("{\"version\":2,\"segments\":[]}"),
            Some(vec![])
        );
        assert_eq!(parse_manifest_json("{\"version\":2}"), None);
        assert_eq!(parse_manifest_json("{\"segments\":[x]}"), None);
    }

    #[cfg(feature = "failpoints")]
    mod degraded {
        use super::*;
        use flow_core::fail;

        /// The failpoint registry is process-global; serialize these tests.
        static REGISTRY: std::sync::Mutex<()> = std::sync::Mutex::new(());

        #[test]
        fn persistent_write_failure_degrades_and_probe_recovers() {
            let _guard = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
            fail::teardown();
            let dir = temp_dir("degraded");
            let path = dir.join("qor.jsonl");
            let options = StoreOptions {
                degraded_after: 3,
                ..StoreOptions::default()
            };
            let mut store = QorStore::open_with(&path, options).expect("open");
            store.insert(key("healthy"), qor(0.5)).unwrap();

            // The disk goes away: every append fails.
            fail::cfg("store.write", "return").unwrap();
            for i in 0..3 {
                let r = store.insert(key(&format!("fail-{i}")), qor(i as f64));
                assert!(r.is_err(), "append {i} must surface the failure");
            }
            assert_eq!(store.mode(), StoreMode::Degraded);
            // Degraded inserts park without touching the disk and stop
            // erroring; lookups keep answering.
            store
                .insert(key("parked"), qor(9.0))
                .expect("parked insert");
            assert_eq!(store.parked_records(), 4);
            assert_eq!(store.get(&key("parked")), Some(qor(9.0)));
            assert_eq!(store.get(&key("fail-0")), Some(qor(0.0)));
            // A probe under the same fault stays degraded.
            assert_eq!(store.probe(), StoreMode::Degraded);

            // The disk comes back: the probe drains the parked queue and
            // recovers.
            fail::cfg("store.write", "off").unwrap();
            assert_eq!(store.probe(), StoreMode::Ok);
            assert_eq!(store.parked_records(), 0);
            store.flush().unwrap();
            drop(store);
            fail::teardown();

            // Every record — pre-fault, parked, post-fault — is on disk.
            let store = QorStore::open_with(&path, options).expect("reopen");
            assert_eq!(store.len(), 5);
            assert_eq!(store.get(&key("parked")), Some(qor(9.0)));
            assert_eq!(store.get(&key("fail-2")), Some(qor(2.0)));
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn parked_queue_is_bounded() {
            let _guard = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
            fail::teardown();
            let dir = temp_dir("parked-cap");
            let path = dir.join("qor.jsonl");
            let options = StoreOptions {
                degraded_after: 1,
                parked_cap: 4,
                ..StoreOptions::default()
            };
            let mut store = QorStore::open_with(&path, options).expect("open");
            fail::cfg("store.write", "return").unwrap();
            for i in 0..10 {
                let _ = store.insert(key(&format!("flow-{i}")), qor(i as f64));
            }
            assert_eq!(store.mode(), StoreMode::Degraded);
            assert_eq!(store.parked_records(), 4);
            assert_eq!(store.parked_dropped(), 6);
            assert_eq!(store.len(), 10, "the index never drops records");
            fail::teardown();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
