//! The cache-aware batch evaluation engine.
//!
//! [`EvalEngine::evaluate_batch`] replaces naive `FlowRunner::run_batch`
//! calls on the framework's hot path.  A batch is served in three layers:
//!
//! 1. **Persistent QoR store** — flows already evaluated for this design and
//!    configuration (in this process or a previous one) are answered without
//!    touching the synthesis passes at all.
//! 2. **Prefix trie** — the remaining flows are merged into a per-design
//!    prefix trie; each distinct trie edge is evaluated exactly once, and
//!    interior AIGs memoized by earlier batches short-circuit whole prefixes.
//! 3. **Batched parallel scheduler** — the active sub-trie is split into
//!    independent subtrees at a configurable depth and the subtrees are
//!    evaluated in parallel, each worker walking its subtree depth-first so
//!    at most one intermediate AIG per level is alive per worker.
//!
//! Because every synthesis pass and the mapper are deterministic, the engine
//! returns **bit-identical** QoR to `FlowRunner::run` (the integration tests
//! assert this), while applying strictly fewer transform passes on any batch
//! with shared prefixes.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use aig::{random_equivalence_check, Aig, NodeKind};
use flow_core::{Fingerprint, Fnv64};
use rayon::prelude::*;
use synth::{
    map_with_ctx, CellLibrary, FlowRunner, MapperParams, PassContext, PassTimings, Qor, Transform,
};

use crate::stats::EvalStats;
use crate::store::{QorStore, StoreKey};
use crate::trie::{FlowTrie, TrieNodeId, TRIE_ROOT};

/// Tuning knobs of the evaluation engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Memory budget for memoized intermediate AIGs, in total AIG nodes,
    /// per design trie.  Least-recently-used prefixes are evicted beyond it.
    pub cache_budget_aig_nodes: usize,
    /// Memoize intermediate AIGs for prefixes up to this depth.  Deeper
    /// prefixes are recomputed on demand (they are rarely shared).
    pub cache_depth: usize,
    /// Depth at which the active sub-trie is split into parallel subtrees.
    pub split_depth: usize,
    /// Optional JSON-lines file backing the persistent QoR store.
    pub store_path: Option<PathBuf>,
    /// Functionally verify every evaluated flow by random simulation against
    /// the input design (the analogue of `FlowRunner::with_verification`).
    /// A verification failure panics: it means a synthesis pass is broken.
    pub verify: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_budget_aig_nodes: 4_000_000,
            cache_depth: 6,
            split_depth: 2,
            store_path: None,
            verify: false,
        }
    }
}

/// Mutable engine state behind one lock: the store, the per-design tries and
/// the cumulative statistics.
#[derive(Debug)]
struct EngineState {
    store: QorStore,
    tries: HashMap<Fingerprint, FlowTrie>,
    stats: EvalStats,
    timings: PassTimings,
}

/// The cache-aware flow-evaluation engine.
///
/// ```
/// use circuits::{Design, DesignScale};
/// use floweval::EvalEngine;
/// use synth::Transform;
///
/// let design = Design::Alu64.generate(DesignScale::Tiny);
/// let engine = EvalEngine::default();
/// let flows = vec![
///     vec![Transform::Balance, Transform::Rewrite],
///     vec![Transform::Balance, Transform::Refactor],
/// ];
/// let first = engine.evaluate_batch(&design, &flows);
/// let second = engine.evaluate_batch(&design, &flows);
/// assert_eq!(first, second);
/// assert_eq!(engine.stats().store_hits, 2, "second batch is all store hits");
/// ```
#[derive(Debug)]
pub struct EvalEngine {
    library: CellLibrary,
    mapper: MapperParams,
    config_fp: Fingerprint,
    config: EngineConfig,
    state: Mutex<EngineState>,
}

impl Default for EvalEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl EvalEngine {
    /// Creates an engine with the built-in library and default mapping.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_library(CellLibrary::nangate14(), MapperParams::default(), config)
    }

    /// Creates an engine with an explicit library and mapper configuration.
    pub fn with_library(library: CellLibrary, mapper: MapperParams, config: EngineConfig) -> Self {
        let store = match &config.store_path {
            Some(path) => QorStore::open(path).unwrap_or_else(|e| {
                eprintln!(
                    "floweval: cannot open QoR store at {}: {e}; continuing in memory",
                    path.display()
                );
                QorStore::in_memory()
            }),
            None => QorStore::in_memory(),
        };
        let config_fp = fingerprint_config(&library, mapper);
        EvalEngine {
            library,
            mapper,
            config_fp,
            config,
            state: Mutex::new(EngineState {
                store,
                tries: HashMap::new(),
                stats: EvalStats::default(),
                timings: PassTimings::default(),
            }),
        }
    }

    /// Creates an engine that evaluates exactly like `runner`: same library,
    /// mapper parameters and verification setting.
    pub fn from_runner(runner: &FlowRunner, config: EngineConfig) -> Self {
        let config = EngineConfig {
            verify: config.verify || runner.verification_enabled(),
            ..config
        };
        Self::with_library(runner.library().clone(), runner.mapper_params(), config)
    }

    /// The cell library in use.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The mapper parameters in use.
    pub fn mapper_params(&self) -> MapperParams {
        self.mapper
    }

    /// Cumulative statistics since engine creation.
    pub fn stats(&self) -> EvalStats {
        self.state.lock().expect("engine lock").stats
    }

    /// Resets the cumulative statistics (the caches are kept).
    pub fn reset_stats(&self) {
        let mut state = self.state.lock().expect("engine lock");
        state.stats = EvalStats::default();
        state.timings = PassTimings::default();
    }

    /// Cumulative per-pass timing breakdown of every transform and mapping
    /// the engine executed (merged across the parallel workers' contexts).
    pub fn pass_timings(&self) -> PassTimings {
        self.state.lock().expect("engine lock").timings
    }

    /// Number of records in the persistent QoR store.
    pub fn store_len(&self) -> usize {
        self.state.lock().expect("engine lock").store.len()
    }

    /// Evaluates a batch of flows on `design`, returning QoR in input order.
    ///
    /// Results are bit-identical to `FlowRunner::run` with the same library
    /// and mapper parameters.
    ///
    /// The engine lock is held only for store lookups and the final commit;
    /// the evaluation itself — including the parallel subtree phase — runs
    /// with the lock released, so concurrent callers (e.g. `engine.stats()`
    /// from a monitoring thread) are never blocked behind a long batch.  Two
    /// callers evaluating the *same* design concurrently may duplicate work
    /// (each checks out its own trie); results stay correct and store inserts
    /// are idempotent.
    pub fn evaluate_batch(&self, design: &Aig, flows: &[Vec<Transform>]) -> Vec<Qor> {
        let start = std::time::Instant::now();
        let design_fp = fingerprint_design(design);
        let mut batch = EvalStats {
            flows_requested: flows.len(),
            passes_requested: flows.iter().map(Vec::len).sum(),
            ..EvalStats::default()
        };

        // Store keys are built once, outside the lock, so the critical
        // sections below do lookups and inserts only.
        let keys: Vec<StoreKey> = flows
            .iter()
            .map(|flow| StoreKey {
                design: design_fp,
                config: self.config_fp,
                flow: flow_script(flow),
            })
            .collect();

        // Phase 1 (locked): persistent-store lookups + trie check-out.
        let mut results: Vec<Option<Qor>> = Vec::with_capacity(flows.len());
        let mut misses: Vec<usize> = Vec::new();
        let mut trie: Option<FlowTrie> = None;
        {
            let mut state = self.state.lock().expect("engine lock");
            for key in &keys {
                match state.store.get(key) {
                    Some(qor) => {
                        batch.store_hits += 1;
                        results.push(Some(qor));
                    }
                    None => {
                        misses.push(results.len());
                        results.push(None);
                    }
                }
            }
            if !misses.is_empty() {
                trie = Some(
                    state
                        .tries
                        .remove(&design_fp)
                        .unwrap_or_else(|| FlowTrie::new(self.config.cache_budget_aig_nodes)),
                );
            }
        }
        batch.flows_evaluated = misses.len();

        // Phase 2 (unlocked): trie evaluation, parallel across subtrees.
        let mut evaluated: Vec<(usize, Qor)> = Vec::new();
        let mut timings = PassTimings::default();
        if let Some(trie) = trie.as_mut() {
            evaluated =
                self.evaluate_misses(trie, design, flows, &misses, &mut batch, &mut timings);
        }

        // Phase 3 (locked): commit results, trie and statistics.
        {
            let mut state = self.state.lock().expect("engine lock");
            state.timings.merge(&timings);
            for &(idx, qor) in &evaluated {
                state.store.insert(keys[idx].clone(), qor);
                results[idx] = Some(qor);
            }
            if let Some(trie) = trie {
                // On a same-design race the last writer wins; the loser's
                // cached prefixes are advisory and safe to drop.
                state.tries.insert(design_fp, trie);
            }
            let _ = state.store.flush();
            batch.wall_s = start.elapsed().as_secs_f64();
            state.stats.absorb(&batch);
        }
        results
            .into_iter()
            .map(|q| q.expect("every flow evaluated"))
            .collect()
    }

    /// Evaluates the store misses through the prefix trie.
    fn evaluate_misses(
        &self,
        trie: &mut FlowTrie,
        design: &Aig,
        flows: &[Vec<Transform>],
        misses: &[usize],
        batch: &mut EvalStats,
        timings: &mut PassTimings,
    ) -> Vec<(usize, Qor)> {
        if trie.peek_aig(TRIE_ROOT).is_none() {
            trie.cache_aig(TRIE_ROOT, design.cleanup());
        }

        // Merge the miss flows into the trie; note terminals and active edges.
        let mut terminals: HashMap<TrieNodeId, Vec<usize>> = HashMap::new();
        let mut active: HashMap<TrieNodeId, Vec<(Transform, TrieNodeId)>> = HashMap::new();
        for &idx in misses {
            let terminal = trie.insert(&flows[idx]);
            terminals.entry(terminal).or_default().push(idx);
            let mut current = TRIE_ROOT;
            for &t in &flows[idx] {
                let child = trie.child(current, t).expect("edge just inserted");
                let edges = active.entry(current).or_default();
                if !edges.iter().any(|&(et, _)| et == t) {
                    edges.push((t, child));
                }
                current = child;
            }
        }

        // Sequential descent to the split depth, spawning one task per
        // independent subtree.  The shallow phase runs on its own recycling
        // pass context; each parallel worker below creates one per subtree.
        let mut outputs: Vec<(usize, Qor)> = Vec::new();
        let mut tasks: Vec<(TrieNodeId, Aig)> = Vec::new();
        let mut shallow_failures: Vec<usize> = Vec::new();
        let mut pctx = PassContext::default();
        let root_aig = trie
            .cached_aig(TRIE_ROOT)
            .expect("root cached above")
            .clone();
        self.descend(
            trie,
            design,
            &terminals,
            &active,
            TRIE_ROOT,
            root_aig,
            0,
            &mut outputs,
            &mut tasks,
            &mut shallow_failures,
            batch,
            &mut pctx,
        );
        timings.merge(&pctx.take_timings());

        // Parallel subtree evaluation over the shared, now-immutable trie.
        // `claimed` bounds the total AIG nodes workers may clone as cache
        // candidates, so peak memory respects the budget even before the
        // commit-time LRU accounting runs.
        let claimed = AtomicUsize::new(trie.cached_aig_nodes());
        let ctx = BatchContext {
            trie: &*trie,
            terminals: &terminals,
            active: &active,
            claimed: &claimed,
            verify_against: self.config.verify.then_some(design),
        };
        let worker_results: Vec<WorkerResult> = tasks
            .par_iter()
            .map(|(node, aig)| {
                let mut result = WorkerResult::default();
                let mut pctx = PassContext::default();
                self.eval_subtree(&ctx, *node, aig, &mut result, &mut pctx);
                result.timings = pctx.take_timings();
                result
            })
            .collect();

        // Commit: merge outputs, stats, LRU touches and new cache entries
        // (budget-enforced a second time by the trie itself).
        let mut verify_failures: Vec<usize> = shallow_failures;
        for result in worker_results {
            outputs.extend(result.outputs);
            batch.passes_applied += result.passes_applied;
            batch.trie_hits += result.trie_hits;
            batch.mappings_run += result.mappings_run;
            timings.merge(&result.timings);
            verify_failures.extend(result.verify_failures);
            for node in result.touched {
                trie.cached_aig(node); // refresh LRU clocks for worker hits
            }
            for (node, aig) in result.cache_candidates {
                trie.cache_aig(node, aig);
            }
        }
        if !verify_failures.is_empty() {
            let scripts: Vec<String> = verify_failures
                .iter()
                .map(|&idx| flow_script(&flows[idx]))
                .collect();
            panic!(
                "floweval verification failed: {} flow(s) changed the function of `{}`: {:?}",
                scripts.len(),
                design.name(),
                scripts
            );
        }
        outputs
    }

    /// Maps a terminal AIG through the recycling context: the subject graph
    /// ping-pongs through a context buffer instead of a fresh allocation.
    /// QoR bits match the reference `map_qor` exactly.
    fn map_terminal(&self, pctx: &mut PassContext, aig: &Aig) -> Qor {
        let mut subject = pctx.take_buf();
        subject.copy_from(aig);
        let qor = map_with_ctx(&mut subject, &self.library, self.mapper, pctx).qor();
        pctx.recycle(subject);
        qor
    }

    /// Sequential evaluation of the shallow levels (depth < `split_depth`).
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        trie: &mut FlowTrie,
        design: &Aig,
        terminals: &HashMap<TrieNodeId, Vec<usize>>,
        active: &HashMap<TrieNodeId, Vec<(Transform, TrieNodeId)>>,
        node: TrieNodeId,
        aig: Aig,
        depth: usize,
        outputs: &mut Vec<(usize, Qor)>,
        tasks: &mut Vec<(TrieNodeId, Aig)>,
        failures: &mut Vec<usize>,
        batch: &mut EvalStats,
        pctx: &mut PassContext,
    ) {
        if depth >= self.config.split_depth {
            tasks.push((node, aig));
            return;
        }
        if let Some(indices) = terminals.get(&node) {
            if self.config.verify && !random_equivalence_check(design, &aig, 8, VERIFY_SEED) {
                failures.extend_from_slice(indices);
            }
            let qor = self.map_terminal(pctx, &aig);
            batch.mappings_run += 1;
            outputs.extend(indices.iter().map(|&idx| (idx, qor)));
        }
        if let Some(edges) = active.get(&node) {
            for &(t, child) in edges {
                let child_aig = if trie.peek_aig(child).is_some() {
                    batch.trie_hits += 1;
                    let hit = trie.cached_aig(child).expect("peeked above"); // touch LRU
                    let mut buf = pctx.take_buf();
                    buf.copy_from(hit);
                    buf
                } else {
                    let mut next = pctx.take_buf();
                    next.copy_from(&aig);
                    pctx.apply(t, &mut next);
                    batch.passes_applied += 1;
                    if trie.depth(child) <= self.config.cache_depth {
                        trie.cache_aig(child, next.clone());
                    }
                    next
                };
                self.descend(
                    trie,
                    design,
                    terminals,
                    active,
                    child,
                    child_aig,
                    depth + 1,
                    outputs,
                    tasks,
                    failures,
                    batch,
                    pctx,
                );
            }
        }
        pctx.recycle(aig);
    }

    /// Depth-first evaluation of one subtree (runs on a worker thread).
    fn eval_subtree(
        &self,
        ctx: &BatchContext<'_>,
        node: TrieNodeId,
        aig: &Aig,
        result: &mut WorkerResult,
        pctx: &mut PassContext,
    ) {
        if let Some(indices) = ctx.terminals.get(&node) {
            if let Some(reference) = ctx.verify_against {
                if !random_equivalence_check(reference, aig, 8, VERIFY_SEED) {
                    result.verify_failures.extend_from_slice(indices);
                }
            }
            let qor = self.map_terminal(pctx, aig);
            result.mappings_run += 1;
            result.outputs.extend(indices.iter().map(|&idx| (idx, qor)));
        }
        let Some(edges) = ctx.active.get(&node) else {
            return;
        };
        for &(t, child) in edges {
            if let Some(cached) = ctx.trie.peek_aig(child) {
                result.trie_hits += 1;
                result.touched.push(child);
                self.eval_subtree(ctx, child, cached, result, pctx);
            } else {
                let mut next = pctx.take_buf();
                next.copy_from(aig);
                pctx.apply(t, &mut next);
                result.passes_applied += 1;
                if ctx.trie.depth(child) <= self.config.cache_depth
                    && ctx.try_claim(next.len(), self.config.cache_budget_aig_nodes)
                {
                    result.cache_candidates.push((child, next.clone()));
                }
                self.eval_subtree(ctx, child, &next, result, pctx);
                pctx.recycle(next);
            }
        }
    }
}

/// Seed used for random-simulation verification, matching `FlowRunner`.
const VERIFY_SEED: u64 = 0x5EED;

/// Shared read-only context of one batch's parallel phase.
struct BatchContext<'a> {
    trie: &'a FlowTrie,
    terminals: &'a HashMap<TrieNodeId, Vec<usize>>,
    active: &'a HashMap<TrieNodeId, Vec<(Transform, TrieNodeId)>>,
    /// AIG nodes claimed for cache candidates across all workers (including
    /// what the trie already holds), bounding peak memory of the batch.
    claimed: &'a AtomicUsize,
    /// When verification is enabled, the reference design to simulate against.
    verify_against: Option<&'a Aig>,
}

impl BatchContext<'_> {
    /// Attempts to reserve `size` AIG nodes of cache-candidate memory.
    fn try_claim(&self, size: usize, budget: usize) -> bool {
        let before = self.claimed.fetch_add(size, Ordering::Relaxed);
        if before.saturating_add(size) <= budget {
            true
        } else {
            self.claimed.fetch_sub(size, Ordering::Relaxed);
            false
        }
    }
}

/// Per-worker evaluation scratch, merged under the engine lock afterwards.
#[derive(Debug, Default)]
struct WorkerResult {
    outputs: Vec<(usize, Qor)>,
    cache_candidates: Vec<(TrieNodeId, Aig)>,
    touched: Vec<TrieNodeId>,
    verify_failures: Vec<usize>,
    passes_applied: usize,
    trie_hits: usize,
    mappings_run: usize,
    timings: PassTimings,
}

/// Renders a transform sequence as the canonical ABC-style script, identical
/// to `flowgen::Flow::to_script` so store records interoperate.
pub fn flow_script(flow: &[Transform]) -> String {
    flow.iter()
        .map(|t| t.command())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Stable structural fingerprint of a design (name-independent).
pub fn fingerprint_design(aig: &Aig) -> Fingerprint {
    let mut h = Fnv64::new();
    h.write_usize(aig.len());
    h.write_usize(aig.num_inputs());
    h.write_usize(aig.num_outputs());
    for id in aig.node_ids() {
        match aig.node(id).kind() {
            NodeKind::Constant => h.write_u32(0),
            NodeKind::Input(index) => {
                h.write_u32(1);
                h.write_u32(index);
            }
            NodeKind::And(a, b) => {
                h.write_u32(2);
                h.write_u32(a.raw());
                h.write_u32(b.raw());
            }
        }
    }
    for &output in aig.outputs() {
        h.write_u32(output.raw());
    }
    Fingerprint::from_hasher(h)
}

/// Stable fingerprint of the evaluation configuration (library + mapper).
pub fn fingerprint_config(library: &CellLibrary, params: MapperParams) -> Fingerprint {
    let mut h = Fnv64::new();
    h.write_str(library.name());
    h.write_usize(library.len());
    for cell in library.cells() {
        h.write_str(&cell.name);
        h.write_u64(cell.area.to_bits());
        h.write_u64(cell.delay_ps.to_bits());
        h.write_u64(cell.load_delay_ps.to_bits());
        h.write_usize(cell.num_inputs);
        h.write_usize(cell.function.num_vars());
        for &word in cell.function.words() {
            h.write_u64(word);
        }
    }
    h.write_usize(params.cut_size);
    h.write_usize(params.cuts_per_node);
    h.write_u32(match params.mode {
        synth::MapMode::Delay => 0,
        synth::MapMode::Area => 1,
    });
    Fingerprint::from_hasher(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.and(a, b);
        g.add_output("f", f);
        let mut h = g.clone();
        h.set_name("renamed");
        assert_eq!(
            fingerprint_design(&g),
            fingerprint_design(&h),
            "names do not matter"
        );
        let mut k = g.clone();
        let extra = k.and(a, !b);
        k.add_output("g", extra);
        assert_ne!(fingerprint_design(&g), fingerprint_design(&k));
    }

    #[test]
    fn config_fingerprint_depends_on_mapper_mode() {
        let lib = CellLibrary::nangate14();
        let delay = fingerprint_config(&lib, MapperParams::default());
        let area = fingerprint_config(
            &lib,
            MapperParams {
                mode: synth::MapMode::Area,
                ..MapperParams::default()
            },
        );
        assert_ne!(delay, area);
    }

    #[test]
    fn flow_script_matches_abc_style() {
        assert_eq!(flow_script(&[]), "");
        assert_eq!(
            flow_script(&[Transform::Balance, Transform::RewriteZ]),
            "balance; rewrite -z"
        );
    }
}
