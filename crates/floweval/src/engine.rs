//! The cache-aware batch evaluation engine.
//!
//! [`EvalEngine::evaluate_batch`] replaces naive `FlowRunner::run_batch`
//! calls on the framework's hot path.  A batch is served in three layers:
//!
//! 1. **Persistent QoR store** — flows already evaluated for this design and
//!    configuration (in this process or a previous one) are answered without
//!    touching the synthesis passes at all.
//! 2. **Prefix trie** — the remaining flows are merged into a per-design
//!    prefix trie; each distinct trie edge is evaluated exactly once, and
//!    interior AIGs memoized by earlier batches short-circuit whole prefixes.
//! 3. **Batched parallel scheduler** — the active sub-trie is split into
//!    independent subtrees at a configurable depth and the subtrees are
//!    evaluated in parallel, each worker walking its subtree depth-first so
//!    at most one intermediate AIG per level is alive per worker.
//!
//! Because every synthesis pass and the mapper are deterministic, the engine
//! returns **bit-identical** QoR to `FlowRunner::run` (the integration tests
//! assert this), while applying strictly fewer transform passes on any batch
//! with shared prefixes.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use aig::{random_equivalence_check, Aig, NodeKind};
use flow_core::{CancelToken, Cancelled, Fingerprint, Fnv64};
use rayon::prelude::*;
use serde::Serialize;
use synth::{
    map_with_ctx, CellLibrary, CutEngine, EditMode, FlowRunner, MapperParams, PassContext,
    PassTimings, Qor, Transform,
};

use crate::stats::EvalStats;
use crate::store::{QorStore, StoreKey};
use crate::trie::{FlowTrie, TrieNodeId, TRIE_ROOT};

/// Tuning knobs of the evaluation engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Memory budget for memoized intermediate AIGs, in total AIG nodes,
    /// per design trie.  Least-recently-used prefixes are evicted beyond it.
    pub cache_budget_aig_nodes: usize,
    /// Memoize intermediate AIGs for prefixes up to this depth.  Deeper
    /// prefixes are recomputed on demand (they are rarely shared).
    pub cache_depth: usize,
    /// Depth at which the active sub-trie is split into parallel subtrees.
    pub split_depth: usize,
    /// Optional base path backing the persistent QoR store (a legacy
    /// JSON-lines file, or the base of a v2 segmented store).
    pub store_path: Option<PathBuf>,
    /// Durability tunables for the persistent store (segment rotation size,
    /// degraded-mode threshold, parked-queue bound).
    pub store_options: crate::store::StoreOptions,
    /// Functionally verify every evaluated flow by random simulation against
    /// the input design (the analogue of `FlowRunner::with_verification`).
    /// A verification failure panics: it means a synthesis pass is broken.
    pub verify: bool,
    /// Number of independent locks the per-design trie cache is sharded
    /// over.  Concurrent clients working on different designs contend only
    /// when their design fingerprints land on the same shard.
    pub trie_shards: usize,
    /// Maximum number of design tries resident across all shards; beyond it,
    /// least-recently-used designs are evicted whole (their persistent-store
    /// records survive, only the memoized intermediate AIGs are dropped).
    pub max_resident_designs: usize,
    /// How pass sweeps apply accepted replacements in the evaluation
    /// contexts this engine creates ([`EditMode::InPlace`] mutates the
    /// resident graph; [`EditMode::Rebuild`] is the pinned re-emit path).
    /// QoR is bit-identical either way; only throughput differs.
    pub edit_mode: EditMode,
    /// Back every evaluation context with one engine-wide
    /// [`synth::SharedIsopCache`], so ISOP covers computed by one worker (or
    /// one flow of a batch) serve every other.  Covers are pure functions of
    /// the truth table, so sharing is QoR-neutral; disable only to measure
    /// its effect.
    pub share_isop_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_budget_aig_nodes: 4_000_000,
            cache_depth: 6,
            split_depth: 2,
            store_path: None,
            store_options: crate::store::StoreOptions::default(),
            verify: false,
            trie_shards: 16,
            max_resident_designs: 64,
            edit_mode: EditMode::default(),
            share_isop_cache: true,
        }
    }
}

/// Cumulative statistics behind one (cheap, rarely contended) lock.
#[derive(Debug, Default)]
struct StatsState {
    stats: EvalStats,
    timings: PassTimings,
}

/// One shard of the per-design trie cache: a slice of the design space keyed
/// by fingerprint, under its own lock.
#[derive(Debug, Default)]
struct TrieShard {
    tries: HashMap<Fingerprint, TrieSlot>,
    /// Shard-local LRU clock, bumped on every touch.
    clock: u64,
}

/// A resident design trie.  `trie` is `None` while a batch has the trie
/// checked out (the batch returns it on commit).
#[derive(Debug)]
struct TrieSlot {
    trie: Option<FlowTrie>,
    last_used: u64,
}

impl TrieShard {
    /// Bumps the clock and returns the new value.
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evicts least-recently-used resident tries until at most `cap` remain.
    /// Checked-out slots are skipped: their batch will re-insert them, and
    /// dropping the slot would only lose the LRU stamp.
    fn evict_to(&mut self, cap: usize) {
        while self.tries.len() > cap {
            let victim = self
                .tries
                .iter()
                .filter(|(_, slot)| slot.trie.is_some())
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    self.tries.remove(&fp);
                }
                None => break, // everything is checked out
            }
        }
    }
}

/// A point-in-time summary of the shared trie cache, for monitoring
/// endpoints (`flowd /stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheSummary {
    /// Designs with a resident prefix trie.
    pub resident_designs: usize,
    /// Tries currently checked out by an in-flight batch.
    pub checked_out: usize,
    /// Trie nodes (distinct prefixes) across all resident tries.
    pub prefixes: usize,
    /// Prefixes holding a memoized intermediate AIG.
    pub cached_prefixes: usize,
    /// Total AIG nodes held by memoized intermediates.
    pub cached_aig_nodes: usize,
}

/// The cache-aware flow-evaluation engine.
///
/// ```
/// use circuits::{Design, DesignScale};
/// use floweval::EvalEngine;
/// use synth::Transform;
///
/// let design = Design::Alu64.generate(DesignScale::Tiny);
/// let engine = EvalEngine::default();
/// let flows = vec![
///     vec![Transform::Balance, Transform::Rewrite],
///     vec![Transform::Balance, Transform::Refactor],
/// ];
/// let first = engine.evaluate_batch(&design, &flows);
/// let second = engine.evaluate_batch(&design, &flows);
/// assert_eq!(first, second);
/// assert_eq!(engine.stats().store_hits, 2, "second batch is all store hits");
/// ```
#[derive(Debug)]
pub struct EvalEngine {
    library: CellLibrary,
    mapper: MapperParams,
    config_fp: Fingerprint,
    config: EngineConfig,
    /// The persistent QoR store.  Lookups and appends are short critical
    /// sections; evaluation never runs under this lock.
    store: Mutex<QorStore>,
    /// The per-design prefix-trie cache, sharded by design fingerprint so
    /// concurrent clients on different designs take different locks.
    shards: Vec<Mutex<TrieShard>>,
    stats: Mutex<StatsState>,
    /// Engine-wide ISOP-cover memo handed to every context the engine
    /// creates (when [`EngineConfig::share_isop_cache`] is on).
    isop: synth::SharedIsopCache,
}

impl Default for EvalEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl EvalEngine {
    /// Creates an engine with the built-in library and default mapping.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_library(CellLibrary::nangate14(), MapperParams::default(), config)
    }

    /// Creates an engine with an explicit library and mapper configuration.
    pub fn with_library(library: CellLibrary, mapper: MapperParams, config: EngineConfig) -> Self {
        let store = match &config.store_path {
            Some(path) => QorStore::open_with(path, config.store_options).unwrap_or_else(|e| {
                eprintln!(
                    "floweval: cannot open QoR store at {}: {e}; continuing in memory",
                    path.display()
                );
                QorStore::in_memory()
            }),
            None => QorStore::in_memory(),
        };
        // The open is a scrub; seed the cumulative stats with its findings
        // so `/stats` surfaces damage found at startup.
        let mut stats = StatsState::default();
        stats.stats.store_torn_tail = store.torn_tail_records();
        stats.stats.store_corrupt = store.corrupt_records();
        let config_fp = fingerprint_config(&library, mapper);
        let shard_count = config.trie_shards.max(1);
        EvalEngine {
            library,
            mapper,
            config_fp,
            config,
            store: Mutex::new(store),
            shards: (0..shard_count)
                .map(|_| Mutex::new(TrieShard::default()))
                .collect(),
            stats: Mutex::new(stats),
            isop: synth::SharedIsopCache::new(),
        }
    }

    /// Creates an engine that evaluates exactly like `runner`: same library,
    /// mapper parameters and verification setting.
    pub fn from_runner(runner: &FlowRunner, config: EngineConfig) -> Self {
        let config = EngineConfig {
            verify: config.verify || runner.verification_enabled(),
            edit_mode: runner.edit_mode(),
            ..config
        };
        Self::with_library(runner.library().clone(), runner.mapper_params(), config)
    }

    /// The cell library in use.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The mapper parameters in use.
    pub fn mapper_params(&self) -> MapperParams {
        self.mapper
    }

    /// Cumulative statistics since engine creation.
    pub fn stats(&self) -> EvalStats {
        self.stats.lock().expect("stats lock").stats
    }

    /// Resets the cumulative statistics (the caches are kept).
    pub fn reset_stats(&self) {
        let mut state = self.stats.lock().expect("stats lock");
        state.stats = EvalStats::default();
        state.timings = PassTimings::default();
    }

    /// Cumulative per-pass timing breakdown of every transform and mapping
    /// the engine executed (merged across the parallel workers' contexts).
    pub fn pass_timings(&self) -> PassTimings {
        self.stats.lock().expect("stats lock").timings
    }

    /// Merges externally recorded pass timings (e.g. from a service worker's
    /// own [`PassContext`] driving [`EvalEngine::evaluate_flow_with_ctx`])
    /// into the engine's cumulative breakdown.
    pub fn absorb_timings(&self, timings: &PassTimings) {
        self.stats
            .lock()
            .expect("stats lock")
            .timings
            .merge(timings);
    }

    /// Number of records in the persistent QoR store.
    pub fn store_len(&self) -> usize {
        self.store.lock().expect("store lock").len()
    }

    /// Forces buffered store appends down to the OS (used on service drain).
    pub fn flush_store(&self) -> std::io::Result<()> {
        self.store.lock().expect("store lock").flush()
    }

    /// Compacts the persistent QoR store in place (see [`QorStore::compact`]).
    pub fn compact_store(&self) -> std::io::Result<crate::store::CompactionReport> {
        self.store.lock().expect("store lock").compact()
    }

    /// Current health of the persistent store.
    pub fn store_mode(&self) -> crate::store::StoreMode {
        self.store.lock().expect("store lock").mode()
    }

    /// A point-in-time summary of the persistent store.
    pub fn store_summary(&self) -> crate::store::StoreSummary {
        self.store.lock().expect("store lock").summary()
    }

    /// Drives one store probe (see [`QorStore::probe`]): drains parked
    /// records and recovers a degraded store when the disk is back.
    /// `flowd`'s watchdog thread calls this periodically.
    pub fn probe_store(&self) -> crate::store::StoreMode {
        self.store.lock().expect("store lock").probe()
    }

    /// The drain-time durability barrier: fsync the store and rewrite its
    /// manifest (see [`QorStore::checkpoint`]).
    pub fn checkpoint_store(&self) -> std::io::Result<()> {
        self.store.lock().expect("store lock").checkpoint()
    }

    /// A point-in-time summary of the sharded trie cache.
    pub fn cache_summary(&self) -> CacheSummary {
        let mut summary = CacheSummary::default();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            for slot in shard.tries.values() {
                summary.resident_designs += 1;
                match &slot.trie {
                    Some(trie) => {
                        summary.prefixes += trie.len();
                        summary.cached_prefixes += trie.cached_prefixes();
                        summary.cached_aig_nodes += trie.cached_aig_nodes();
                    }
                    None => summary.checked_out += 1,
                }
            }
        }
        summary
    }

    /// The shard holding `design_fp`'s trie.
    fn shard(&self, design_fp: Fingerprint) -> &Mutex<TrieShard> {
        &self.shards[(design_fp.0 as usize) % self.shards.len()]
    }

    /// Per-shard cap on resident designs implied by the process-wide limit.
    fn per_shard_design_cap(&self) -> usize {
        self.config
            .max_resident_designs
            .div_ceil(self.shards.len())
            .max(1)
    }

    /// Commits one batch's counters (and optional worker timings).
    pub(crate) fn commit_stats(&self, batch: &EvalStats, timings: Option<&PassTimings>) {
        let mut state = self.stats.lock().expect("stats lock");
        if let Some(t) = timings {
            state.timings.merge(t);
        }
        state.stats.absorb(batch);
    }

    /// Evaluates a batch of flows on `design`, returning QoR in input order.
    ///
    /// Results are bit-identical to `FlowRunner::run` with the same library
    /// and mapper parameters.
    ///
    /// The engine lock is held only for store lookups and the final commit;
    /// the evaluation itself — including the parallel subtree phase — runs
    /// with the lock released, so concurrent callers (e.g. `engine.stats()`
    /// from a monitoring thread) are never blocked behind a long batch.  Two
    /// callers evaluating the *same* design concurrently may duplicate work
    /// (each checks out its own trie); results stay correct and store inserts
    /// are idempotent.
    pub fn evaluate_batch(&self, design: &Aig, flows: &[Vec<Transform>]) -> Vec<Qor> {
        let start = std::time::Instant::now();
        let design_fp = fingerprint_design(design);
        let mut batch = EvalStats {
            flows_requested: flows.len(),
            passes_requested: flows.iter().map(Vec::len).sum(),
            ..EvalStats::default()
        };

        // Store keys are built once, outside the lock, so the critical
        // sections below do lookups and inserts only.
        let keys: Vec<StoreKey> = flows
            .iter()
            .map(|flow| StoreKey {
                design: design_fp,
                config: self.config_fp,
                flow: flow_script(flow),
            })
            .collect();

        // Phase 1a (store-locked): persistent-store lookups.
        let mut results: Vec<Option<Qor>> = Vec::with_capacity(flows.len());
        let mut misses: Vec<usize> = Vec::new();
        {
            let store = self.store.lock().expect("store lock");
            for key in &keys {
                match store.get(key) {
                    Some(qor) => {
                        batch.store_hits += 1;
                        results.push(Some(qor));
                    }
                    None => {
                        misses.push(results.len());
                        results.push(None);
                    }
                }
            }
        }
        batch.flows_evaluated = misses.len();

        // Phase 1b (shard-locked): trie check-out.  While checked out the
        // slot stays resident with `trie = None`; a concurrent batch on the
        // same design starts a fresh trie (duplicated work, correct results).
        let mut trie: Option<FlowTrie> = None;
        if !misses.is_empty() {
            let mut shard = self.shard(design_fp).lock().expect("shard lock");
            let clock = shard.tick();
            let slot = shard.tries.entry(design_fp).or_insert(TrieSlot {
                trie: None,
                last_used: clock,
            });
            slot.last_used = clock;
            trie = Some(
                slot.trie
                    .take()
                    .unwrap_or_else(|| FlowTrie::new(self.config.cache_budget_aig_nodes)),
            );
        }

        // Phase 2 (unlocked): trie evaluation, parallel across subtrees.
        let mut evaluated: Vec<(usize, Qor)> = Vec::new();
        let mut timings = PassTimings::default();
        if let Some(trie) = trie.as_mut() {
            evaluated =
                self.evaluate_misses(trie, design, flows, &misses, &mut batch, &mut timings);
        }

        // Phase 3 (locked in store → shard → stats order): commit results,
        // return the trie and absorb statistics.
        {
            let mut store = self.store.lock().expect("store lock");
            for &(idx, qor) in &evaluated {
                if store.insert(keys[idx].clone(), qor).is_err() {
                    batch.store_write_errors += 1;
                }
                results[idx] = Some(qor);
            }
            // Durability (fsync) happens at drain/compact time via
            // `flush_store`, not per batch.
        }
        if let Some(trie) = trie {
            let cap = self.per_shard_design_cap();
            let mut shard = self.shard(design_fp).lock().expect("shard lock");
            let clock = shard.tick();
            // On a same-design race the last writer wins; the loser's
            // cached prefixes are advisory and safe to drop.
            shard.tries.insert(
                design_fp,
                TrieSlot {
                    trie: Some(trie),
                    last_used: clock,
                },
            );
            shard.evict_to(cap);
        }
        batch.wall_s = start.elapsed().as_secs_f64();
        self.commit_stats(&batch, Some(&timings));
        results
            .into_iter()
            .map(|q| q.expect("every flow evaluated"))
            .collect()
    }

    /// Evaluates **one** flow with a caller-owned [`PassContext`], sharing
    /// the persistent store and the sharded prefix-trie cache with every
    /// other client of this engine.
    ///
    /// This is the request path of the `flowd` service: each worker thread
    /// owns one long-lived context (per PR 5's one-context-per-flow design)
    /// and drives it through here, so arena buffers and analysis caches are
    /// recycled across requests while QoR results and memoized prefixes are
    /// shared process-wide.  Results are bit-identical to
    /// [`EvalEngine::evaluate_batch`] and `FlowRunner::run`.
    ///
    /// Locking: a store lookup, then one short shard critical section to
    /// borrow the deepest memoized prefix, then evaluation entirely outside
    /// any lock, then short commit sections.  Pass timings stay in `pctx`;
    /// callers that want them aggregated call [`EvalEngine::absorb_timings`].
    pub fn evaluate_flow_with_ctx(
        &self,
        design: &Aig,
        flow: &[Transform],
        pctx: &mut PassContext,
    ) -> Qor {
        self.try_evaluate_flow_with_ctx(design, flow, pctx, &CancelToken::never())
            .expect("a never-firing token cannot cancel")
    }

    /// [`evaluate_flow_with_ctx`](Self::evaluate_flow_with_ctx) under a
    /// cancellation budget.
    ///
    /// The evaluation phase (which runs outside every engine lock) arms
    /// `pctx` with `cancel`; passes, verification and mapping poll it and
    /// unwind once it fires.  On cancellation everything partial is
    /// discarded — no trie prefix is published, no store record written, the
    /// engine's locks were never held by the unwinding code — and the
    /// context stays recyclable for the next request.  Store hits still
    /// answer (even past the deadline, a lookup is cheaper than an error).
    pub fn try_evaluate_flow_with_ctx(
        &self,
        design: &Aig,
        flow: &[Transform],
        pctx: &mut PassContext,
        cancel: &CancelToken,
    ) -> Result<Qor, Cancelled> {
        let start = std::time::Instant::now();
        let design_fp = fingerprint_design(design);
        let key = StoreKey {
            design: design_fp,
            config: self.config_fp,
            flow: flow_script(flow),
        };
        let mut batch = EvalStats {
            flows_requested: 1,
            passes_requested: flow.len(),
            ..EvalStats::default()
        };
        if let Some(qor) = self.store.lock().expect("store lock").get(&key) {
            batch.store_hits = 1;
            batch.wall_s = start.elapsed().as_secs_f64();
            self.commit_stats(&batch, None);
            return Ok(qor);
        }
        batch.flows_evaluated = 1;

        // Phase 1 (shard-locked): copy out the deepest memoized prefix of
        // this flow.  `done` counts the transforms already reflected in `g`.
        let mut g = pctx.take_buf();
        let mut done = 0usize;
        let mut seeded = false;
        {
            let mut shard = self.shard(design_fp).lock().expect("shard lock");
            let clock = shard.tick();
            let budget = self.config.cache_budget_aig_nodes;
            let slot = shard.tries.entry(design_fp).or_insert(TrieSlot {
                trie: Some(FlowTrie::new(budget)),
                last_used: clock,
            });
            slot.last_used = clock;
            if let Some(trie) = slot.trie.as_mut() {
                if trie.peek_aig(TRIE_ROOT).is_none() {
                    trie.cache_aig(TRIE_ROOT, design.cleanup());
                }
                trie.insert(flow);
                let mut node = TRIE_ROOT;
                let mut best = (TRIE_ROOT, 0usize);
                for (i, &t) in flow.iter().enumerate() {
                    node = trie.child(node, t).expect("path inserted above");
                    if trie.peek_aig(node).is_some() {
                        best = (node, i + 1);
                    }
                }
                let (best_node, best_depth) = best;
                let hit = trie.cached_aig(best_node).expect("root always cached");
                g.copy_from(hit);
                done = best_depth;
                seeded = true;
                if best_depth > 0 {
                    batch.trie_hits += 1;
                }
            }
        }
        if !seeded {
            // The trie is checked out by a concurrent batch: evaluate cold.
            g.copy_from(design);
            pctx.ensure_clean(&mut g);
        }

        // Phase 2 (unlocked, cancellable): apply the remaining transforms,
        // cloning the shallow intermediates as cache candidates.  No engine
        // lock is held anywhere in this region, so a cancellation unwind can
        // never poison the store or a shard.
        let mut candidates: Vec<(usize, Aig)> = Vec::new();
        pctx.arm_cancel(cancel.clone());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for &t in &flow[done..] {
                pctx.apply(t, &mut g);
                batch.passes_applied += 1;
                done += 1;
                if seeded
                    && done <= self.config.cache_depth
                    && g.len() <= self.config.cache_budget_aig_nodes
                {
                    candidates.push((done, g.clone()));
                }
            }
            if self.config.verify && !random_equivalence_check(design, &g, 8, VERIFY_SEED) {
                panic!(
                    "floweval verification failed: flow `{}` changed the function of `{}`",
                    key.flow,
                    design.name()
                );
            }
            self.map_terminal(pctx, &g)
        }));
        pctx.disarm_cancel();
        let qor = match outcome {
            Ok(qor) => qor,
            Err(payload) => {
                // The working buffer is structurally valid at every
                // checkpoint (passes replace it only after their full
                // sweep), so it goes back to the pool either way.
                pctx.recycle(g);
                match payload.downcast::<Cancelled>() {
                    Ok(cancelled) => {
                        // Discard all partial state: `candidates` drop here,
                        // nothing was published to the trie or the store.
                        batch.wall_s = start.elapsed().as_secs_f64();
                        self.commit_stats(&batch, None);
                        return Err(*cancelled);
                    }
                    Err(other) => std::panic::resume_unwind(other),
                }
            }
        };
        batch.mappings_run = 1;
        pctx.recycle(g);

        // Phase 3 (locked): publish cache candidates and the result.  The
        // prefix path is re-resolved by transforms — node ids must not be
        // held across the unlocked phase, the trie may have been evicted or
        // rebuilt meanwhile.
        if !candidates.is_empty() {
            let mut shard = self.shard(design_fp).lock().expect("shard lock");
            let clock = shard.tick();
            if let Some(slot) = shard.tries.get_mut(&design_fp) {
                slot.last_used = clock;
                if let Some(trie) = slot.trie.as_mut() {
                    for (depth, aig) in candidates {
                        let node = trie.insert(&flow[..depth]);
                        if trie.peek_aig(node).is_none() {
                            trie.cache_aig(node, aig);
                        }
                    }
                }
            }
        }
        {
            let mut store = self.store.lock().expect("store lock");
            if store.insert(key, qor).is_err() {
                batch.store_write_errors += 1;
            }
            // Durability (fsync) happens at drain/compact time via
            // `flush_store`, not per request.
        }
        batch.wall_s = start.elapsed().as_secs_f64();
        self.commit_stats(&batch, None);
        Ok(qor)
    }

    /// Evaluates the store misses through the prefix trie.
    fn evaluate_misses(
        &self,
        trie: &mut FlowTrie,
        design: &Aig,
        flows: &[Vec<Transform>],
        misses: &[usize],
        batch: &mut EvalStats,
        timings: &mut PassTimings,
    ) -> Vec<(usize, Qor)> {
        if trie.peek_aig(TRIE_ROOT).is_none() {
            trie.cache_aig(TRIE_ROOT, design.cleanup());
        }

        // Merge the miss flows into the trie; note terminals and active edges.
        let mut terminals: HashMap<TrieNodeId, Vec<usize>> = HashMap::new();
        let mut active: HashMap<TrieNodeId, Vec<(Transform, TrieNodeId)>> = HashMap::new();
        for &idx in misses {
            let terminal = trie.insert(&flows[idx]);
            terminals.entry(terminal).or_default().push(idx);
            let mut current = TRIE_ROOT;
            for &t in &flows[idx] {
                let child = trie.child(current, t).expect("edge just inserted");
                let edges = active.entry(current).or_default();
                if !edges.iter().any(|&(et, _)| et == t) {
                    edges.push((t, child));
                }
                current = child;
            }
        }

        // Sequential descent to the split depth, spawning one task per
        // independent subtree.  The shallow phase runs on its own recycling
        // pass context; each parallel worker below creates one per subtree.
        let mut outputs: Vec<(usize, Qor)> = Vec::new();
        let mut tasks: Vec<(TrieNodeId, Aig)> = Vec::new();
        let mut shallow_failures: Vec<usize> = Vec::new();
        let mut pctx = self.pass_context();
        let root_aig = trie
            .cached_aig(TRIE_ROOT)
            .expect("root cached above")
            .clone();
        self.descend(
            trie,
            design,
            &terminals,
            &active,
            TRIE_ROOT,
            root_aig,
            0,
            &mut outputs,
            &mut tasks,
            &mut shallow_failures,
            batch,
            &mut pctx,
        );
        timings.merge(&pctx.take_timings());

        // Parallel subtree evaluation over the shared, now-immutable trie.
        // `claimed` bounds the total AIG nodes workers may clone as cache
        // candidates, so peak memory respects the budget even before the
        // commit-time LRU accounting runs.
        let claimed = AtomicUsize::new(trie.cached_aig_nodes());
        let ctx = BatchContext {
            trie: &*trie,
            terminals: &terminals,
            active: &active,
            claimed: &claimed,
            verify_against: self.config.verify.then_some(design),
        };
        let worker_results: Vec<WorkerResult> = tasks
            .par_iter()
            .map(|(node, aig)| {
                let mut result = WorkerResult::default();
                let mut pctx = self.pass_context();
                self.eval_subtree(&ctx, *node, aig, &mut result, &mut pctx);
                result.timings = pctx.take_timings();
                result
            })
            .collect();

        // Commit: merge outputs, stats, LRU touches and new cache entries
        // (budget-enforced a second time by the trie itself).
        let mut verify_failures: Vec<usize> = shallow_failures;
        for result in worker_results {
            outputs.extend(result.outputs);
            batch.passes_applied += result.passes_applied;
            batch.trie_hits += result.trie_hits;
            batch.mappings_run += result.mappings_run;
            timings.merge(&result.timings);
            verify_failures.extend(result.verify_failures);
            for node in result.touched {
                trie.cached_aig(node); // refresh LRU clocks for worker hits
            }
            for (node, aig) in result.cache_candidates {
                trie.cache_aig(node, aig);
            }
        }
        if !verify_failures.is_empty() {
            let scripts: Vec<String> = verify_failures
                .iter()
                .map(|&idx| flow_script(&flows[idx]))
                .collect();
            panic!(
                "floweval verification failed: {} flow(s) changed the function of `{}`: {:?}",
                scripts.len(),
                design.name(),
                scripts
            );
        }
        outputs
    }

    /// A fresh evaluation context configured with this engine's
    /// [`EngineConfig::edit_mode`], backed by the engine-wide ISOP memo when
    /// [`EngineConfig::share_isop_cache`] is on.  The orchestrator creates
    /// its per-worker contexts through here so every worker of every search
    /// shares one cover memo.
    pub(crate) fn pass_context(&self) -> PassContext {
        let ctx = PassContext::with_modes(CutEngine::default(), self.config.edit_mode);
        if self.config.share_isop_cache {
            ctx.share_isop_cache(self.isop.clone())
        } else {
            ctx
        }
    }

    /// Cross-context hit/miss counters of the engine-wide ISOP memo.
    pub fn shared_isop_stats(&self) -> (u64, u64) {
        (self.isop.hits(), self.isop.misses())
    }

    /// The engine's configuration (orchestrator internals read the cache
    /// tunables from here).
    pub(crate) fn engine_config(&self) -> &EngineConfig {
        &self.config
    }

    /// The configuration fingerprint store keys are built against.
    pub(crate) fn config_fingerprint(&self) -> Fingerprint {
        self.config_fp
    }

    /// Looks up many store keys under one lock acquisition.
    pub(crate) fn store_lookup_batch(&self, keys: &[StoreKey]) -> Vec<Option<Qor>> {
        let store = self.store.lock().expect("store lock");
        keys.iter().map(|key| store.get(key)).collect()
    }

    /// Inserts many evaluated results under one lock acquisition, returning
    /// the number of append errors (results are still served from memory).
    /// Inserts are idempotent: concurrent duplicate evaluations are
    /// bit-identical, so whichever lands first wins and the rest dedup.
    pub(crate) fn store_insert_batch(&self, entries: Vec<(StoreKey, Qor)>) -> usize {
        let mut store = self.store.lock().expect("store lock");
        let mut errors = 0;
        for (key, qor) in entries {
            if store.insert(key, qor).is_err() {
                errors += 1;
            }
        }
        errors
    }

    /// Maps a terminal AIG through the recycling context: the subject graph
    /// ping-pongs through a context buffer instead of a fresh allocation.
    /// QoR bits match the reference `map_qor` exactly.
    pub(crate) fn map_terminal(&self, pctx: &mut PassContext, aig: &Aig) -> Qor {
        let mut subject = pctx.take_buf();
        subject.copy_from(aig);
        let qor = map_with_ctx(&mut subject, &self.library, self.mapper, pctx).qor();
        pctx.recycle(subject);
        qor
    }

    /// Sequential evaluation of the shallow levels (depth < `split_depth`).
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        trie: &mut FlowTrie,
        design: &Aig,
        terminals: &HashMap<TrieNodeId, Vec<usize>>,
        active: &HashMap<TrieNodeId, Vec<(Transform, TrieNodeId)>>,
        node: TrieNodeId,
        aig: Aig,
        depth: usize,
        outputs: &mut Vec<(usize, Qor)>,
        tasks: &mut Vec<(TrieNodeId, Aig)>,
        failures: &mut Vec<usize>,
        batch: &mut EvalStats,
        pctx: &mut PassContext,
    ) {
        if depth >= self.config.split_depth {
            tasks.push((node, aig));
            return;
        }
        if let Some(indices) = terminals.get(&node) {
            if self.config.verify && !random_equivalence_check(design, &aig, 8, VERIFY_SEED) {
                failures.extend_from_slice(indices);
            }
            let qor = self.map_terminal(pctx, &aig);
            batch.mappings_run += 1;
            outputs.extend(indices.iter().map(|&idx| (idx, qor)));
        }
        if let Some(edges) = active.get(&node) {
            for &(t, child) in edges {
                let child_aig = if trie.peek_aig(child).is_some() {
                    batch.trie_hits += 1;
                    let hit = trie.cached_aig(child).expect("peeked above"); // touch LRU
                    let mut buf = pctx.take_buf();
                    buf.copy_from(hit);
                    buf
                } else {
                    let mut next = pctx.take_buf();
                    next.copy_from(&aig);
                    pctx.apply(t, &mut next);
                    batch.passes_applied += 1;
                    if trie.depth(child) <= self.config.cache_depth {
                        trie.cache_aig(child, next.clone());
                    }
                    next
                };
                self.descend(
                    trie,
                    design,
                    terminals,
                    active,
                    child,
                    child_aig,
                    depth + 1,
                    outputs,
                    tasks,
                    failures,
                    batch,
                    pctx,
                );
            }
        }
        pctx.recycle(aig);
    }

    /// Depth-first evaluation of one subtree (runs on a worker thread).
    fn eval_subtree(
        &self,
        ctx: &BatchContext<'_>,
        node: TrieNodeId,
        aig: &Aig,
        result: &mut WorkerResult,
        pctx: &mut PassContext,
    ) {
        if let Some(indices) = ctx.terminals.get(&node) {
            if let Some(reference) = ctx.verify_against {
                if !random_equivalence_check(reference, aig, 8, VERIFY_SEED) {
                    result.verify_failures.extend_from_slice(indices);
                }
            }
            let qor = self.map_terminal(pctx, aig);
            result.mappings_run += 1;
            result.outputs.extend(indices.iter().map(|&idx| (idx, qor)));
        }
        let Some(edges) = ctx.active.get(&node) else {
            return;
        };
        for &(t, child) in edges {
            if let Some(cached) = ctx.trie.peek_aig(child) {
                result.trie_hits += 1;
                result.touched.push(child);
                self.eval_subtree(ctx, child, cached, result, pctx);
            } else {
                let mut next = pctx.take_buf();
                next.copy_from(aig);
                pctx.apply(t, &mut next);
                result.passes_applied += 1;
                if ctx.trie.depth(child) <= self.config.cache_depth
                    && ctx.try_claim(next.len(), self.config.cache_budget_aig_nodes)
                {
                    result.cache_candidates.push((child, next.clone()));
                }
                self.eval_subtree(ctx, child, &next, result, pctx);
                pctx.recycle(next);
            }
        }
    }
}

/// Seed used for random-simulation verification, matching `FlowRunner`.
pub(crate) const VERIFY_SEED: u64 = 0x5EED;

/// Shared read-only context of one batch's parallel phase.
struct BatchContext<'a> {
    trie: &'a FlowTrie,
    terminals: &'a HashMap<TrieNodeId, Vec<usize>>,
    active: &'a HashMap<TrieNodeId, Vec<(Transform, TrieNodeId)>>,
    /// AIG nodes claimed for cache candidates across all workers (including
    /// what the trie already holds), bounding peak memory of the batch.
    claimed: &'a AtomicUsize,
    /// When verification is enabled, the reference design to simulate against.
    verify_against: Option<&'a Aig>,
}

impl BatchContext<'_> {
    /// Attempts to reserve `size` AIG nodes of cache-candidate memory.
    fn try_claim(&self, size: usize, budget: usize) -> bool {
        let before = self.claimed.fetch_add(size, Ordering::Relaxed);
        if before.saturating_add(size) <= budget {
            true
        } else {
            self.claimed.fetch_sub(size, Ordering::Relaxed);
            false
        }
    }
}

/// Per-worker evaluation scratch, merged under the engine lock afterwards.
#[derive(Debug, Default)]
struct WorkerResult {
    outputs: Vec<(usize, Qor)>,
    cache_candidates: Vec<(TrieNodeId, Aig)>,
    touched: Vec<TrieNodeId>,
    verify_failures: Vec<usize>,
    passes_applied: usize,
    trie_hits: usize,
    mappings_run: usize,
    timings: PassTimings,
}

/// Renders a transform sequence as the canonical ABC-style script, identical
/// to `flowgen::Flow::to_script` so store records interoperate.
pub fn flow_script(flow: &[Transform]) -> String {
    flow.iter()
        .map(|t| t.command())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Stable structural fingerprint of a design (name-independent).
pub fn fingerprint_design(aig: &Aig) -> Fingerprint {
    let mut h = Fnv64::new();
    h.write_usize(aig.len());
    h.write_usize(aig.num_inputs());
    h.write_usize(aig.num_outputs());
    for id in aig.node_ids() {
        match aig.node(id).kind() {
            NodeKind::Constant => h.write_u32(0),
            NodeKind::Input(index) => {
                h.write_u32(1);
                h.write_u32(index);
            }
            NodeKind::And(a, b) => {
                h.write_u32(2);
                h.write_u32(a.raw());
                h.write_u32(b.raw());
            }
        }
    }
    for &output in aig.outputs() {
        h.write_u32(output.raw());
    }
    Fingerprint::from_hasher(h)
}

/// Stable fingerprint of the evaluation configuration (library + mapper).
pub fn fingerprint_config(library: &CellLibrary, params: MapperParams) -> Fingerprint {
    let mut h = Fnv64::new();
    h.write_str(library.name());
    h.write_usize(library.len());
    for cell in library.cells() {
        h.write_str(&cell.name);
        h.write_u64(cell.area.to_bits());
        h.write_u64(cell.delay_ps.to_bits());
        h.write_u64(cell.load_delay_ps.to_bits());
        h.write_usize(cell.num_inputs);
        h.write_usize(cell.function.num_vars());
        for &word in cell.function.words() {
            h.write_u64(word);
        }
    }
    h.write_usize(params.cut_size);
    h.write_usize(params.cuts_per_node);
    h.write_u32(match params.mode {
        synth::MapMode::Delay => 0,
        synth::MapMode::Area => 1,
    });
    Fingerprint::from_hasher(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.and(a, b);
        g.add_output("f", f);
        let mut h = g.clone();
        h.set_name("renamed");
        assert_eq!(
            fingerprint_design(&g),
            fingerprint_design(&h),
            "names do not matter"
        );
        let mut k = g.clone();
        let extra = k.and(a, !b);
        k.add_output("g", extra);
        assert_ne!(fingerprint_design(&g), fingerprint_design(&k));
    }

    #[test]
    fn config_fingerprint_depends_on_mapper_mode() {
        let lib = CellLibrary::nangate14();
        let delay = fingerprint_config(&lib, MapperParams::default());
        let area = fingerprint_config(
            &lib,
            MapperParams {
                mode: synth::MapMode::Area,
                ..MapperParams::default()
            },
        );
        assert_ne!(delay, area);
    }

    #[test]
    fn flow_script_matches_abc_style() {
        assert_eq!(flow_script(&[]), "");
        assert_eq!(
            flow_script(&[Transform::Balance, Transform::RewriteZ]),
            "balance; rewrite -z"
        );
    }
}
