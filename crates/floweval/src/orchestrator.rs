//! Sharded flow-space search: a work-stealing exploration orchestrator.
//!
//! [`EvalEngine::evaluate_batch`] parallelizes *within* one design's prefix
//! trie, but a dataset-collection campaign (the paper labels 100,000 sample
//! flows across many designs) is a different shape of workload: many designs
//! times many flows, arriving as one big exploration job.  This module adds
//! [`EvalEngine::search`], which partitions that workload into **shards by
//! shared-prefix affinity**, runs one worker thread per shard — each owning a
//! recycling [`PassContext`] and a *private* [`FlowTrie`] cache slice — and
//! merges everything into the engine's single process-wide QoR store (whose
//! inserts are idempotent, so duplicated work dedups for free).
//!
//! Scheduling is **budget-aware**: each worker keeps an EMA cost model per
//! transform, seeded from the engine's cumulative [`PassTimings`] and updated
//! from its own context after every job, and picks the next flow from a
//! bounded window of its queue by *expected reuse per millisecond* — the
//! depth of the flow's already-cached prefix divided by the predicted cost of
//! the remaining passes.  Workers that drain their shard **steal half of the
//! largest remaining queue** (from the cold end, preserving the victim's
//! affinity ordering at the front).
//!
//! Every pass and the mapper are deterministic and prefix AIGs are pure
//! functions of `(design, prefix)`, so the label set and the QoR bits are
//! **identical to a single-process [`EvalEngine::evaluate_batch`]** run over
//! the same designs and flows, for any worker count and any steal schedule —
//! the differential tests pin this for 1/2/4/8 workers and under injected
//! stragglers.
//!
//! ```
//! use circuits::{Design, DesignScale};
//! use floweval::{EvalEngine, FlowSource, SearchConfig};
//!
//! let designs = vec![Design::Alu64.generate(DesignScale::Tiny)];
//! let engine = EvalEngine::default();
//! let source = FlowSource::Random { seed: 7, count: 4 };
//! let outcome = engine.search(&designs, &source, &SearchConfig::default());
//! assert_eq!(outcome.labels.len(), 4);
//! assert_eq!(outcome.report.evaluated, 4);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use aig::{random_equivalence_check, Aig};
use serde::Serialize;
use synth::{PassContext, PassTimings, Qor, Transform};

use crate::engine::{fingerprint_design, EvalEngine, VERIFY_SEED};
use crate::stats::EvalStats;
use crate::store::StoreKey;
use crate::trie::{FlowTrie, TRIE_ROOT};

/// Flow length of the paper's search space (§2.1: `m · n` with `n = 6`
/// transformations repeated `m = 4` times each).
pub const PAPER_FLOW_LEN: usize = 4 * Transform::COUNT;

/// Where a search gets its flows from.
#[derive(Debug, Clone)]
pub enum FlowSource {
    /// An explicit list of flows, evaluated as given.
    Explicit(Vec<Vec<Transform>>),
    /// `count` distinct flows sampled uniformly from the paper's §2.1 space
    /// (length-24 permutations of the six-transform multiset, four copies
    /// each), deterministically from `seed`.
    Random {
        /// Seed of the sampler; equal seeds yield equal flow lists.
        seed: u64,
        /// Number of distinct flows to draw.
        count: usize,
    },
    /// Every extension of `prefix` by all `6^depth` transform suffixes, in
    /// [`Transform::ALL`] order — the exhaustive expansion of one sub-trie.
    PrefixExpansion {
        /// The shared prefix each generated flow starts with.
        prefix: Vec<Transform>,
        /// Suffix length; the source yields `6^depth` flows (`depth ≤ 8`).
        depth: usize,
    },
}

impl FlowSource {
    /// Materializes the concrete flow list this source denotes.  The list is
    /// deterministic, so callers can compare a [`EvalEngine::search`] run
    /// against [`EvalEngine::evaluate_batch`] over `resolve()`'s output.
    pub fn resolve(&self) -> Vec<Vec<Transform>> {
        match self {
            FlowSource::Explicit(flows) => flows.clone(),
            FlowSource::Random { seed, count } => sample_paper_space(*seed, *count),
            FlowSource::PrefixExpansion { prefix, depth } => {
                assert!(*depth <= 8, "prefix expansion depth {depth} > 8");
                let mut flows = vec![prefix.clone()];
                for _ in 0..*depth {
                    let mut next = Vec::with_capacity(flows.len() * Transform::COUNT);
                    for flow in &flows {
                        for &t in &Transform::ALL {
                            let mut extended = flow.clone();
                            extended.push(t);
                            next.push(extended);
                        }
                    }
                    flows = next;
                }
                flows
            }
        }
    }
}

/// Draws `count` distinct flows from the paper's space with a local
/// xorshift64* generator (floweval has no runtime `rand` dependency).
fn sample_paper_space(seed: u64, count: usize) -> Vec<Vec<Transform>> {
    let mut state = splitmix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let mut rng = move || {
        // xorshift64*: cheap, full-period, deterministic across platforms.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    let base: Vec<Transform> = Transform::ALL
        .iter()
        .flat_map(|&t| std::iter::repeat_n(t, PAPER_FLOW_LEN / Transform::COUNT))
        .collect();
    let mut flows: Vec<Vec<Transform>> = Vec::with_capacity(count);
    let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(count);
    // The space holds 24!/(4!)^6 ≈ 3.2e15 flows, so collisions are rare; the
    // attempt bound only guards degenerate requests (count near the space
    // size at tiny lengths).
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(64).saturating_add(1024);
    while flows.len() < count && attempts < max_attempts {
        attempts += 1;
        let mut flow = base.clone();
        for i in (1..flow.len()).rev() {
            let j = (rng() % (i as u64 + 1)) as usize;
            flow.swap(i, j);
        }
        let key: Vec<u8> = flow.iter().map(|t| t.index() as u8).collect();
        if seen.insert(key) {
            flows.push(flow);
        }
    }
    flows
}

/// SplitMix64 finalizer: a high-quality 64-bit mix for seeding and for the
/// per-job straggler-injection hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic slowdown injection for scheduling tests: a seeded fraction
/// of jobs sleeps before evaluating, forcing queue imbalance and steals
/// without ever changing a result.
#[derive(Debug, Clone, Copy)]
pub struct StragglerInjection {
    /// Seed of the per-job selection hash.
    pub seed: u64,
    /// Percentage (0–100) of jobs delayed.
    pub pct: u8,
    /// Delay applied to a selected job, in milliseconds.
    pub delay_ms: u64,
}

impl StragglerInjection {
    /// Whether the job `(design, flow)` is selected for delay.
    fn hits(&self, design: u32, flow: u32) -> bool {
        let h = splitmix64(self.seed ^ (u64::from(design) << 32) ^ u64::from(flow));
        (h % 100) < u64::from(self.pct.min(100))
    }
}

/// Tuning knobs of one [`EvalEngine::search`] run.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Worker threads (= shards).  Clamped to at least 1.
    pub workers: usize,
    /// Jobs are grouped by design and by their first `shard_prefix_len`
    /// transforms before shard assignment, so flows sharing a prefix land on
    /// the same worker's private trie.
    pub shard_prefix_len: usize,
    /// The budget-aware scheduler scans up to this many jobs at the front of
    /// the worker's queue and picks the best reuse-per-cost score.
    pub schedule_window: usize,
    /// Evaluated results are flushed to the persistent store in batches of
    /// this size (one lock acquisition per batch).
    pub commit_batch: usize,
    /// Stop dispatching new jobs once this much wall clock has elapsed.
    pub max_wall_s: Option<f64>,
    /// Stop dispatching new jobs once this many flows have been evaluated
    /// (store hits are free and do not count).
    pub max_evals: Option<usize>,
    /// Deterministic straggler injection (tests only; `None` in production).
    pub straggler: Option<StragglerInjection>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            workers: 4,
            shard_prefix_len: 2,
            schedule_window: 64,
            commit_batch: 64,
            max_wall_s: None,
            max_evals: None,
            straggler: None,
        }
    }
}

/// One labelled evaluation produced by a search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SearchLabel {
    /// Index into the search's design list.
    pub design: usize,
    /// Index into the search's resolved flow list.
    pub flow: usize,
    /// The flow's quality of result (bit-identical to `evaluate_batch`).
    pub qor: Qor,
    /// Whether the label was answered from the persistent store.
    pub from_store: bool,
}

/// One point of the merged completion trajectory: after `t_s` seconds,
/// `completed` flows had been evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrajectoryPoint {
    /// Seconds since the search started.
    pub t_s: f64,
    /// Cumulative evaluated-flow count at that time.
    pub completed: usize,
}

/// Counters and throughput summary of one search run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SearchReport {
    /// Designs in the workload.
    pub designs: usize,
    /// Flows per design (the resolved flow-list length).
    pub flows: usize,
    /// Total jobs (`designs × flows`).
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs answered from the persistent store without evaluation.
    pub store_hits: usize,
    /// Flows evaluated by the workers.
    pub evaluated: usize,
    /// Transform passes actually applied (after prefix reuse).
    pub passes_applied: usize,
    /// Transform passes the flow list requested.
    pub passes_requested: usize,
    /// Jobs that started from a non-root cached prefix.
    pub trie_hits: usize,
    /// Steal events (one per half-queue transfer).
    pub steals: u64,
    /// Jobs moved between shards by stealing.
    pub stolen_jobs: u64,
    /// Cross-context hits of the engine-wide shared ISOP memo during the run.
    pub shared_isop_hits: u64,
    /// Cross-context misses of the engine-wide shared ISOP memo during the run.
    pub shared_isop_misses: u64,
    /// Store append errors (results still served from memory).
    pub store_write_errors: usize,
    /// Wall-clock seconds of the whole search.
    pub wall_s: f64,
    /// Labelled evaluations per hour (`evaluated / wall_s × 3600`).
    pub evals_per_hour: f64,
    /// Whether the wall-clock budget stopped the run early.
    pub deadline_hit: bool,
    /// Whether the evaluation budget stopped the run early.
    pub eval_budget_hit: bool,
    /// Downsampled completion trajectory (≤ 120 points).
    pub trajectory: Vec<TrajectoryPoint>,
}

/// The result of one [`EvalEngine::search`]: the labels, sorted by
/// `(design, flow)`, plus the run report.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Labels in `(design, flow)` order.  Complete unless a wall-clock or
    /// evaluation budget stopped the run early, in which case undispatched
    /// jobs are absent.
    pub labels: Vec<SearchLabel>,
    /// Counters and throughput of the run.
    pub report: SearchReport,
}

/// A job is an index into the `(design, flow)` cross product.
type JobId = u32;

/// Per-worker EMA cost model over the six transforms plus mapping, seeded
/// from the engine's cumulative timings and updated after every job.
#[derive(Debug, Clone)]
struct CostModel {
    pass_ms: [f64; Transform::COUNT],
    map_ms: f64,
}

impl CostModel {
    const ALPHA: f64 = 0.3;
    const DEFAULT_PASS_MS: f64 = 1.0;
    const DEFAULT_MAP_MS: f64 = 2.0;

    fn seeded(timings: &PassTimings) -> Self {
        let mut model = CostModel {
            pass_ms: [Self::DEFAULT_PASS_MS; Transform::COUNT],
            map_ms: Self::DEFAULT_MAP_MS,
        };
        for (slot, stat) in model.pass_ms.iter_mut().zip(&timings.passes) {
            if stat.calls > 0 {
                *slot = stat.seconds * 1e3 / stat.calls as f64;
            }
        }
        if timings.mapping.calls > 0 {
            model.map_ms = timings.mapping.seconds * 1e3 / timings.mapping.calls as f64;
        }
        model
    }

    fn update(&mut self, timings: &PassTimings) {
        for (slot, stat) in self.pass_ms.iter_mut().zip(&timings.passes) {
            if stat.calls > 0 {
                let avg = stat.seconds * 1e3 / stat.calls as f64;
                *slot = (1.0 - Self::ALPHA) * *slot + Self::ALPHA * avg;
            }
        }
        if timings.mapping.calls > 0 {
            let avg = timings.mapping.seconds * 1e3 / timings.mapping.calls as f64;
            self.map_ms = (1.0 - Self::ALPHA) * self.map_ms + Self::ALPHA * avg;
        }
    }

    /// Predicted milliseconds to finish `flow` from an already-cached prefix
    /// of length `done` (remaining passes plus the terminal mapping).
    fn remaining_ms(&self, flow: &[Transform], done: usize) -> f64 {
        let passes: f64 = flow[done.min(flow.len())..]
            .iter()
            .map(|t| self.pass_ms[t.index()])
            .sum();
        passes + self.map_ms
    }
}

/// Read-only state shared by all workers of one search.
struct SearchShared<'a> {
    engine: &'a EvalEngine,
    designs: &'a [Aig],
    flows: &'a [Vec<Transform>],
    jobs: &'a [(u32, u32)],
    keys: &'a [StoreKey],
    queues: &'a [Mutex<VecDeque<JobId>>],
    config: &'a SearchConfig,
    start: Instant,
    stop: AtomicBool,
    deadline_hit: AtomicBool,
    eval_budget_hit: AtomicBool,
    completed: AtomicUsize,
    steal_events: AtomicU64,
    stolen_jobs: AtomicU64,
}

/// One worker's private output, merged after join.
#[derive(Debug, Default)]
struct WorkerOut {
    results: Vec<(JobId, Qor)>,
    completion_times: Vec<f64>,
    evaluated: usize,
    passes_applied: usize,
    trie_hits: usize,
    store_write_errors: usize,
    timings: PassTimings,
}

impl EvalEngine {
    /// Searches `source`'s flow space over `designs` with a sharded
    /// work-stealing worker pool (see `docs/ARCHITECTURE.md`, "Exploration
    /// orchestrator"); results are bit-identical to evaluating
    /// `source.resolve()` through [`EvalEngine::evaluate_batch`] per design.
    pub fn search(
        &self,
        designs: &[Aig],
        source: &FlowSource,
        config: &SearchConfig,
    ) -> SearchOutcome {
        let flows = source.resolve();
        self.search_flows(designs, &flows, config)
    }

    /// [`search`](Self::search) over an already-materialized flow list.
    pub fn search_flows(
        &self,
        designs: &[Aig],
        flows: &[Vec<Transform>],
        config: &SearchConfig,
    ) -> SearchOutcome {
        let start = Instant::now();
        let workers = config.workers.max(1);
        let isop_before = self.shared_isop_stats();
        let mut report = SearchReport {
            designs: designs.len(),
            flows: flows.len(),
            jobs: designs.len() * flows.len(),
            workers,
            passes_requested: designs.len() * flows.iter().map(Vec::len).sum::<usize>(),
            ..SearchReport::default()
        };

        // The job list and its store keys, in canonical (design, flow) order.
        let design_fps: Vec<_> = designs.iter().map(fingerprint_design).collect();
        let config_fp = self.config_fingerprint();
        let mut jobs: Vec<(u32, u32)> = Vec::with_capacity(report.jobs);
        let mut keys: Vec<StoreKey> = Vec::with_capacity(report.jobs);
        for (d, fp) in design_fps.iter().enumerate() {
            for (f, flow) in flows.iter().enumerate() {
                jobs.push((d as u32, f as u32));
                keys.push(StoreKey {
                    design: *fp,
                    config: config_fp,
                    flow: crate::engine::flow_script(flow),
                });
            }
        }

        // Store prefilter under one lock: known labels never reach a shard.
        let mut labels: Vec<SearchLabel> = Vec::with_capacity(jobs.len());
        let mut misses: Vec<JobId> = Vec::new();
        for (idx, cached) in self.store_lookup_batch(&keys).into_iter().enumerate() {
            match cached {
                Some(qor) => {
                    let (d, f) = jobs[idx];
                    report.store_hits += 1;
                    labels.push(SearchLabel {
                        design: d as usize,
                        flow: f as usize,
                        qor,
                        from_store: true,
                    });
                }
                None => misses.push(idx as JobId),
            }
        }

        let queues = shard_jobs(&misses, &jobs, flows, workers, config.shard_prefix_len);
        let shared = SearchShared {
            engine: self,
            designs,
            flows,
            jobs: &jobs,
            keys: &keys,
            queues: &queues,
            config,
            start,
            stop: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            eval_budget_hit: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            steal_events: AtomicU64::new(0),
            stolen_jobs: AtomicU64::new(0),
        };
        let seed_timings = self.pass_timings();

        let mut outs: Vec<WorkerOut> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let shared = &shared;
            let seed_timings = &seed_timings;
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || worker_loop(shared, w, seed_timings)))
                .collect();
            for handle in handles {
                outs.push(handle.join().expect("search worker panicked"));
            }
        });

        // Merge worker outputs into the label list, the stats commit and the
        // completion trajectory.
        let mut merged_timings = PassTimings::default();
        let mut times: Vec<f64> = Vec::new();
        for out in outs {
            for (job, qor) in out.results {
                let (d, f) = jobs[job as usize];
                labels.push(SearchLabel {
                    design: d as usize,
                    flow: f as usize,
                    qor,
                    from_store: false,
                });
            }
            times.extend(out.completion_times);
            report.evaluated += out.evaluated;
            report.passes_applied += out.passes_applied;
            report.trie_hits += out.trie_hits;
            report.store_write_errors += out.store_write_errors;
            merged_timings.merge(&out.timings);
        }
        labels.sort_unstable_by_key(|l| (l.design, l.flow));
        times.sort_unstable_by(f64::total_cmp);
        report.trajectory = downsample_trajectory(&times, 120);
        report.steals = shared.steal_events.load(Ordering::Relaxed);
        report.stolen_jobs = shared.stolen_jobs.load(Ordering::Relaxed);
        report.deadline_hit = shared.deadline_hit.load(Ordering::Relaxed);
        report.eval_budget_hit = shared.eval_budget_hit.load(Ordering::Relaxed);
        let isop_after = self.shared_isop_stats();
        report.shared_isop_hits = isop_after.0 - isop_before.0;
        report.shared_isop_misses = isop_after.1 - isop_before.1;
        report.wall_s = start.elapsed().as_secs_f64();
        report.evals_per_hour = if report.wall_s > 0.0 {
            report.evaluated as f64 / report.wall_s * 3600.0
        } else {
            0.0
        };

        self.commit_stats(
            &EvalStats {
                flows_requested: report.jobs,
                store_hits: report.store_hits,
                flows_evaluated: report.evaluated,
                passes_requested: report.passes_requested,
                passes_applied: report.passes_applied,
                trie_hits: report.trie_hits,
                mappings_run: report.evaluated,
                store_write_errors: report.store_write_errors,
                wall_s: report.wall_s,
                ..EvalStats::default()
            },
            Some(&merged_timings),
        );
        SearchOutcome { labels, report }
    }
}

/// Groups miss jobs by `(design, first shard_prefix_len transforms)`, orders
/// each group lexicographically (consecutive jobs share the deepest
/// prefixes), and assigns whole groups to worker queues longest-processing-
/// time-first so predicted load balances.
fn shard_jobs(
    misses: &[JobId],
    jobs: &[(u32, u32)],
    flows: &[Vec<Transform>],
    workers: usize,
    prefix_len: usize,
) -> Vec<Mutex<VecDeque<JobId>>> {
    let mut groups: HashMap<(u32, u64), Vec<JobId>> = HashMap::new();
    for &job in misses {
        let (d, f) = jobs[job as usize];
        let flow = &flows[f as usize];
        let mut affinity = 0u64;
        for t in flow.iter().take(prefix_len) {
            affinity = affinity * (Transform::COUNT as u64 + 1) + t.index() as u64 + 1;
        }
        groups.entry((d, affinity)).or_default().push(job);
    }
    let mut ordered: Vec<((u32, u64), Vec<JobId>)> = groups.into_iter().collect();
    for (_, members) in ordered.iter_mut() {
        members.sort_unstable_by(|&a, &b| {
            let fa = &flows[jobs[a as usize].1 as usize];
            let fb = &flows[jobs[b as usize].1 as usize];
            fa.iter()
                .map(|t| t.index())
                .cmp(fb.iter().map(|t| t.index()))
                .then(a.cmp(&b))
        });
    }
    // LPT on predicted group cost: pass count plus one mapping per job.
    ordered.sort_unstable_by(|(ka, va), (kb, vb)| {
        let cost = |v: &Vec<JobId>| -> usize {
            v.iter()
                .map(|&j| flows[jobs[j as usize].1 as usize].len() + 1)
                .sum()
        };
        cost(vb).cmp(&cost(va)).then(ka.cmp(kb))
    });
    let mut queues: Vec<VecDeque<JobId>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut loads = vec![0usize; workers];
    for (_, members) in ordered {
        let cost: usize = members
            .iter()
            .map(|&j| flows[jobs[j as usize].1 as usize].len() + 1)
            .sum();
        let target = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, l)| *l)
            .map(|(i, _)| i)
            .unwrap_or(0);
        loads[target] += cost;
        queues[target].extend(members);
    }
    queues.into_iter().map(Mutex::new).collect()
}

/// The body of one search worker: drain the own shard with budget-aware
/// picks, then steal; evaluate each job against the worker's private trie
/// slice; flush results to the store in batches.
fn worker_loop(shared: &SearchShared<'_>, me: usize, seed_timings: &PassTimings) -> WorkerOut {
    let mut out = WorkerOut::default();
    let mut pctx = shared.engine.pass_context();
    let mut model = CostModel::seeded(seed_timings);
    let config = shared.engine.engine_config();
    let trie_budget = (config.cache_budget_aig_nodes / shared.config.workers.max(1)).max(1);
    let mut tries: HashMap<u32, FlowTrie> = HashMap::new();
    let mut pending: Vec<(StoreKey, Qor)> = Vec::new();

    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(max_wall_s) = shared.config.max_wall_s {
            if shared.start.elapsed().as_secs_f64() >= max_wall_s {
                shared.deadline_hit.store(true, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Relaxed);
                break;
            }
        }
        let job = match pick_job(shared, me, &tries, &model) {
            Some(job) => job,
            None => match steal(shared, me) {
                Some(()) => continue,
                None => break,
            },
        };

        let (d, f) = shared.jobs[job as usize];
        if let Some(straggler) = shared.config.straggler {
            if straggler.hits(d, f) {
                std::thread::sleep(std::time::Duration::from_millis(straggler.delay_ms));
            }
        }
        let design = &shared.designs[d as usize];
        let flow = &shared.flows[f as usize];
        let trie = tries.entry(d).or_insert_with(|| FlowTrie::new(trie_budget));
        let qor = evaluate_job(shared.engine, design, flow, trie, &mut pctx, &mut out);
        out.results.push((job, qor));
        out.evaluated += 1;
        out.completion_times
            .push(shared.start.elapsed().as_secs_f64());
        pending.push((shared.keys[job as usize].clone(), qor));
        if pending.len() >= shared.config.commit_batch.max(1) {
            out.store_write_errors += shared
                .engine
                .store_insert_batch(std::mem::take(&mut pending));
        }
        let job_timings = pctx.take_timings();
        model.update(&job_timings);
        out.timings.merge(&job_timings);

        let completed = shared.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max_evals) = shared.config.max_evals {
            if completed >= max_evals {
                shared.eval_budget_hit.store(true, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
    if !pending.is_empty() {
        out.store_write_errors += shared.engine.store_insert_batch(pending);
    }
    out
}

/// Budget-aware pick: scan up to `schedule_window` jobs at the front of the
/// own queue and take the one with the best cached-prefix-depth per predicted
/// remaining cost.  Ties break toward the front (deterministic).
fn pick_job(
    shared: &SearchShared<'_>,
    me: usize,
    tries: &HashMap<u32, FlowTrie>,
    model: &CostModel,
) -> Option<JobId> {
    let mut queue = shared.queues[me].lock().expect("shard queue lock");
    if queue.is_empty() {
        return None;
    }
    let window = shared.config.schedule_window.max(1).min(queue.len());
    let mut best: (usize, f64) = (0, f64::NEG_INFINITY);
    for (i, &job) in queue.iter().take(window).enumerate() {
        let (d, f) = shared.jobs[job as usize];
        let flow = &shared.flows[f as usize];
        let depth = tries.get(&d).map_or(0, |trie| cached_depth(trie, flow));
        let cost_ms = model.remaining_ms(flow, depth).max(1e-9);
        let score = (depth as f64 + 1.0) / cost_ms;
        if score > best.1 {
            best = (i, score);
        }
    }
    queue.remove(best.0)
}

/// Length of the deepest prefix of `flow` with a cached AIG in `trie`.
fn cached_depth(trie: &FlowTrie, flow: &[Transform]) -> usize {
    let mut node = TRIE_ROOT;
    let mut best = 0;
    for (i, &t) in flow.iter().enumerate() {
        match trie.child(node, t) {
            Some(child) => {
                if trie.peek_aig(child).is_some() {
                    best = i + 1;
                }
                node = child;
            }
            None => break,
        }
    }
    best
}

/// Steals half of the most-loaded other queue (from the back — the cold end
/// of the victim's affinity order) into the own queue.  Returns `None` when
/// every queue is empty.
fn steal(shared: &SearchShared<'_>, me: usize) -> Option<()> {
    let mut victim: Option<(usize, usize)> = None;
    for (i, queue) in shared.queues.iter().enumerate() {
        if i == me {
            continue;
        }
        let len = queue.lock().expect("shard queue lock").len();
        let better = match victim {
            Some((_, best_len)) => len > best_len,
            None => len > 0,
        };
        if better {
            victim = Some((i, len));
        }
    }
    let (victim, _) = victim?;
    let mut batch: Vec<JobId> = Vec::new();
    {
        let mut queue = shared.queues[victim].lock().expect("shard queue lock");
        let take = queue.len().div_ceil(2);
        for _ in 0..take {
            match queue.pop_back() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
    }
    if batch.is_empty() {
        return None;
    }
    batch.reverse(); // restore the victim's affinity order
    shared.steal_events.fetch_add(1, Ordering::Relaxed);
    shared
        .stolen_jobs
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    let mut queue = shared.queues[me].lock().expect("shard queue lock");
    queue.extend(batch);
    Some(())
}

/// Evaluates one flow against the worker's private trie slice, mirroring the
/// engine's per-request path: seed from the deepest cached prefix, apply the
/// remaining passes, memoize shallow intermediates, map the terminal.
fn evaluate_job(
    engine: &EvalEngine,
    design: &Aig,
    flow: &[Transform],
    trie: &mut FlowTrie,
    pctx: &mut PassContext,
    out: &mut WorkerOut,
) -> Qor {
    let config = engine.engine_config();
    if trie.peek_aig(TRIE_ROOT).is_none() {
        trie.cache_aig(TRIE_ROOT, design.cleanup());
    }
    trie.insert(flow);
    let mut node = TRIE_ROOT;
    let mut best = (TRIE_ROOT, 0usize);
    for (i, &t) in flow.iter().enumerate() {
        node = trie.child(node, t).expect("path inserted above");
        if trie.peek_aig(node).is_some() {
            best = (node, i + 1);
        }
    }
    let (best_node, mut done) = best;
    if done > 0 {
        out.trie_hits += 1;
    }
    let mut g = pctx.take_buf();
    g.copy_from(trie.cached_aig(best_node).expect("root always cached"));
    for &t in &flow[done..] {
        pctx.apply(t, &mut g);
        out.passes_applied += 1;
        done += 1;
        if done <= config.cache_depth {
            let node = trie.insert(&flow[..done]);
            if trie.peek_aig(node).is_none() {
                trie.cache_aig(node, g.clone());
            }
        }
    }
    if config.verify && !random_equivalence_check(design, &g, 8, VERIFY_SEED) {
        panic!(
            "floweval verification failed: flow `{}` changed the function of `{}`",
            crate::engine::flow_script(flow),
            design.name()
        );
    }
    let qor = engine.map_terminal(pctx, &g);
    pctx.recycle(g);
    qor
}

/// Turns sorted completion times into a cumulative trajectory of at most
/// `max_points` samples (always keeping the last).
fn downsample_trajectory(times: &[f64], max_points: usize) -> Vec<TrajectoryPoint> {
    if times.is_empty() {
        return Vec::new();
    }
    let stride = times.len().div_ceil(max_points.max(1));
    let mut points: Vec<TrajectoryPoint> = times
        .iter()
        .enumerate()
        .filter(|(i, _)| (i + 1) % stride == 0)
        .map(|(i, &t_s)| TrajectoryPoint {
            t_s,
            completed: i + 1,
        })
        .collect();
    let last = TrajectoryPoint {
        t_s: times[times.len() - 1],
        completed: times.len(),
    };
    if points.last().map(|p| p.completed) != Some(last.completed) {
        points.push(last);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_source_is_deterministic_and_in_space() {
        let source = FlowSource::Random { seed: 42, count: 8 };
        let a = source.resolve();
        let b = source.resolve();
        assert_eq!(a, b, "equal seeds yield equal lists");
        assert_eq!(a.len(), 8);
        for flow in &a {
            assert_eq!(flow.len(), PAPER_FLOW_LEN);
            for t in Transform::ALL {
                assert_eq!(
                    flow.iter().filter(|&&x| x == t).count(),
                    PAPER_FLOW_LEN / Transform::COUNT,
                    "each transform appears exactly m times"
                );
            }
        }
        let distinct: HashSet<Vec<u8>> = a
            .iter()
            .map(|f| f.iter().map(|t| t.index() as u8).collect())
            .collect();
        assert_eq!(distinct.len(), a.len(), "flows are distinct");
        let other = FlowSource::Random { seed: 43, count: 8 }.resolve();
        assert_ne!(a, other, "different seeds explore differently");
    }

    #[test]
    fn prefix_expansion_counts() {
        use Transform::*;
        let source = FlowSource::PrefixExpansion {
            prefix: vec![Balance],
            depth: 2,
        };
        let flows = source.resolve();
        assert_eq!(flows.len(), 36);
        assert!(flows.iter().all(|f| f.len() == 3 && f[0] == Balance));
        let distinct: HashSet<Vec<u8>> = flows
            .iter()
            .map(|f| f.iter().map(|t| t.index() as u8).collect())
            .collect();
        assert_eq!(distinct.len(), 36);
    }

    #[test]
    fn straggler_selection_is_deterministic_and_bounded() {
        let inj = StragglerInjection {
            seed: 9,
            pct: 25,
            delay_ms: 1,
        };
        let hits: Vec<bool> = (0..400).map(|f| inj.hits(0, f)).collect();
        let again: Vec<bool> = (0..400).map(|f| inj.hits(0, f)).collect();
        assert_eq!(hits, again);
        let count = hits.iter().filter(|&&h| h).count();
        assert!(count > 0 && count < 400, "roughly pct of jobs selected");
        let none = StragglerInjection {
            seed: 9,
            pct: 0,
            delay_ms: 1,
        };
        assert!((0..400).all(|f| !none.hits(0, f)));
    }

    #[test]
    fn shard_affinity_keeps_prefix_groups_together() {
        use Transform::*;
        let flows = vec![
            vec![Balance, Rewrite, Refactor],
            vec![Balance, Rewrite, Restructure],
            vec![Refactor, Balance, Rewrite],
            vec![Refactor, Balance, Restructure],
        ];
        let jobs: Vec<(u32, u32)> = (0..4).map(|f| (0, f)).collect();
        let misses: Vec<JobId> = (0..4).collect();
        let queues = shard_jobs(&misses, &jobs, &flows, 2, 2);
        assert_eq!(queues.len(), 2);
        for queue in &queues {
            let queue = queue.lock().unwrap();
            assert_eq!(queue.len(), 2, "LPT balances the two groups");
            let prefixes: HashSet<Vec<usize>> = queue
                .iter()
                .map(|&j| flows[j as usize][..2].iter().map(|t| t.index()).collect())
                .collect();
            assert_eq!(prefixes.len(), 1, "one shared prefix per shard");
        }
    }

    #[test]
    fn trajectory_downsampling_keeps_the_tail() {
        let times: Vec<f64> = (1..=1000).map(|i| i as f64 / 100.0).collect();
        let points = downsample_trajectory(&times, 120);
        assert!(points.len() <= 121);
        assert_eq!(points.last().unwrap().completed, 1000);
        assert!(points.windows(2).all(|w| w[0].completed < w[1].completed));
        assert!(downsample_trajectory(&[], 120).is_empty());
    }

    #[test]
    fn cost_model_prefers_cached_prefixes() {
        let model = CostModel::seeded(&PassTimings::default());
        use Transform::*;
        let flow = vec![Balance, Rewrite, Refactor, Restructure];
        assert!(model.remaining_ms(&flow, 3) < model.remaining_ms(&flow, 0));
    }
}
