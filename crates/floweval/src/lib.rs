//! # floweval — cache-aware flow-evaluation engine
//!
//! Dataset collection dominates the paper's runtime: labelling 10,000 training
//! flows and evaluating 100,000 sample flows takes 3–4 days on a 2 × 12-core
//! machine (Yu, Xiao, De Micheli — DAC 2018), yet flows drawn from the §2.1
//! search space share long common prefixes whose intermediate AIGs a naive
//! `run_batch` recomputes from scratch for every flow.
//!
//! This crate is the evaluation layer the rest of the workspace goes through:
//!
//! * [`FlowTrie`] — a prefix trie over transform sequences that memoizes
//!   intermediate optimized AIGs under an LRU memory budget, so a batch costs
//!   one pass application per **distinct trie edge** instead of one per flow
//!   step;
//! * [`QorStore`] — a persistent JSON-lines store of evaluation results,
//!   content-addressed by design fingerprint + configuration fingerprint +
//!   flow script, so repeated runs, benches and ablations never re-evaluate a
//!   known flow;
//! * [`EvalEngine`] — the batched scheduler tying both together and fanning
//!   independent subtrees out across worker threads;
//! * [`EvalStats`] — hit/miss/passes-avoided counters surfaced through
//!   `flowgen::FrameworkReport`.
//!
//! Evaluation is **bit-identical** to `synth::FlowRunner`: every pass and the
//! mapper are deterministic, so a memoized prefix yields exactly the AIG the
//! naive evaluator would have recomputed.
//!
//! ## Quick example
//!
//! ```
//! use circuits::{Design, DesignScale};
//! use floweval::{EvalEngine, EngineConfig};
//! use synth::Transform;
//!
//! let design = Design::Alu64.generate(DesignScale::Tiny);
//! let engine = EvalEngine::new(EngineConfig::default());
//! let flows = vec![
//!     vec![Transform::Balance, Transform::Rewrite, Transform::Refactor],
//!     vec![Transform::Balance, Transform::Rewrite, Transform::Restructure],
//! ];
//! let qors = engine.evaluate_batch(&design, &flows);
//! assert_eq!(qors.len(), 2);
//! // The shared `balance; rewrite` prefix was applied once, not twice.
//! assert!(engine.stats().passes_applied < 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod orchestrator;
mod stats;
mod store;
mod trie;

pub use engine::{
    fingerprint_config, fingerprint_design, flow_script, CacheSummary, EngineConfig, EvalEngine,
};
pub use orchestrator::{
    FlowSource, SearchConfig, SearchLabel, SearchOutcome, SearchReport, StragglerInjection,
    TrajectoryPoint, PAPER_FLOW_LEN,
};
pub use stats::EvalStats;
pub use store::{CompactionReport, QorStore, StoreKey, StoreMode, StoreOptions, StoreSummary};
pub use trie::{FlowTrie, TrieNodeId, TRIE_ROOT};
