//! Prefix trie over transform sequences with memoized intermediate AIGs.
//!
//! Flows drawn from the paper's search space are sequences over six
//! transforms; a batch of random flows shares long common prefixes, and the
//! intermediate AIG after a prefix is a pure function of (design, prefix).
//! The trie stores one node per distinct prefix seen so far and optionally
//! caches the prefix's optimized AIG, so evaluating a batch costs one pass
//! application per *distinct trie edge* instead of one per flow step.
//!
//! Cached AIGs are bounded by a memory budget expressed in total AIG nodes and
//! evicted least-recently-used; the root AIG (the cleaned design) is pinned.

use aig::Aig;
use synth::Transform;

/// Index of a node inside a [`FlowTrie`].
pub type TrieNodeId = u32;

/// The root node of every trie (the empty prefix).
pub const TRIE_ROOT: TrieNodeId = 0;

#[derive(Debug)]
struct TrieNode {
    /// Child node per transform, indexed by [`Transform::index`].
    children: [Option<TrieNodeId>; Transform::COUNT],
    /// Prefix length of this node.
    depth: u16,
    /// Memoized optimized AIG for this prefix, if currently cached.
    aig: Option<Aig>,
    /// `aig.len()` at caching time, for budget accounting.
    aig_size: usize,
    /// LRU clock value of the last access to the cached AIG.
    last_used: u64,
}

impl TrieNode {
    fn new(depth: u16) -> Self {
        TrieNode {
            children: [None; Transform::COUNT],
            depth,
            aig: None,
            aig_size: 0,
            last_used: 0,
        }
    }
}

/// A prefix trie over transform sequences for one design.
#[derive(Debug)]
pub struct FlowTrie {
    nodes: Vec<TrieNode>,
    clock: u64,
    cached_aig_nodes: usize,
    budget_aig_nodes: usize,
}

impl FlowTrie {
    /// Creates an empty trie whose cached AIGs may total at most
    /// `budget_aig_nodes` AIG nodes (the root AIG is pinned and not counted).
    pub fn new(budget_aig_nodes: usize) -> Self {
        FlowTrie {
            nodes: vec![TrieNode::new(0)],
            clock: 0,
            cached_aig_nodes: 0,
            budget_aig_nodes,
        }
    }

    /// Number of trie nodes (distinct prefixes, including the empty one).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Total AIG nodes currently cached at non-root trie nodes.
    pub fn cached_aig_nodes(&self) -> usize {
        self.cached_aig_nodes
    }

    /// Number of trie nodes holding a cached AIG.
    pub fn cached_prefixes(&self) -> usize {
        self.nodes.iter().filter(|n| n.aig.is_some()).count()
    }

    /// The prefix length of `node`.
    pub fn depth(&self, node: TrieNodeId) -> usize {
        usize::from(self.nodes[node as usize].depth)
    }

    /// The child of `node` along `transform`, if it exists.
    pub fn child(&self, node: TrieNodeId, transform: Transform) -> Option<TrieNodeId> {
        self.nodes[node as usize].children[transform.index()]
    }

    /// Inserts a flow, creating missing nodes, and returns its terminal node.
    pub fn insert(&mut self, flow: &[Transform]) -> TrieNodeId {
        let mut current = TRIE_ROOT;
        for &t in flow {
            current = match self.child(current, t) {
                Some(child) => child,
                None => {
                    let child = self.nodes.len() as TrieNodeId;
                    let depth = self.nodes[current as usize].depth + 1;
                    self.nodes.push(TrieNode::new(depth));
                    self.nodes[current as usize].children[t.index()] = Some(child);
                    child
                }
            };
        }
        current
    }

    /// The cached AIG at `node`, touching its LRU clock.
    pub fn cached_aig(&mut self, node: TrieNodeId) -> Option<&Aig> {
        self.clock += 1;
        let clock = self.clock;
        let entry = &mut self.nodes[node as usize];
        if entry.aig.is_some() {
            entry.last_used = clock;
        }
        entry.aig.as_ref()
    }

    /// Peeks at the cached AIG without updating LRU state (read-only sharing
    /// across evaluation workers).
    pub fn peek_aig(&self, node: TrieNodeId) -> Option<&Aig> {
        self.nodes[node as usize].aig.as_ref()
    }

    /// Caches `aig` at `node`, evicting least-recently-used entries if the
    /// budget is exceeded.  The root is pinned and never evicted.
    pub fn cache_aig(&mut self, node: TrieNodeId, aig: Aig) {
        if node != TRIE_ROOT {
            // Injected skip: the trie degrades to evaluating from shallower
            // prefixes, never to wrong results.  The root (the cleaned
            // design) is load-bearing and pinned, so it is never skipped.
            flow_core::fail_point!("trie.cache_insert", |_| ());
        }
        let size = aig.len();
        if node != TRIE_ROOT && size > self.budget_aig_nodes {
            return; // one oversized entry would evict everything else
        }
        self.clock += 1;
        let clock = self.clock;
        let entry = &mut self.nodes[node as usize];
        if entry.aig.is_some() && node != TRIE_ROOT {
            self.cached_aig_nodes -= entry.aig_size;
        }
        if node != TRIE_ROOT {
            self.cached_aig_nodes += size;
        }
        entry.aig = Some(aig);
        entry.aig_size = size;
        entry.last_used = clock;
        self.enforce_budget();
    }

    /// Drops cached entries (oldest first) until the budget is respected.
    fn enforce_budget(&mut self) {
        if self.cached_aig_nodes <= self.budget_aig_nodes {
            return;
        }
        let mut candidates: Vec<(u64, TrieNodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, n)| n.aig.is_some())
            .map(|(i, n)| (n.last_used, i as TrieNodeId))
            .collect();
        candidates.sort_unstable();
        for (_, node) in candidates {
            if self.cached_aig_nodes <= self.budget_aig_nodes {
                break;
            }
            let entry = &mut self.nodes[node as usize];
            entry.aig = None;
            self.cached_aig_nodes -= entry.aig_size;
            entry.aig_size = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_aig(ands: usize) -> Aig {
        let mut g = Aig::new();
        let mut prev = g.add_input("a");
        let b = g.add_input("b");
        for _ in 0..ands {
            prev = g.and(prev, b);
            // Structural hashing collapses repeats; vary by negation.
            prev = !prev;
        }
        g.add_output("f", prev);
        g
    }

    #[test]
    fn insert_shares_prefixes() {
        let mut trie = FlowTrie::new(1_000_000);
        use Transform::*;
        let a = trie.insert(&[Balance, Rewrite, Refactor]);
        let b = trie.insert(&[Balance, Rewrite, Restructure]);
        let c = trie.insert(&[Balance, Rewrite, Refactor]);
        assert_eq!(a, c, "identical flows share the terminal");
        assert_ne!(a, b);
        // Root + shared (Balance, Rewrite) + two distinct third steps.
        assert_eq!(trie.len(), 5);
        assert_eq!(trie.depth(a), 3);
        assert!(trie.child(TRIE_ROOT, Balance).is_some());
        assert_eq!(trie.child(TRIE_ROOT, Rewrite), None);
    }

    #[test]
    fn lru_eviction_respects_budget_and_pins_root() {
        let size = toy_aig(3).len();
        let mut trie = FlowTrie::new(2 * size);
        use Transform::*;
        let n1 = trie.insert(&[Balance]);
        let n2 = trie.insert(&[Rewrite]);
        let n3 = trie.insert(&[Refactor]);
        trie.cache_aig(TRIE_ROOT, toy_aig(3));
        trie.cache_aig(n1, toy_aig(3));
        trie.cache_aig(n2, toy_aig(3));
        assert_eq!(trie.cached_prefixes(), 3);
        // Touch n1 so n2 is the LRU entry, then overflow the budget.
        assert!(trie.cached_aig(n1).is_some());
        trie.cache_aig(n3, toy_aig(3));
        assert!(trie.peek_aig(TRIE_ROOT).is_some(), "root is pinned");
        assert!(trie.peek_aig(n2).is_none(), "LRU entry evicted");
        assert!(trie.peek_aig(n1).is_some());
        assert!(trie.peek_aig(n3).is_some());
        assert!(trie.cached_aig_nodes() <= 2 * size);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut trie = FlowTrie::new(1);
        let n = trie.insert(&[Transform::Balance]);
        trie.cache_aig(n, toy_aig(5));
        assert!(trie.peek_aig(n).is_none());
        assert_eq!(trie.cached_aig_nodes(), 0);
    }
}
