//! Evaluation statistics reported by the engine.

use serde::{Deserialize, Serialize};

/// Counters describing how a batch (or a whole run) was evaluated.
///
/// `passes_requested` is what a naive `FlowRunner::run_batch` would apply:
/// the sum of all requested flow lengths.  `passes_applied` is what the
/// engine actually executed after prefix-trie sharing, store hits and cached
/// intermediate AIGs; the difference is pure savings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Flows requested through the engine.
    pub flows_requested: usize,
    /// Flows answered directly from the persistent QoR store.
    pub store_hits: usize,
    /// Flows evaluated through the trie (requested − store hits).
    pub flows_evaluated: usize,
    /// Transform passes a naive evaluator would have applied.
    pub passes_requested: usize,
    /// Transform passes actually applied.
    pub passes_applied: usize,
    /// Trie edges resolved from a memoized intermediate AIG.
    pub trie_hits: usize,
    /// Technology-mapping runs performed.
    pub mappings_run: usize,
    /// QoR-store append/flush failures (the result is still served and kept
    /// in memory; only its on-disk record is lost).
    pub store_write_errors: usize,
    /// Torn final lines healed when the store was opened (benign crash
    /// truncation: at most the in-flight record).
    pub store_torn_tail: usize,
    /// Mid-file corrupt lines (checksum/shape failures) quarantined when the
    /// store was opened.
    pub store_corrupt: usize,
    /// Wall-clock seconds spent inside the engine.
    pub wall_s: f64,
}

impl EvalStats {
    /// Passes saved relative to naive batch evaluation.
    pub fn passes_avoided(&self) -> usize {
        self.passes_requested.saturating_sub(self.passes_applied)
    }

    /// Fraction of requested flows answered from the persistent store.
    pub fn store_hit_rate(&self) -> f64 {
        if self.flows_requested == 0 {
            0.0
        } else {
            self.store_hits as f64 / self.flows_requested as f64
        }
    }

    /// Fraction of requested passes that were never executed.
    pub fn pass_savings_rate(&self) -> f64 {
        if self.passes_requested == 0 {
            0.0
        } else {
            self.passes_avoided() as f64 / self.passes_requested as f64
        }
    }

    /// The difference between this (later) snapshot and an `earlier` one —
    /// the activity that happened in between.
    pub fn since(&self, earlier: &EvalStats) -> EvalStats {
        EvalStats {
            flows_requested: self.flows_requested.saturating_sub(earlier.flows_requested),
            store_hits: self.store_hits.saturating_sub(earlier.store_hits),
            flows_evaluated: self.flows_evaluated.saturating_sub(earlier.flows_evaluated),
            passes_requested: self
                .passes_requested
                .saturating_sub(earlier.passes_requested),
            passes_applied: self.passes_applied.saturating_sub(earlier.passes_applied),
            trie_hits: self.trie_hits.saturating_sub(earlier.trie_hits),
            mappings_run: self.mappings_run.saturating_sub(earlier.mappings_run),
            store_write_errors: self
                .store_write_errors
                .saturating_sub(earlier.store_write_errors),
            store_torn_tail: self.store_torn_tail.saturating_sub(earlier.store_torn_tail),
            store_corrupt: self.store_corrupt.saturating_sub(earlier.store_corrupt),
            wall_s: (self.wall_s - earlier.wall_s).max(0.0),
        }
    }

    /// Accumulates another stats record into this one.
    pub fn absorb(&mut self, other: &EvalStats) {
        self.flows_requested += other.flows_requested;
        self.store_hits += other.store_hits;
        self.flows_evaluated += other.flows_evaluated;
        self.passes_requested += other.passes_requested;
        self.passes_applied += other.passes_applied;
        self.trie_hits += other.trie_hits;
        self.mappings_run += other.mappings_run;
        self.store_write_errors += other.store_write_errors;
        self.store_torn_tail += other.store_torn_tail;
        self.store_corrupt += other.store_corrupt;
        self.wall_s += other.wall_s;
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flows {} (store hits {}, evaluated {})  passes {}/{} applied ({:.0}% saved)  \
             trie hits {}  mappings {}  {:.2}s",
            self.flows_requested,
            self.store_hits,
            self.flows_evaluated,
            self.passes_applied,
            self.passes_requested,
            self.pass_savings_rate() * 100.0,
            self.trie_hits,
            self.mappings_run,
            self.wall_s,
        )?;
        if self.store_write_errors > 0 {
            write!(f, "  store write errors {}", self.store_write_errors)?;
        }
        if self.store_torn_tail > 0 {
            write!(f, "  store torn tail {}", self.store_torn_tail)?;
        }
        if self.store_corrupt > 0 {
            write!(f, "  store corrupt {}", self.store_corrupt)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_absorb() {
        let mut a = EvalStats {
            flows_requested: 10,
            store_hits: 4,
            flows_evaluated: 6,
            passes_requested: 100,
            passes_applied: 25,
            trie_hits: 5,
            mappings_run: 6,
            store_write_errors: 2,
            store_torn_tail: 1,
            store_corrupt: 1,
            wall_s: 1.0,
        };
        assert_eq!(a.passes_avoided(), 75);
        assert!((a.store_hit_rate() - 0.4).abs() < 1e-12);
        assert!((a.pass_savings_rate() - 0.75).abs() < 1e-12);
        let b = a;
        a.absorb(&b);
        assert_eq!(a.flows_requested, 20);
        assert_eq!(a.passes_applied, 50);
        assert_eq!(a.store_write_errors, 4);
        assert_eq!(a.since(&b).store_write_errors, 2);
        assert_eq!(a.store_torn_tail, 2);
        assert_eq!(a.store_corrupt, 2);
        assert_eq!(a.since(&b).store_corrupt, 1);
        assert!(a.to_string().contains("store write errors 4"));
        assert!(a.to_string().contains("store torn tail 2"));
        assert!(a.to_string().contains("store corrupt 2"));
        assert_eq!(EvalStats::default().store_hit_rate(), 0.0);
        assert_eq!(EvalStats::default().pass_savings_rate(), 0.0);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = EvalStats {
            flows_requested: 3,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("flows 3"));
        assert!(text.contains("passes"));
    }
}
