//! Subprocess crash-consistency harness for the durable QoR store.
//!
//! Each scenario re-executes this test binary as a child (filtered down to
//! [`crash_child`]) that appends records to a store, fsync-acks each one into
//! a sidecar ack file, and then dies for real: `SIGKILL` from the parent at
//! an arbitrary moment, or `std::process::abort()` scheduled by a failpoint
//! mid-append, mid-rotation or mid-compaction.  The parent then reopens the
//! store and checks the durability contract:
//!
//! * `QorStore::open` never fails, whatever the crash left behind;
//! * every fsync-acked record is present, bit-identical;
//! * at most the single in-flight record is lost (as a quarantined torn
//!   tail, never as silent corruption).
//!
//! `FLOWD_CRASH_ITERS` caps the SIGKILL repetitions (CI trims it).

#![cfg(feature = "failpoints")]

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use flow_core::{fail, Fingerprint};
use floweval::{QorStore, StoreKey, StoreOptions};
use synth::Qor;

/// Deterministic record for id `i`; parent and child must agree exactly.
fn record(i: u64) -> (StoreKey, Qor) {
    let key = StoreKey {
        design: Fingerprint(0x1000 + i),
        config: Fingerprint(0xC0DE),
        flow: format!("balance; rewrite; crash-{i}"),
    };
    let qor = Qor {
        area_um2: 100.25 + i as f64,
        delay_ps: 500.5 + i as f64 * 3.0,
        gates: 10 + i as usize,
        and_nodes: 20 + i as usize,
        depth: 3 + (i % 7) as u32,
    };
    (key, qor)
}

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("floweval-crash-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns this test binary re-filtered to [`crash_child`] with the scenario
/// described by environment variables.
fn spawn_child(mode: &str, store: &Path, ack: &Path, records: u64, segment_bytes: u64) -> Child {
    Command::new(std::env::current_exe().expect("test binary path"))
        .args(["crash_child", "--exact", "--nocapture", "--test-threads=1"])
        .env("CRASH_ROLE", mode)
        .env("CRASH_STORE", store)
        .env("CRASH_ACK", ack)
        .env("CRASH_RECORDS", records.to_string())
        .env("CRASH_SEGMENT_BYTES", segment_bytes.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash child")
}

/// Reads the ack sidecar: one acked record id per line.
fn acked_ids(ack: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(ack) else {
        return Vec::new();
    };
    text.lines().filter_map(|l| l.trim().parse().ok()).collect()
}

/// The post-crash contract: open succeeds, every acked record is present and
/// bit-identical, and nothing beyond the in-flight tail went missing.
fn verify_recovery(store_path: &Path, ack: &Path, scenario: &str) -> QorStore {
    let store = QorStore::open(store_path)
        .unwrap_or_else(|e| panic!("{scenario}: reopen after crash failed: {e}"));
    let acked = acked_ids(ack);
    for id in &acked {
        let (key, qor) = record(*id);
        assert_eq!(
            store.get(&key),
            Some(qor),
            "{scenario}: fsync-acked record {id} lost or altered \
             ({} acked, {} recovered)",
            acked.len(),
            store.len()
        );
    }
    assert!(
        store.len() >= acked.len(),
        "{scenario}: recovered fewer records ({}) than were acked ({})",
        store.len(),
        acked.len()
    );
    // At most the single in-flight append may be damaged, and only as a
    // quarantined torn tail -- mid-file corruption would mean fsynced bytes
    // changed underneath us, which no crash can cause.
    assert!(
        store.torn_tail_records() <= 1,
        "{scenario}: more than one torn record ({})",
        store.torn_tail_records()
    );
    assert_eq!(
        store.corrupt_records(),
        0,
        "{scenario}: crash produced mid-file corruption"
    );
    store
}

/// Child role: appends records, acking each one after its fsync, then dies
/// the way `CRASH_ROLE` prescribes.  A no-op under a normal `cargo test`
/// run (no `CRASH_ROLE` in the environment).
#[test]
fn crash_child() {
    let Ok(mode) = std::env::var("CRASH_ROLE") else {
        return;
    };
    let store_path = PathBuf::from(std::env::var("CRASH_STORE").unwrap());
    let ack_path = PathBuf::from(std::env::var("CRASH_ACK").unwrap());
    let records: u64 = std::env::var("CRASH_RECORDS").unwrap().parse().unwrap();
    let segment_bytes: u64 = std::env::var("CRASH_SEGMENT_BYTES")
        .unwrap()
        .parse()
        .unwrap();
    let options = StoreOptions {
        segment_max_bytes: segment_bytes,
        ..StoreOptions::default()
    };
    let mut store = QorStore::open_with(&store_path, options).expect("child open");
    let mut ack = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&ack_path)
        .expect("child ack file");

    let mut append_acked = |store: &mut QorStore, i: u64| {
        let (key, qor) = record(i);
        store.insert(key, qor).expect("child append");
        store.flush().expect("child fsync");
        writeln!(ack, "{i}").expect("child ack");
        ack.flush().expect("child ack flush");
    };

    match mode.as_str() {
        // Append forever; the parent SIGKILLs at an arbitrary moment.
        "kill" => {
            let mut i = 0u64;
            loop {
                append_acked(&mut store, i);
                i += 1;
            }
        }
        // `records` acked appends, then one append torn mid-write + abort.
        "torn" => {
            for i in 0..records {
                append_acked(&mut store, i);
            }
            fail::cfg("store.write.torn", "return").unwrap();
            let (key, qor) = record(records);
            let _ = store.insert(key, qor); // aborts inside
            unreachable!("torn failpoint must abort the process");
        }
        // Abort at the rotation publish step (new segment exists, manifest
        // still lists the old ones).
        "rotate" => {
            fail::cfg("store.rotate.publish", "1*abort").unwrap();
            for i in 0..records {
                append_acked(&mut store, i);
            }
            unreachable!("rotation must have aborted within {records} appends");
        }
        // Abort at the compaction publish step, after all records are acked.
        "compact" => {
            for i in 0..records {
                append_acked(&mut store, i);
            }
            fail::cfg("store.compact.publish", "1*abort").unwrap();
            let _ = store.compact(); // aborts inside
            unreachable!("compaction failpoint must abort the process");
        }
        other => panic!("unknown CRASH_ROLE `{other}`"),
    }
}

#[test]
fn sigkill_mid_append_never_loses_acked_records() {
    let iters: u32 = std::env::var("FLOWD_CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    for iter in 0..iters {
        let dir = temp_dir(&format!("sigkill-{iter}"));
        let store_path = dir.join("qor.jsonl");
        let ack_path = dir.join("acked");
        // Tiny segments so the kill window also covers rotations.
        let mut child = spawn_child("kill", &store_path, &ack_path, 0, 2_048);
        // Vary the kill moment across iterations to move it around the
        // append/fsync/rotate cycle.
        std::thread::sleep(Duration::from_millis(40 + u64::from(iter) * 17));
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");
        let acked = acked_ids(&ack_path);
        assert!(
            !acked.is_empty(),
            "iteration {iter}: child died before acking anything; \
             raise the kill delay"
        );
        verify_recovery(&store_path, &ack_path, &format!("sigkill iter {iter}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_write_loses_only_the_inflight_record() {
    let dir = temp_dir("torn");
    let store_path = dir.join("qor.jsonl");
    let ack_path = dir.join("acked");
    let records = 12u64;
    let mut child = spawn_child("torn", &store_path, &ack_path, records, 1 << 20);
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "child must die by abort");
    assert_eq!(acked_ids(&ack_path).len() as u64, records);
    let store = verify_recovery(&store_path, &ack_path, "torn write");
    assert_eq!(
        store.len() as u64,
        records,
        "the torn in-flight record must not resurrect"
    );
    assert_eq!(store.torn_tail_records(), 1, "torn tail must be detected");
    assert_eq!(store.quarantined_records(), 1, "torn bytes are quarantined");
    // The scrub healed the tail: a second open is clean.
    drop(store);
    let clean = QorStore::open(&store_path).expect("reopen healed store");
    assert_eq!(clean.torn_tail_records(), 0);
    assert_eq!(clean.len() as u64, records);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_during_rotation_preserves_acked_records() {
    let dir = temp_dir("rotate");
    let store_path = dir.join("qor.jsonl");
    let ack_path = dir.join("acked");
    // Small segments force a rotation within the first few appends.
    let mut child = spawn_child("rotate", &store_path, &ack_path, 64, 512);
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "child must die by abort");
    let acked = acked_ids(&ack_path);
    assert!(!acked.is_empty(), "child must ack before the rotation");
    verify_recovery(&store_path, &ack_path, "rotation crash");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_during_compaction_preserves_acked_records() {
    let dir = temp_dir("compact");
    let store_path = dir.join("qor.jsonl");
    let ack_path = dir.join("acked");
    let records = 40u64;
    // Several segments so compaction has real work to collapse.
    let mut child = spawn_child("compact", &store_path, &ack_path, records, 1_024);
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "child must die by abort");
    assert_eq!(acked_ids(&ack_path).len() as u64, records);
    let store = verify_recovery(&store_path, &ack_path, "compaction crash");
    assert_eq!(
        store.len() as u64,
        records,
        "compaction crash must leave the full pre-compaction store"
    );
    // The interrupted compaction left the store fully operational: it can
    // be compacted again and still serves everything.
    drop(store);
    let mut store = QorStore::open(&store_path).expect("reopen");
    store.compact().expect("re-run compaction after crash");
    assert_eq!(store.len() as u64, records);
    for i in 0..records {
        let (key, qor) = record(i);
        assert_eq!(store.get(&key), Some(qor));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
