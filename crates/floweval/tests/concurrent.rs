//! Multi-threaded integration tests: many threads hammering one shared
//! engine — the sharded prefix-trie cache and the persistent QoR store —
//! must produce bit-identical results to a single-threaded reference run,
//! and a store written under contention must not lose a single record.

use std::sync::Arc;

use circuits::{Design, DesignScale};
use floweval::{EngineConfig, EvalEngine};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use synth::{PassContext, Qor, Transform};

/// Samples `count` distinct shuffled 1-repetition flows over the full
/// transform set (6 steps each).
fn random_flows(count: usize, seed: u64) -> Vec<Vec<Transform>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut flows = Vec::with_capacity(count);
    while flows.len() < count {
        let mut flow: Vec<Transform> = Transform::ALL.to_vec();
        flow.shuffle(&mut rng);
        if seen.insert(flow.clone()) {
            flows.push(flow);
        }
    }
    flows
}

fn contended_config(store: Option<std::path::PathBuf>) -> EngineConfig {
    EngineConfig {
        store_path: store,
        // Few shards and a tiny residency cap: force both shard-lock
        // contention and mid-flight trie eviction, the two races worth having.
        trie_shards: 4,
        max_resident_designs: 2,
        ..EngineConfig::default()
    }
}

#[test]
fn hammered_engine_is_bit_identical_to_single_threaded_reference() {
    let designs: Vec<aig::Aig> = [Design::Alu64, Design::Montgomery64]
        .iter()
        .map(|d| d.generate(DesignScale::Tiny))
        .collect();
    let flows = random_flows(6, 0xC0C0);

    // Single-threaded reference, fresh engine per design: the ground truth.
    let mut expected: Vec<Vec<Qor>> = Vec::new();
    for design in &designs {
        let reference = EvalEngine::new(EngineConfig::default());
        expected.push(reference.evaluate_batch(design, &flows));
    }

    let engine = Arc::new(EvalEngine::new(contended_config(None)));
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..6 {
            let engine = Arc::clone(&engine);
            let designs = &designs;
            let flows = &flows;
            handles.push(scope.spawn(move || {
                // Even workers batch, odd workers walk flow-by-flow through
                // the service path; both interleave across all designs.
                let mut got: Vec<(usize, Vec<Qor>)> = Vec::new();
                for (d, design) in designs.iter().enumerate() {
                    let qors = if worker % 2 == 0 {
                        engine.evaluate_batch(design, flows)
                    } else {
                        let mut pctx = PassContext::default();
                        flows
                            .iter()
                            .map(|flow| engine.evaluate_flow_with_ctx(design, flow, &mut pctx))
                            .collect()
                    };
                    got.push((d, qors));
                }
                got
            }));
        }
        for handle in handles {
            for (d, qors) in handle.join().expect("worker thread panicked") {
                assert_eq!(
                    qors, expected[d],
                    "concurrent results diverged from reference on design {d}"
                );
            }
        }
    });

    let stats = engine.stats();
    assert_eq!(
        stats.flows_requested,
        6 * designs.len() * flows.len(),
        "every request must be accounted for"
    );
    // The residency cap held even while tries were checked in and out.
    assert!(engine.cache_summary().resident_designs <= 4 * 2);
}

#[test]
fn contended_store_writes_are_never_lost() {
    let dir = std::env::temp_dir().join(format!("floweval-concurrent-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let store_path = dir.join("qor.jsonl");
    let _ = std::fs::remove_file(&store_path);

    let designs: Vec<aig::Aig> = [Design::Alu64, Design::Aes128]
        .iter()
        .map(|d| d.generate(DesignScale::Tiny))
        .collect();
    let flows = random_flows(6, 0xD0D0);

    {
        let engine = Arc::new(EvalEngine::new(contended_config(Some(store_path.clone()))));
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let engine = Arc::clone(&engine);
                let designs = &designs;
                let flows = &flows;
                scope.spawn(move || {
                    let mut pctx = PassContext::default();
                    // Each worker walks the flows in a rotated order so
                    // store inserts for the same record race across threads.
                    for (d, design) in designs.iter().enumerate() {
                        for i in 0..flows.len() {
                            let flow = &flows[(i + worker + d) % flows.len()];
                            engine.evaluate_flow_with_ctx(design, flow, &mut pctx);
                        }
                    }
                });
            }
        });
        engine.flush_store().expect("flush");
    }

    // Reopen the store cold: every (design, flow) record must be present and
    // answer without a single pass being applied.
    let engine = EvalEngine::new(contended_config(Some(store_path.clone())));
    assert_eq!(
        engine.store_len(),
        designs.len() * flows.len(),
        "records lost or duplicated under write contention"
    );
    for design in &designs {
        engine.evaluate_batch(design, &flows);
    }
    let stats = engine.stats();
    assert_eq!(
        stats.store_hits,
        designs.len() * flows.len(),
        "warm store must answer every flow"
    );
    assert_eq!(stats.passes_applied, 0, "no re-evaluation on a warm store");

    std::fs::remove_dir_all(&dir).ok();
}
