//! Legacy-store migration: the checked-in pre-checksum plain-JSONL fixture
//! (`fixtures/store/legacy_qor.jsonl`, real engine results) must keep
//! working forever.  The current store has to read it transparently, serve
//! its QoR values bit-identically to a fresh evaluation, and upgrade it to
//! the checksummed segmented format on its first compaction — without
//! changing a single value.

use std::path::{Path, PathBuf};

use circuits::{Design, DesignScale};
use floweval::{EngineConfig, EvalEngine, QorStore};
use synth::{Qor, Transform};

/// The (design, flow) pairs the fixture holds, in file order.
const FIXTURE_ENTRIES: [(Design, &str); 5] = [
    (
        Design::Alu64,
        "balance; rewrite; refactor; balance; rewrite -z; refactor -z",
    ),
    (
        Design::Alu64,
        "balance; rewrite; refactor; balance; rewrite; rewrite -z; balance; refactor -z; \
         rewrite -z; balance",
    ),
    (Design::Alu64, "balance; rewrite; refactor"),
    (
        Design::Montgomery64,
        "balance; rewrite; refactor; balance; rewrite -z; refactor -z",
    ),
    (
        Design::Alu64,
        "refactor; refactor; refactor; rewrite; balance; rewrite -z; balance; restructure; \
         refactor -z; rewrite -z; rewrite; restructure; balance; rewrite; refactor -z; \
         balance; restructure; restructure; rewrite -z; refactor; refactor -z; rewrite; \
         refactor -z; rewrite -z",
    ),
];

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/store/legacy_qor.jsonl")
}

/// Copies the fixture into a scratch dir (tests mutate the store on disk).
fn fixture_copy(label: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("floweval-legacy-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("qor.jsonl");
    std::fs::copy(fixture(), &path).expect("copy legacy fixture");
    (dir, path)
}

/// Parses an ABC-style flow script back into the transform sequence.
fn parse_flow(script: &str) -> Vec<Transform> {
    script
        .split(';')
        .map(str::trim)
        .map(|cmd| {
            Transform::ALL
                .into_iter()
                .find(|t| t.command() == cmd)
                .unwrap_or_else(|| panic!("unknown transform `{cmd}` in fixture flow"))
        })
        .collect()
}

/// Evaluates every fixture flow through `engine`, returning the QoR values
/// in fixture order.
fn evaluate_fixture_flows(engine: &EvalEngine) -> Vec<Qor> {
    FIXTURE_ENTRIES
        .iter()
        .map(|(design, script)| {
            let aig = design.generate(DesignScale::Tiny);
            engine.evaluate_batch(&aig, &[parse_flow(script)])[0]
        })
        .collect()
}

fn store_engine(path: &Path) -> EvalEngine {
    EvalEngine::new(EngineConfig {
        store_path: Some(path.to_path_buf()),
        ..EngineConfig::default()
    })
}

#[test]
fn legacy_fixture_loads_cleanly() {
    let (dir, path) = fixture_copy("load");
    let store = QorStore::open(&path).expect("open legacy fixture");
    assert_eq!(store.len(), FIXTURE_ENTRIES.len());
    assert!(!store.is_segmented(), "a bare JSONL file is a legacy store");
    assert_eq!(store.segment_count(), 0);
    assert_eq!(store.torn_tail_records(), 0);
    assert_eq!(store.corrupt_records(), 0);
    assert_eq!(store.quarantined_records(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_fixture_serves_bit_identical_qor() {
    let (dir, path) = fixture_copy("serve");
    // Every flow must come out of the store (fingerprints are stable across
    // the format change) and match a from-scratch evaluation bit for bit.
    let engine = store_engine(&path);
    let served = evaluate_fixture_flows(&engine);
    assert_eq!(
        engine.stats().store_hits,
        FIXTURE_ENTRIES.len(),
        "every fixture flow must be answered from the legacy store"
    );
    let fresh = evaluate_fixture_flows(&EvalEngine::default());
    assert_eq!(
        served, fresh,
        "legacy store answers diverged from a fresh evaluation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn first_compaction_upgrades_legacy_without_changing_answers() {
    let (dir, path) = fixture_copy("upgrade");
    let mut store = QorStore::open(&path).expect("open legacy fixture");
    let report = store.compact().expect("compact legacy store");
    assert_eq!(report.records, FIXTURE_ENTRIES.len());
    assert!(store.is_segmented(), "compaction upgrades the layout");
    drop(store);

    // The plain file is gone, replaced by manifest + checksummed segment.
    assert!(!path.exists(), "legacy base file is retired by the upgrade");
    assert!(
        dir.join("qor.jsonl.manifest").exists(),
        "upgrade writes a manifest"
    );
    let segment = dir.join("qor.jsonl.000001.seg");
    assert!(segment.exists(), "upgrade produces segment 1");
    let body = std::fs::read_to_string(&segment).unwrap();
    assert!(
        body.lines().all(|l| l.starts_with("v2 ")),
        "upgraded records are checksum-framed"
    );

    // Same answers, now from the upgraded store.
    let engine = store_engine(&path);
    let served = evaluate_fixture_flows(&engine);
    assert_eq!(engine.stats().store_hits, FIXTURE_ENTRIES.len());
    assert_eq!(served, evaluate_fixture_flows(&EvalEngine::default()));
    let _ = std::fs::remove_dir_all(&dir);
}
