//! Orchestrator determinism tests: `EvalEngine::search` must produce the
//! same label set with bit-identical QoR as a single-process
//! `evaluate_batch` over the resolved flow list, for every worker count and
//! under steal-forcing straggler injection.

use circuits::{Design, DesignScale};
use floweval::{EngineConfig, EvalEngine, FlowSource, SearchConfig, StragglerInjection};
use synth::{Qor, Transform};

fn designs() -> Vec<aig::Aig> {
    vec![
        Design::Alu64.generate(DesignScale::Tiny),
        Design::Montgomery64.generate(DesignScale::Tiny),
        Design::Aes128.generate(DesignScale::Tiny),
    ]
}

fn qor_bits(q: &Qor) -> (u64, u64, usize, usize, u32) {
    (
        q.area_um2.to_bits(),
        q.delay_ps.to_bits(),
        q.gates,
        q.and_nodes,
        q.depth,
    )
}

/// Reference labels: one fresh engine, per-design `evaluate_batch`.
fn reference_labels(designs: &[aig::Aig], flows: &[Vec<Transform>]) -> Vec<Vec<Qor>> {
    let engine = EvalEngine::new(EngineConfig::default());
    designs
        .iter()
        .map(|d| engine.evaluate_batch(d, flows))
        .collect()
}

fn assert_search_matches(
    designs: &[aig::Aig],
    flows: &[Vec<Transform>],
    reference: &[Vec<Qor>],
    config: &SearchConfig,
) {
    let engine = EvalEngine::new(EngineConfig::default());
    let outcome = engine.search_flows(designs, flows, config);
    assert_eq!(
        outcome.labels.len(),
        designs.len() * flows.len(),
        "complete label set"
    );
    for (i, label) in outcome.labels.iter().enumerate() {
        let (d, f) = (i / flows.len(), i % flows.len());
        assert_eq!((label.design, label.flow), (d, f), "canonical label order");
        assert_eq!(
            qor_bits(&label.qor),
            qor_bits(&reference[d][f]),
            "workers={} design={d} flow={f}: QoR bits diverge",
            config.workers
        );
    }
}

#[test]
fn search_is_bit_identical_across_worker_counts() {
    let designs = designs();
    let source = FlowSource::Random {
        seed: 0xD5,
        count: 12,
    };
    let flows = source.resolve();
    let reference = reference_labels(&designs, &flows);
    for workers in [1, 2, 4, 8] {
        let config = SearchConfig {
            workers,
            ..SearchConfig::default()
        };
        assert_search_matches(&designs, &flows, &reference, &config);
    }
}

#[test]
fn search_is_bit_identical_under_forced_stealing() {
    // All flows share the same 2-transform prefix, so sharding by prefix
    // affinity places every job on ONE worker's queue: the other three
    // workers structurally must steal.  Straggler injection additionally
    // perturbs the steal schedule.  Results must not change.
    let designs = vec![Design::Alu64.generate(DesignScale::Tiny)];
    let source = FlowSource::PrefixExpansion {
        prefix: vec![Transform::Balance, Transform::Rewrite],
        depth: 2,
    };
    let flows = source.resolve();
    let reference = reference_labels(&designs, &flows);
    let config = SearchConfig {
        workers: 4,
        straggler: Some(StragglerInjection {
            seed: 7,
            pct: 25,
            delay_ms: 25,
        }),
        ..SearchConfig::default()
    };
    let engine = EvalEngine::new(EngineConfig::default());
    let outcome = engine.search_flows(&designs, &flows, &config);
    assert!(
        outcome.report.steals > 0,
        "straggler injection must force at least one steal (got {})",
        outcome.report.steals
    );
    for (i, label) in outcome.labels.iter().enumerate() {
        let (d, f) = (i / flows.len(), i % flows.len());
        assert_eq!(
            qor_bits(&label.qor),
            qor_bits(&reference[d][f]),
            "steal schedule changed QoR at design={d} flow={f}"
        );
    }
}

#[test]
fn search_serves_repeats_from_the_store() {
    let designs = designs();
    let flows = FlowSource::Random { seed: 3, count: 6 }.resolve();
    let engine = EvalEngine::new(EngineConfig::default());
    let first = engine.search_flows(&designs, &flows, &SearchConfig::default());
    assert_eq!(first.report.store_hits, 0);
    assert_eq!(first.report.evaluated, designs.len() * flows.len());
    let second = engine.search_flows(&designs, &flows, &SearchConfig::default());
    assert_eq!(second.report.evaluated, 0, "all jobs answered by the store");
    assert_eq!(second.report.store_hits, designs.len() * flows.len());
    assert!(second.labels.iter().all(|l| l.from_store));
    for (a, b) in first.labels.iter().zip(&second.labels) {
        assert_eq!(qor_bits(&a.qor), qor_bits(&b.qor));
    }
}

#[test]
fn search_respects_the_eval_budget() {
    let designs = designs();
    let flows = FlowSource::Random { seed: 11, count: 8 }.resolve();
    let engine = EvalEngine::new(EngineConfig::default());
    let config = SearchConfig {
        workers: 2,
        max_evals: Some(5),
        ..SearchConfig::default()
    };
    let outcome = engine.search_flows(&designs, &flows, &config);
    assert!(outcome.report.eval_budget_hit);
    assert!(outcome.report.evaluated >= 5, "budget reached before stop");
    assert!(
        outcome.report.evaluated < designs.len() * flows.len(),
        "stopped early"
    );
    // The labels that were produced are still bit-identical to reference.
    let reference = reference_labels(&designs, &flows);
    for label in &outcome.labels {
        assert_eq!(
            qor_bits(&label.qor),
            qor_bits(&reference[label.design][label.flow])
        );
    }
}

#[test]
fn search_with_verification_passes() {
    let designs = vec![Design::Alu64.generate(DesignScale::Tiny)];
    let flows = FlowSource::Random { seed: 21, count: 4 }.resolve();
    let engine = EvalEngine::new(EngineConfig {
        verify: true,
        ..EngineConfig::default()
    });
    let outcome = engine.search_flows(&designs, &flows, &SearchConfig::default());
    assert_eq!(outcome.report.evaluated, 4);
}

#[test]
fn search_reports_prefix_reuse() {
    // A prefix expansion shares its prefix maximally: the orchestrator must
    // apply far fewer passes than requested.
    let designs = vec![Design::Alu64.generate(DesignScale::Tiny)];
    let source = FlowSource::PrefixExpansion {
        prefix: vec![Transform::Balance, Transform::Rewrite],
        depth: 2,
    };
    let flows = source.resolve();
    assert_eq!(flows.len(), 36);
    let engine = EvalEngine::new(EngineConfig::default());
    let config = SearchConfig {
        workers: 2,
        ..SearchConfig::default()
    };
    let outcome = engine.search_flows(&designs, &flows, &config);
    assert_eq!(outcome.report.evaluated, 36);
    assert!(
        outcome.report.passes_applied < outcome.report.passes_requested,
        "prefix reuse must avoid passes: applied {} of {}",
        outcome.report.passes_applied,
        outcome.report.passes_requested
    );
    assert!(outcome.report.trie_hits > 0);
    // And it is still bit-identical to the batch engine.
    let reference = reference_labels(&designs, &flows);
    for label in &outcome.labels {
        assert_eq!(
            qor_bits(&label.qor),
            qor_bits(&reference[label.design][label.flow])
        );
    }
}
