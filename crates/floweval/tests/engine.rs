//! Engine-level integration tests: cached and uncached evaluation must be
//! bit-identical, repeated batches must hit the caches, and prefix-trie
//! evaluation must apply strictly fewer passes than naive `run_batch`.

use circuits::{Design, DesignScale};
use floweval::{EngineConfig, EvalEngine};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use synth::{FlowRunner, Qor, Transform};

/// Builds a compact but non-trivial design (a few hundred AND nodes) so the
/// heavy cache tests measure engine behaviour, not pass runtime.
fn small_design() -> aig::Aig {
    let mut g = aig::Aig::with_name("small_mix");
    let inputs: Vec<aig::Lit> = (0..12).map(|i| g.add_input(format!("x{i}"))).collect();
    let mut layer = inputs.clone();
    let mut state = 0x2468_ACE0_1357_9BDFu64;
    for _ in 0..6 {
        let mut next = Vec::with_capacity(layer.len());
        for w in 0..layer.len() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = layer[w];
            let b = layer[(w + 1 + (state >> 32) as usize % (layer.len() - 1)) % layer.len()];
            let c = inputs[(state >> 8) as usize % inputs.len()];
            next.push(match state % 4 {
                0 => g.xor(a, b),
                1 => g.mux(c, a, b),
                2 => g.and(a, !b),
                _ => {
                    let ab = g.and(a, b);
                    g.or(ab, c)
                }
            });
        }
        layer = next;
    }
    g.add_outputs("y", &layer[..8]);
    g
}

/// Samples `count` distinct random m-repetition flows (n = 6, m = `reps`),
/// mirroring the paper's search space without depending on `flowgen`.
fn random_flows(count: usize, reps: usize, seed: u64) -> Vec<Vec<Transform>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut flows = Vec::with_capacity(count);
    while flows.len() < count {
        let mut flow: Vec<Transform> = Transform::ALL
            .iter()
            .flat_map(|&t| std::iter::repeat_n(t, reps))
            .collect();
        flow.shuffle(&mut rng);
        if seen.insert(flow.clone()) {
            flows.push(flow);
        }
    }
    flows
}

#[test]
fn engine_matches_flow_runner_bit_for_bit() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let runner = FlowRunner::new();
    let engine = EvalEngine::default();
    let flows = random_flows(12, 1, 0xBEEF);
    let naive: Vec<Qor> = runner.run_batch(&design, &flows);
    let cached: Vec<Qor> = engine.evaluate_batch(&design, &flows);
    assert_eq!(naive.len(), cached.len());
    for (i, (a, b)) in naive.iter().zip(&cached).enumerate() {
        assert_eq!(
            a, b,
            "flow {i} diverged between naive and engine evaluation"
        );
    }
}

#[test]
fn second_pass_is_at_least_90_percent_cache_hits() {
    let design = small_design();
    let engine = EvalEngine::default();
    let flows = random_flows(25, 1, 0xCAFE);

    let first = engine.evaluate_batch(&design, &flows);
    let after_first = engine.stats();
    assert_eq!(after_first.store_hits, 0, "fresh engine cannot hit");

    let second = engine.evaluate_batch(&design, &flows);
    assert_eq!(first, second, "identical QoR vectors across passes");

    let delta_hits = engine.stats().store_hits - after_first.store_hits;
    let hit_rate = delta_hits as f64 / flows.len() as f64;
    assert!(hit_rate >= 0.9, "second pass hit rate {hit_rate} < 0.9");
    assert_eq!(
        engine.stats().passes_applied,
        after_first.passes_applied,
        "second pass must apply zero passes"
    );
}

#[test]
fn trie_applies_strictly_fewer_passes_than_naive_on_200_flows() {
    let design = small_design();
    let engine = EvalEngine::default();
    // m-repetition flows over the full transform set: 6 × 2 = 12 steps each.
    let flows = random_flows(200, 2, 0xF10);
    let naive_passes: usize = flows.iter().map(Vec::len).sum();
    assert_eq!(naive_passes, 200 * 12);

    let qors = engine.evaluate_batch(&design, &flows);
    assert_eq!(qors.len(), 200);
    let stats = engine.stats();
    assert_eq!(stats.passes_requested, naive_passes);
    assert!(
        stats.passes_applied < naive_passes,
        "trie evaluation applied {} passes, naive would apply {naive_passes}",
        stats.passes_applied
    );
    assert_eq!(stats.passes_avoided(), naive_passes - stats.passes_applied);
}

#[test]
fn persistent_store_survives_engine_restarts() {
    let dir = std::env::temp_dir().join(format!("floweval-engine-{}", std::process::id()));
    let store_path = dir.join("qor.jsonl");
    let _ = std::fs::remove_file(&store_path);
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let flows = random_flows(8, 1, 0xD15C);

    let config = EngineConfig {
        store_path: Some(store_path),
        ..EngineConfig::default()
    };
    let first = {
        let engine = EvalEngine::new(config.clone());
        engine.evaluate_batch(&design, &flows)
    };
    let engine = EvalEngine::new(config);
    let second = engine.evaluate_batch(&design, &flows);
    assert_eq!(
        first, second,
        "restarted engine reproduces results from disk"
    );
    let stats = engine.stats();
    assert_eq!(
        stats.store_hits,
        flows.len(),
        "all answered from the persistent store"
    );
    assert_eq!(stats.passes_applied, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_budget_keeps_results_correct() {
    let design = small_design();
    // A budget too small to cache anything beyond the root still evaluates
    // correctly — it only loses speed.
    let tight = EvalEngine::new(EngineConfig {
        cache_budget_aig_nodes: 1,
        ..EngineConfig::default()
    });
    let roomy = EvalEngine::default();
    let flows = random_flows(20, 1, 0xB0B);
    assert_eq!(
        tight.evaluate_batch(&design, &flows),
        roomy.evaluate_batch(&design, &flows)
    );
}

#[test]
fn verification_mode_is_carried_over_from_runner() {
    let design = small_design();
    let runner = FlowRunner::new().with_verification(true);
    let engine = EvalEngine::from_runner(&runner, EngineConfig::default());
    let flows = random_flows(6, 1, 0xFACE);
    // Correct passes must verify cleanly (a failure panics) and still give
    // bit-identical QoR to an unverified engine.
    let verified = engine.evaluate_batch(&design, &flows);
    let plain = EvalEngine::default().evaluate_batch(&design, &flows);
    assert_eq!(verified, plain);
}

#[test]
fn duplicate_and_empty_flows_are_handled() {
    let design = small_design();
    let engine = EvalEngine::default();
    let runner = FlowRunner::new();
    let flows = vec![
        vec![],
        vec![Transform::Balance],
        vec![],
        vec![Transform::Balance],
    ];
    let qors = engine.evaluate_batch(&design, &flows);
    assert_eq!(qors[0], qors[2]);
    assert_eq!(qors[1], qors[3]);
    assert_eq!(qors[0], runner.run(&design, &[]).qor);
    assert_eq!(qors[1], runner.run(&design, &[Transform::Balance]).qor);
}
