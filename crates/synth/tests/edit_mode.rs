//! Differential tests for the [`EditMode`] axis of the two-path pattern:
//! `EditMode::InPlace` (incremental editing of the resident graph) must be
//! node-for-node identical to `EditMode::Rebuild` (the PR 5 ping-pong path)
//! and to the Reference free functions, and the dirty-fraction crossover must
//! route sweeps to the path the heuristic picked.

use aig::Aig;
use circuits::{Design, DesignScale};
use synth::{apply_sequence_with_engine, CutEngine, EditMode, PassContext, Transform};

/// Node-for-node structural identity: ids, kinds, levels, interface, names.
fn assert_identical(reference: &Aig, other: &Aig, what: &str) {
    assert_eq!(reference.len(), other.len(), "{what}: node count");
    for id in 0..reference.len() {
        assert_eq!(
            reference.node(id).kind(),
            other.node(id).kind(),
            "{what}: node {id} kind"
        );
        assert_eq!(
            reference.node(id).level(),
            other.node(id).level(),
            "{what}: node {id} level"
        );
    }
    assert_eq!(reference.outputs(), other.outputs(), "{what}: outputs");
    assert_eq!(reference.input_ids(), other.input_ids(), "{what}: inputs");
    for i in 0..reference.num_inputs() {
        assert_eq!(
            reference.input_name(i),
            other.input_name(i),
            "{what}: input name {i}"
        );
    }
    for i in 0..reference.num_outputs() {
        assert_eq!(
            reference.output_name(i),
            other.output_name(i),
            "{what}: output name {i}"
        );
    }
}

/// Deterministic xorshift for seeded random paper-space flows.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A random flow from the paper's space: length 10..=25 over the 6 transforms.
fn random_flow(seed: u64) -> Vec<Transform> {
    let mut rng = Rng(seed | 1);
    let len = 10 + (rng.next() % 16) as usize;
    (0..len)
        .map(|_| Transform::from_index((rng.next() % Transform::COUNT as u64) as usize))
        .collect()
}

#[test]
fn default_edit_mode_is_in_place() {
    assert_eq!(EditMode::default(), EditMode::InPlace);
    assert_eq!(PassContext::default().edit_mode(), EditMode::InPlace);
}

#[test]
fn in_place_matches_rebuild_and_reference_per_transform() {
    for design in [
        Design::Alu64.generate(DesignScale::Tiny),
        Design::Montgomery64.generate(DesignScale::Tiny),
    ] {
        for t in Transform::ALL {
            let flow = [t];
            let reference = apply_sequence_with_engine(&design, &flow, CutEngine::Fast);
            let mut rebuild_ctx = PassContext::with_modes(CutEngine::Fast, EditMode::Rebuild);
            let rebuilt = rebuild_ctx.run_flow(&design, &flow);
            let mut inplace_ctx = PassContext::with_modes(CutEngine::Fast, EditMode::InPlace);
            let inplace = inplace_ctx.run_flow(&design, &flow);
            assert_identical(&reference, &rebuilt, &format!("{t}: rebuild vs reference"));
            assert_identical(&reference, &inplace, &format!("{t}: in-place vs reference"));
        }
    }
}

#[test]
fn seeded_random_paper_flows_are_mode_identical() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    for seed in [0xBEEFu64, 0xFACADE, 0x5EED] {
        let flow = random_flow(seed);
        let mut rebuild_ctx = PassContext::with_modes(CutEngine::Fast, EditMode::Rebuild);
        let rebuilt = rebuild_ctx.run_flow(&design, &flow);
        let mut inplace_ctx = PassContext::with_modes(CutEngine::Fast, EditMode::InPlace);
        let inplace = inplace_ctx.run_flow(&design, &flow);
        assert_identical(&rebuilt, &inplace, &format!("random-{seed:#x}"));
    }
}

#[test]
fn in_place_mode_actually_takes_the_in_place_path() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let flow = [Transform::Balance, Transform::Rewrite, Transform::Refactor];
    let mut ctx = PassContext::with_modes(CutEngine::Fast, EditMode::InPlace);
    let _ = ctx.run_flow(&design, &flow);
    let stats = ctx.apply_stats();
    assert!(
        stats.in_place > 0,
        "a realistic flow must route sweeps through the in-place editor: {stats:?}"
    );

    let mut ctx = PassContext::with_modes(CutEngine::Fast, EditMode::Rebuild);
    let _ = ctx.run_flow(&design, &flow);
    let stats = ctx.apply_stats();
    assert_eq!(stats.in_place, 0, "rebuild mode must never edit in place");
    assert_eq!(stats.identity, 0, "rebuild mode has no identity fast path");
    assert!(stats.rebuilt > 0);
}

#[test]
fn identity_sweeps_are_free_in_in_place_mode() {
    // A minimal optimal graph: strict rewrite can free no nodes, so the
    // sweep accepts nothing and the in-place apply is skipped entirely.
    let mut g = Aig::new();
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let ab = g.and(a, b);
    let f = g.and(ab, c);
    g.add_output("f", f);

    let mut ctx = PassContext::with_modes(CutEngine::Fast, EditMode::InPlace);
    let mut work = ctx.take_buf();
    work.copy_from(&g);
    ctx.ensure_clean(&mut work);
    let generation = work.generation();
    ctx.apply(Transform::Rewrite, &mut work);
    let stats = ctx.apply_stats();
    assert_eq!(
        stats.identity, 1,
        "an empty decision set must be a free identity: {stats:?}"
    );
    assert_eq!(
        work.generation(),
        generation,
        "the identity fast path must not touch the graph at all"
    );
    // The untouched graph keeps its fresh epoch caches.
    assert!(work.is_clean());
    assert!(work.fanouts_fresh());
}

#[test]
fn dirty_threshold_crossover_falls_back_to_rebuild() {
    // A tiny redundant graph where one accepted decision touches most of the
    // AND nodes: the estimated dirty fraction crosses 50%, so even
    // EditMode::InPlace must route the apply through the rebuild path.
    let mut g = Aig::new();
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let ab = g.and(a, b);
    let ac = g.and(a, c);
    let f = g.or(ab, ac);
    g.add_output("f", f);

    let mut ctx = PassContext::with_modes(CutEngine::Fast, EditMode::InPlace);
    let mut work = ctx.take_buf();
    work.copy_from(&g);
    ctx.ensure_clean(&mut work);
    ctx.apply(Transform::Refactor, &mut work);
    let stats = ctx.apply_stats();
    assert_eq!(
        stats.rebuilt, 1,
        "a whole-graph decision must cross the dirty threshold: {stats:?}"
    );
    assert_eq!(stats.in_place, 0);
    // And the result is still the reference one.
    let reference = apply_sequence_with_engine(&g, &[Transform::Refactor], CutEngine::Fast);
    assert_identical(&reference, &work, "threshold-crossover result");
}

#[test]
fn in_place_passes_leave_fresh_epochs() {
    // After an in-place applied pass the graph must certify clean + fresh
    // fanouts without any recompute — that is the "analyses survive the
    // edit" contract the next pass relies on.
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let mut ctx = PassContext::with_modes(CutEngine::Fast, EditMode::InPlace);
    let mut g = ctx.take_buf();
    g.copy_from(&design);
    ctx.ensure_clean(&mut g);
    for t in Transform::ALL {
        ctx.apply(t, &mut g);
        assert!(g.is_clean(), "{t}: must end clean");
    }
    assert!(ctx.apply_stats().in_place > 0);
}
