//! Cancellation unwinding leaves the arena-recycling context reusable.
//!
//! The contract pinned here backs the daemon's deadline path: a request past
//! its budget unwinds out of the pass pipeline, and the worker's long-lived
//! [`PassContext`] serves the next request with bit-identical results — no
//! context rebuild, no residue from the cancelled evaluation.

use std::time::Duration;

use aig::io::{render_design, Format};
use circuits::{Design, DesignScale};
use flow_core::{CancelReason, CancelToken};
use synth::{FlowRunner, PassContext, Transform};

const FLOW: [Transform; 6] = [
    Transform::Balance,
    Transform::Rewrite,
    Transform::RefactorZ,
    Transform::Restructure,
    Transform::RewriteZ,
    Transform::Balance,
];

fn bits(g: &aig::Aig) -> Vec<u8> {
    render_design(g, Format::AigerAscii)
}

#[test]
fn expired_deadline_cancels_at_the_first_pass_boundary() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let mut ctx = PassContext::default();
    let token = CancelToken::with_deadline(Duration::ZERO);
    let err = ctx
        .run_flow_cancellable(&design, &FLOW, &token)
        .expect_err("zero budget must cancel");
    assert_eq!(err.reason, CancelReason::DeadlineExceeded);
}

#[test]
fn explicitly_cancelled_token_reports_cancelled() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let mut ctx = PassContext::default();
    let token = CancelToken::never();
    token.cancel();
    let err = ctx
        .run_flow_cancellable(&design, &FLOW, &token)
        .expect_err("cancelled token must cancel");
    assert_eq!(err.reason, CancelReason::Cancelled);
}

#[test]
fn cancelled_context_reruns_bit_identical_to_a_fresh_one() {
    let design = Design::Aes128.generate(DesignScale::Tiny);
    let mut ctx = PassContext::default();

    // Warm the context (pool, caches, scratch) with a real evaluation first,
    // then cancel one mid-stream: interrupt budgets from instant to a few
    // milliseconds land the unwind in different passes and loops.
    let warm = ctx.run_flow(&design, &FLOW);
    ctx.recycle(warm);
    for budget_us in [0, 200, 500, 1_000, 2_000, 5_000] {
        let token = CancelToken::with_deadline(Duration::from_micros(budget_us));
        let _ = ctx.run_flow_cancellable(&design, &FLOW, &token);
    }

    // The survivor context must now behave exactly like a fresh one.
    let reused = ctx.run_flow(&design, &FLOW);
    let fresh = PassContext::default().run_flow(&design, &FLOW);
    assert_eq!(
        bits(&reused),
        bits(&fresh),
        "a cancelled context must not leak state into later runs"
    );

    // The resident design is untouched: passes mutate their working copy
    // only after the full sweep, never the input graph.
    let original = Design::Aes128.generate(DesignScale::Tiny);
    assert_eq!(bits(&design), bits(&original));
}

#[test]
fn flow_runner_cancellation_keeps_qor_reproducible() {
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let runner = FlowRunner::new().with_verification(true);
    let mut ctx = PassContext::default();

    let token = CancelToken::with_deadline(Duration::ZERO);
    let err = runner
        .try_run_with_ctx(&design, &FLOW, &mut ctx, &token)
        .expect_err("zero budget must cancel");
    assert_eq!(err.reason, CancelReason::DeadlineExceeded);

    let reused = runner.run_with_ctx(&design, &FLOW, &mut ctx);
    let fresh = runner.run(&design, &FLOW);
    assert_eq!(
        reused.qor, fresh.qor,
        "bit-identical QoR after cancellation"
    );
    assert!(
        reused.verified,
        "verification still passes on the reused ctx"
    );
}

#[test]
fn never_token_changes_nothing() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    let mut ctx = PassContext::default();
    let armed = ctx
        .run_flow_cancellable(&design, &FLOW, &CancelToken::never())
        .expect("never cancels");
    let plain = PassContext::default().run_flow(&design, &FLOW);
    assert_eq!(
        bits(&armed),
        bits(&plain),
        "an armed-but-quiet token must not perturb results"
    );
}
