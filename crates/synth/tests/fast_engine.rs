//! Differential tests of the small-cut fast path against the reference
//! machinery: cut enumeration with fused truths, NPN4 matching, and
//! end-to-end QoR identity of full flow evaluations.

use aig::{cut_truth, Aig, Cut4Enumerator, CutEnumerator, CutParams, Lit};
use circuits::{Design, DesignScale};
use synth::{
    apply_sequence_with_engine, map_with_engine, CellLibrary, CutEngine, MapperParams, Transform,
};

/// Deterministic xorshift generator for structure-only randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a random AIG with `num_inputs` inputs and roughly `num_ands` ANDs.
fn random_aig(seed: u64, num_inputs: usize, num_ands: usize) -> Aig {
    let mut rng = Rng(seed | 1);
    let mut g = Aig::new();
    let mut lits: Vec<Lit> = g.add_inputs("x", num_inputs);
    for _ in 0..num_ands {
        let a = lits[rng.below(lits.len())];
        let b = lits[rng.below(lits.len())];
        let a = if rng.next() & 1 == 1 { !a } else { a };
        let b = if rng.next() & 1 == 1 { !b } else { b };
        let l = g.and(a, b);
        if !l.is_const() {
            lits.push(l);
        }
    }
    // Make the last few signals outputs so most of the graph stays reachable.
    for (i, &l) in lits.iter().rev().take(4).enumerate() {
        g.add_output(format!("o{i}"), l);
    }
    g
}

/// The fused-truth enumeration must match reference cut enumeration plus
/// per-cut cone walks on random graphs, cut for cut.
#[test]
fn cut4_enumeration_matches_reference_on_random_aigs() {
    for seed in 1..=10u64 {
        let g = random_aig(seed * 0x9E37, 8, 60);
        for include_trivial in [false, true] {
            let params = CutParams {
                max_cut_size: 4,
                max_cuts_per_node: 8,
                include_trivial,
            };
            let reference = CutEnumerator::new(params).enumerate(&g);
            let fast = Cut4Enumerator::new(params).enumerate(&g);
            assert_eq!(reference.len(), fast.len());
            for id in 0..g.len() {
                assert_eq!(
                    reference[id].len(),
                    fast[id].len(),
                    "seed={seed} node={id}: cut count"
                );
                for (rc, fc) in reference[id].cuts().iter().zip(fast[id].cuts()) {
                    assert_eq!(
                        rc.leaves(),
                        fc.leaf_ids().as_slice(),
                        "seed={seed} node={id}: leaves"
                    );
                    if g.node(id).is_and() {
                        let walked = cut_truth(&g, id, rc).expect("enumerated cuts cover");
                        assert_eq!(
                            walked,
                            fc.truth_table(),
                            "seed={seed} node={id}: fused truth"
                        );
                    }
                }
            }
        }
    }
}

/// Every pass must produce a structurally identical network on both engines.
#[test]
fn passes_are_bit_identical_across_engines_on_random_aigs() {
    for seed in [3u64, 17, 99] {
        let g = random_aig(seed * 0xBEEF, 10, 80);
        for t in Transform::ALL {
            let reference = t.apply_with_engine(&g, CutEngine::Reference);
            let fast = t.apply_with_engine(&g, CutEngine::Fast);
            assert_eq!(reference.num_ands(), fast.num_ands(), "seed={seed} {t}");
            assert_eq!(reference.depth(), fast.depth(), "seed={seed} {t}");
            assert!(
                aig::random_equivalence_check(&g, &fast, 8, seed ^ 0x51),
                "seed={seed} {t}: fast pass changed the function"
            );
            assert!(
                aig::random_equivalence_check(&reference, &fast, 8, seed ^ 0x52),
                "seed={seed} {t}: engines diverged"
            );
        }
    }
}

/// Full flow evaluation (passes + mapping) must yield bit-identical QoR —
/// the fast path changes cost, not results.
#[test]
fn flow_evaluation_qor_is_bit_identical() {
    use Transform::*;
    let lib = CellLibrary::nangate14();
    let flows: [&[Transform]; 3] = [
        &[Balance, Rewrite, RewriteZ, Balance, Rewrite],
        &[Balance, Rewrite, Refactor, Balance, RewriteZ, RefactorZ],
        &[Restructure, Rewrite, Balance, Refactor],
    ];
    for design in Design::ALL {
        let g = design.generate(DesignScale::Tiny);
        for flow in flows {
            let opt_ref = apply_sequence_with_engine(&g, flow, CutEngine::Reference);
            let opt_fast = apply_sequence_with_engine(&g, flow, CutEngine::Fast);
            let qr = map_with_engine(
                &opt_ref,
                &lib,
                MapperParams::default(),
                CutEngine::Reference,
            )
            .qor();
            let qf =
                map_with_engine(&opt_fast, &lib, MapperParams::default(), CutEngine::Fast).qor();
            assert_eq!(
                qr.area_um2.to_bits(),
                qf.area_um2.to_bits(),
                "{design} {flow:?}: area"
            );
            assert_eq!(
                qr.delay_ps.to_bits(),
                qf.delay_ps.to_bits(),
                "{design} {flow:?}: delay"
            );
            assert_eq!(qr.gates, qf.gates, "{design} {flow:?}: gate count");
            assert_eq!(
                qr.and_nodes, qf.and_nodes,
                "{design} {flow:?}: subject ANDs"
            );
            assert_eq!(qr.depth, qf.depth, "{design} {flow:?}: depth");
        }
    }
}

/// Mapping alone, in both modes, is bit-identical across engines.
#[test]
fn mapping_is_bit_identical_in_both_modes() {
    let lib = CellLibrary::nangate14();
    for design in Design::ALL {
        let g = design.generate(DesignScale::Tiny);
        for mode in [synth::MapMode::Delay, synth::MapMode::Area] {
            let params = MapperParams {
                mode,
                ..Default::default()
            };
            let r = map_with_engine(&g, &lib, params, CutEngine::Reference);
            let f = map_with_engine(&g, &lib, params, CutEngine::Fast);
            assert_eq!(r.gates.len(), f.gates.len(), "{design} {mode:?}");
            for (gr, gf) in r.gates.iter().zip(&f.gates) {
                assert_eq!(gr.root, gf.root, "{design} {mode:?}");
                assert_eq!(gr.cell, gf.cell, "{design} {mode:?}");
                assert_eq!(gr.leaves, gf.leaves, "{design} {mode:?}");
                assert_eq!(
                    gr.arrival_ps.to_bits(),
                    gf.arrival_ps.to_bits(),
                    "{design} {mode:?}"
                );
            }
            assert_eq!(r.area.to_bits(), f.area.to_bits(), "{design} {mode:?}");
            assert_eq!(
                r.delay_ps.to_bits(),
                f.delay_ps.to_bits(),
                "{design} {mode:?}"
            );
        }
    }
}
