//! Differential tests pinning the arena-recycling `PassContext` path
//! **bit-identical** to the Reference free-function path: same final graph
//! node for node, same QoR bits, across the checked-in fixture corpus and
//! seeded random paper-space flows.

use std::path::PathBuf;

use aig::Aig;
use circuits::{Design, DesignScale};
use synth::{
    apply_sequence_with_engine, map_with_ctx, map_with_engine, CellLibrary, CutEngine,
    MapperParams, PassContext, Transform,
};

/// Node-for-node structural identity: ids, kinds, levels, interface, names.
fn assert_identical(reference: &Aig, ctx_result: &Aig, what: &str) {
    assert_eq!(reference.len(), ctx_result.len(), "{what}: node count");
    for id in 0..reference.len() {
        assert_eq!(
            reference.node(id).kind(),
            ctx_result.node(id).kind(),
            "{what}: node {id} kind"
        );
        assert_eq!(
            reference.node(id).level(),
            ctx_result.node(id).level(),
            "{what}: node {id} level"
        );
    }
    assert_eq!(reference.outputs(), ctx_result.outputs(), "{what}: outputs");
    assert_eq!(
        reference.input_ids(),
        ctx_result.input_ids(),
        "{what}: inputs"
    );
    for i in 0..reference.num_inputs() {
        assert_eq!(
            reference.input_name(i),
            ctx_result.input_name(i),
            "{what}: input name {i}"
        );
    }
    for i in 0..reference.num_outputs() {
        assert_eq!(
            reference.output_name(i),
            ctx_result.output_name(i),
            "{what}: output name {i}"
        );
    }
    assert_eq!(reference.name(), ctx_result.name(), "{what}: design name");
}

fn fixture_corpus() -> Vec<(String, Aig)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/tiny");
    let mut designs = Vec::new();
    for file in ["alu64.aag", "montgomery64.aag", "aes128.aag"] {
        let path = dir.join(file);
        let aig = aig::io::read_design(&path)
            .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
        designs.push((file.to_string(), aig));
    }
    designs
}

fn representative_flows() -> Vec<(&'static str, Vec<Transform>)> {
    use Transform::*;
    vec![
        (
            "compress",
            vec![Balance, Rewrite, RewriteZ, Balance, Rewrite],
        ),
        (
            "resyn2",
            vec![Balance, Rewrite, Refactor, Balance, RewriteZ, RefactorZ],
        ),
        ("mixed", vec![Restructure, RefactorZ, Balance, Rewrite]),
        ("empty", vec![]),
    ]
}

/// Deterministic xorshift for seeded random paper-space flows.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A random flow from the paper's space: length 10..=25 over the 6 transforms.
fn random_flow(seed: u64) -> Vec<Transform> {
    let mut rng = Rng(seed | 1);
    let len = 10 + (rng.next() % 16) as usize;
    (0..len)
        .map(|_| Transform::from_index((rng.next() % Transform::COUNT as u64) as usize))
        .collect()
}

fn assert_flow_identical(design: &Aig, flow: &[Transform], engine: CutEngine, what: &str) {
    let lib = CellLibrary::nangate14();
    let params = MapperParams::default();

    let reference = apply_sequence_with_engine(design, flow, engine);
    let reference_qor = map_with_engine(&reference, &lib, params, engine).qor();

    let mut ctx = PassContext::new(engine);
    let mut optimized = ctx.run_flow(design, flow);
    assert_identical(&reference, &optimized, what);

    let ctx_qor = map_with_ctx(&mut optimized, &lib, params, &mut ctx).qor();
    assert_eq!(
        reference_qor.area_um2.to_bits(),
        ctx_qor.area_um2.to_bits(),
        "{what}: area bits"
    );
    assert_eq!(
        reference_qor.delay_ps.to_bits(),
        ctx_qor.delay_ps.to_bits(),
        "{what}: delay bits"
    );
    assert_eq!(reference_qor.gates, ctx_qor.gates, "{what}: gates");
    assert_eq!(reference_qor.and_nodes, ctx_qor.and_nodes, "{what}: ANDs");
    assert_eq!(reference_qor.depth, ctx_qor.depth, "{what}: depth");
}

#[test]
fn fixture_corpus_is_bit_identical_across_paths() {
    for (name, design) in fixture_corpus() {
        // aes128 is the largest fixture; one deep flow keeps runtime sane.
        let flows = if name.starts_with("aes") {
            vec![representative_flows().remove(1)]
        } else {
            representative_flows()
        };
        for (flow_name, flow) in flows {
            assert_flow_identical(
                &design,
                &flow,
                CutEngine::Fast,
                &format!("{name}/{flow_name}"),
            );
        }
    }
}

#[test]
fn seeded_random_paper_flows_are_bit_identical() {
    let design = Design::Alu64.generate(DesignScale::Tiny);
    for seed in [0xA5A5u64, 0x1CEB00DA, 0x7E57] {
        let flow = random_flow(seed);
        assert_flow_identical(
            &design,
            &flow,
            CutEngine::Fast,
            &format!("alu64/random-{seed:#x}"),
        );
    }
}

#[test]
fn reference_cut_engine_context_matches_reference_path() {
    // The context recycles buffers on either cut engine; pin the Reference
    // cut engine too (smaller design: the reference machinery is slow).
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let flow = representative_flows().remove(0).1;
    assert_flow_identical(
        &design,
        &flow,
        CutEngine::Reference,
        "mont/reference-engine",
    );
}

#[test]
fn one_context_reused_across_many_flows_stays_identical() {
    // Buffer recycling must not leak state between flows: run all flows
    // through ONE context and compare each against a fresh reference.
    let design = Design::Montgomery64.generate(DesignScale::Tiny);
    let mut ctx = PassContext::default();
    for (flow_name, flow) in representative_flows() {
        let reference = apply_sequence_with_engine(&design, &flow, CutEngine::Fast);
        let optimized = ctx.run_flow(&design, &flow);
        assert_identical(&reference, &optimized, &format!("shared-ctx/{flow_name}"));
        ctx.recycle(optimized);
    }
    for seed in [1u64, 2, 3] {
        let flow = random_flow(seed);
        let reference = apply_sequence_with_engine(&design, &flow, CutEngine::Fast);
        let optimized = ctx.run_flow(&design, &flow);
        assert_identical(&reference, &optimized, &format!("shared-ctx/random-{seed}"));
        ctx.recycle(optimized);
    }
}
