//! Quality-of-result records.

use serde::{Deserialize, Serialize};

/// The post-mapping quality of result of one synthesis run: the metrics the
/// paper labels flows with (Table 1 uses delay, area, power, …; this
/// reproduction provides area and delay).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Qor {
    /// Total standard-cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ps.
    pub delay_ps: f64,
    /// Number of mapped gate instances.
    pub gates: usize,
    /// AND-node count of the optimised subject graph (pre-mapping size).
    pub and_nodes: usize,
    /// Depth of the optimised subject graph in AND levels.
    pub depth: u32,
}

impl Qor {
    /// Returns the metric selected by `metric`.
    pub fn metric(&self, metric: QorMetric) -> f64 {
        match metric {
            QorMetric::Area => self.area_um2,
            QorMetric::Delay => self.delay_ps,
        }
    }
}

impl std::fmt::Display for Qor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "area = {:.2} um^2  delay = {:.1} ps  gates = {}  and = {}  lev = {}",
            self.area_um2, self.delay_ps, self.gates, self.and_nodes, self.depth
        )
    }
}

/// The QoR metric a flow-generation run optimises (the `r` of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QorMetric {
    /// Standard-cell area.
    Area,
    /// Critical-path delay.
    Delay,
}

impl QorMetric {
    /// Both supported metrics.
    pub const ALL: [QorMetric; 2] = [QorMetric::Area, QorMetric::Delay];
}

impl std::fmt::Display for QorMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QorMetric::Area => f.write_str("area"),
            QorMetric::Delay => f.write_str("delay"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_selection() {
        let q = Qor {
            area_um2: 12.5,
            delay_ps: 80.0,
            gates: 10,
            and_nodes: 20,
            depth: 5,
        };
        assert_eq!(q.metric(QorMetric::Area), 12.5);
        assert_eq!(q.metric(QorMetric::Delay), 80.0);
    }

    #[test]
    fn display_contains_both_metrics() {
        let q = Qor {
            area_um2: 1.0,
            delay_ps: 2.0,
            gates: 3,
            and_nodes: 4,
            depth: 5,
        };
        let s = q.to_string();
        assert!(s.contains("area"));
        assert!(s.contains("delay"));
        assert_eq!(QorMetric::Area.to_string(), "area");
        assert_eq!(QorMetric::Delay.to_string(), "delay");
    }
}
