//! The `rewrite` pass: cut-based local rewriting.
//!
//! Analogue of ABC's `rewrite` (`rw`) and `rewrite -z` (`rwz`) commands: every
//! node's 4-feasible cuts are enumerated, the cut function is re-expressed as an
//! irredundant SOP, and the replacement is accepted when it frees more nodes
//! (the node's MFFC bounded by the cut) than it adds.  The `-z` variant also
//! accepts zero-gain replacements, which changes structure and can enable later
//! passes — the reason the paper's flows interleave it with the other passes.

use aig::{cut_truth, Aig, Cut4Enumerator, CutEnumerator, CutParams, Lit, NodeId};

use crate::engine::{CutEngine, EditMode};
use crate::pass::{PassContext, ProposeScratch};
use crate::resyn::{
    resynthesis_sweep, resynthesis_sweep_ctx, Acceptance, Proposal, Structure, SweepApply,
};
use crate::sop::{count_sop_nodes, count_sop_nodes_sweep, count_sop_nodes_with, isop, isop_fast};

/// Parameters of the rewrite pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteParams {
    /// Cut size used for local rewriting (ABC uses 4).
    pub cut_size: usize,
    /// Number of cuts kept per node during enumeration.
    pub cuts_per_node: usize,
}

impl Default for RewriteParams {
    fn default() -> Self {
        RewriteParams {
            cut_size: 4,
            cuts_per_node: 8,
        }
    }
}

/// Applies cut-based rewriting; `zero_cost` selects the `-z` behaviour.
pub fn rewrite(aig: &Aig, zero_cost: bool) -> Aig {
    rewrite_with_params(aig, zero_cost, RewriteParams::default())
}

/// Applies cut-based rewriting with explicit parameters.
pub fn rewrite_with_params(aig: &Aig, zero_cost: bool, params: RewriteParams) -> Aig {
    rewrite_with_engine(aig, zero_cost, params, CutEngine::default())
}

/// Applies cut-based rewriting with explicit parameters and cut engine.
///
/// Both engines produce bit-identical results; `Fast` runs on the
/// zero-allocation [`Cut4Enumerator`] with fused truth tables when the
/// parameters fit (`cut_size <= 4`), falling back to the reference machinery
/// otherwise.
pub fn rewrite_with_engine(
    aig: &Aig,
    zero_cost: bool,
    params: RewriteParams,
    engine: CutEngine,
) -> Aig {
    let acceptance = if zero_cost {
        Acceptance::zero_cost()
    } else {
        Acceptance::strict()
    };
    // Cuts are enumerated once on the cleaned-up working copy used by the
    // sweep (the sweep applies all decisions in one rebuild, so the graph the
    // cuts were enumerated on stays valid for the whole pass).
    let work = aig.cleanup();
    let cut_params = CutParams {
        max_cut_size: params.cut_size,
        max_cuts_per_node: params.cuts_per_node,
        include_trivial: false,
    };
    let fast_capable =
        params.cut_size <= aig::CUT4_MAX_LEAVES && params.cuts_per_node <= aig::CUT4_SET_CAPACITY;
    if engine == CutEngine::Fast && fast_capable {
        let cut_sets = Cut4Enumerator::new(cut_params).enumerate(&work);
        resynthesis_sweep(&work, acceptance, |graph, id| {
            let mut proposals = Vec::new();
            propose_fast(graph, id, &cut_sets, &mut proposals);
            proposals
        })
    } else {
        let cut_sets = CutEnumerator::new(cut_params).enumerate(&work);
        resynthesis_sweep(&work, acceptance, |graph, id| {
            let mut proposals = Vec::new();
            propose(graph, id, &cut_sets, &mut proposals);
            proposals
        })
    }
}

/// The context path of [`rewrite`]: transforms `g` in place, recycling the
/// context's cut-set vector and sweep buffers, producing identical bits.
pub(crate) fn rewrite_ctx(
    g: &mut Aig,
    zero_cost: bool,
    params: RewriteParams,
    ctx: &mut PassContext,
) {
    let acceptance = if zero_cost {
        Acceptance::zero_cost()
    } else {
        Acceptance::strict()
    };
    ctx.ensure_clean(g);
    let cut_params = CutParams {
        max_cut_size: params.cut_size,
        max_cuts_per_node: params.cuts_per_node,
        include_trivial: false,
    };
    let fast_capable =
        params.cut_size <= aig::CUT4_MAX_LEAVES && params.cuts_per_node <= aig::CUT4_SET_CAPACITY;
    // Split the context into disjoint borrows: the enumeration buffer feeds
    // the propose closure while the sweep owns the remaining scratch.
    let PassContext {
        engine,
        edit_mode,
        pool,
        scratch,
        propose: ps,
        cut4_sets,
        sweep,
        edit,
        apply_stats,
        cancel,
        ..
    } = ctx;
    if *engine == CutEngine::Fast && fast_capable {
        // The in-place pipeline materializes only the winning cut's proposal
        // (bit-identical to the full enumeration: the sweep's accept loop keeps
        // the first strictly-best gain, which is exactly what the winner scan
        // reproduces); the Rebuild mode keeps the pinned PR 5 propose path.
        let sweep_fast = *edit_mode == EditMode::InPlace;
        if sweep_fast {
            ps.strash.rebuild(g);
        }
        let min_gain = acceptance.min_gain;
        Cut4Enumerator::new(cut_params).enumerate_into(g, cut4_sets);
        resynthesis_sweep_ctx(
            g,
            acceptance,
            sweep,
            pool,
            scratch,
            cancel,
            SweepApply {
                mode: *edit_mode,
                edit,
                stats: apply_stats,
            },
            |graph, id, out| {
                if sweep_fast {
                    propose_sweep(graph, id, cut4_sets, min_gain, ps, out)
                } else {
                    propose_fast_ctx(graph, id, cut4_sets, ps, out)
                }
            },
        );
    } else {
        let cut_sets = CutEnumerator::new(cut_params).enumerate(g);
        resynthesis_sweep_ctx(
            g,
            acceptance,
            sweep,
            pool,
            scratch,
            cancel,
            SweepApply {
                mode: *edit_mode,
                edit,
                stats: apply_stats,
            },
            |graph, id, out| propose(graph, id, &cut_sets, out),
        );
    }
}

/// The in-place pipeline's proposal generator: scans every cut like
/// [`propose_fast_ctx`] but only materializes the winning proposal — the one
/// the sweep's accept loop would select (first cut with the strictly largest
/// gain at or above `min_gain`).  Cut costs are answered by the per-sweep
/// strash snapshot and the SOP covers are borrowed from the ISOP cache, so
/// losing cuts allocate nothing.
fn propose_sweep(
    graph: &mut Aig,
    id: NodeId,
    cut_sets: &[aig::CutSet4],
    min_gain: i64,
    ps: &mut ProposeScratch,
    proposals: &mut Vec<Proposal>,
) {
    if id >= cut_sets.len() {
        return;
    }
    // (cut index, gain, added, mffc_size) of the best cut so far.
    let mut best: Option<(usize, i64, usize, usize)> = None;
    for (cut_idx, cut) in cut_sets[id].cuts().iter().enumerate() {
        if cut.size() < 2 {
            continue;
        }
        let truth = cut.truth_table();
        let sop = ps.isop.isop_ref(&truth);
        // Very large covers cannot win at cut size 4; skip pathological cases.
        if sop.num_cubes() > 16 {
            continue;
        }
        let mut leaf_buf = [0 as NodeId; aig::CUT4_MAX_LEAVES];
        for (slot, &l) in leaf_buf.iter_mut().zip(cut.leaves()) {
            *slot = l as NodeId;
        }
        let leaves = &leaf_buf[..cut.size()];
        ps.leaf_lits.clear();
        ps.leaf_lits
            .extend(leaves.iter().map(|&n| Lit::from_node(n, false)));
        let mffc = aig::Mffc::compute(graph, id, leaves);
        let budget = (mffc.size() as i64 - min_gain).max(0) as usize;
        let Some(added) = count_sop_nodes_sweep(
            &ps.strash,
            sop,
            &ps.leaf_lits,
            |n| mffc.contains(n),
            &mut ps.cost,
            budget,
        ) else {
            continue;
        };
        let gain = mffc.size() as i64 - added as i64;
        if gain < min_gain {
            continue;
        }
        if best.is_none_or(|(_, b, _, _)| gain > b) {
            best = Some((cut_idx, gain, added, mffc.size()));
        }
    }
    let Some((cut_idx, _, added, mffc_size)) = best else {
        return;
    };
    let cut = &cut_sets[id].cuts()[cut_idx];
    let sop = ps.isop.isop(&cut.truth_table());
    proposals.push(Proposal {
        leaves: cut.leaf_ids(),
        structure: Structure::SumOfProducts(sop),
        added,
        mffc_size,
    });
}

/// The context-path proposal generator: identical proposals to
/// [`propose_fast`], computed through the context's recycled ISOP arena and
/// SOP cost scratch.
fn propose_fast_ctx(
    graph: &mut Aig,
    id: NodeId,
    cut_sets: &[aig::CutSet4],
    ps: &mut ProposeScratch,
    proposals: &mut Vec<Proposal>,
) {
    if id >= cut_sets.len() {
        return;
    }
    for cut in cut_sets[id].cuts() {
        if cut.size() < 2 {
            continue;
        }
        let truth = cut.truth_table();
        let sop = ps.isop.isop(&truth);
        // Very large covers cannot win at cut size 4; skip pathological cases.
        if sop.num_cubes() > 16 {
            continue;
        }
        let leaves = cut.leaf_ids();
        let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
        let mffc = aig::Mffc::compute(graph, id, &leaves);
        let added =
            count_sop_nodes_with(graph, &sop, &leaf_lits, |n| mffc.contains(n), &mut ps.cost);
        proposals.push(Proposal {
            leaves,
            structure: Structure::SumOfProducts(sop),
            added,
            mffc_size: mffc.size(),
        });
    }
}

fn propose(graph: &mut Aig, id: NodeId, cut_sets: &[aig::CutSet], proposals: &mut Vec<Proposal>) {
    if id >= cut_sets.len() {
        return;
    }
    for cut in cut_sets[id].cuts() {
        if cut.size() < 2 {
            continue;
        }
        let Ok(truth) = cut_truth(graph, id, cut) else {
            continue;
        };
        push_proposal(graph, id, cut.leaves().to_vec(), &truth, false, proposals);
    }
}

fn propose_fast(
    graph: &mut Aig,
    id: NodeId,
    cut_sets: &[aig::CutSet4],
    proposals: &mut Vec<Proposal>,
) {
    if id >= cut_sets.len() {
        return;
    }
    for cut in cut_sets[id].cuts() {
        if cut.size() < 2 {
            continue;
        }
        // The fused truth makes the per-cut cone walk unnecessary.
        let truth = cut.truth_table();
        push_proposal(graph, id, cut.leaf_ids(), &truth, true, proposals);
    }
}

fn push_proposal(
    graph: &mut Aig,
    id: NodeId,
    leaves: Vec<NodeId>,
    truth: &aig::TruthTable,
    fast: bool,
    proposals: &mut Vec<Proposal>,
) {
    let sop = if fast { isop_fast(truth) } else { isop(truth) };
    // Very large covers cannot win at cut size 4; skip pathological cases.
    if sop.num_cubes() > 16 {
        return;
    }
    let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
    // Nodes inside the MFFC will be freed by the replacement, so reusing
    // them must not be counted as free.
    let mffc = aig::Mffc::compute(graph, id, &leaves);
    let added = count_sop_nodes(graph, &sop, &leaf_lits, |n| mffc.contains(n));
    proposals.push(Proposal {
        leaves,
        structure: Structure::SumOfProducts(sop),
        added,
        mffc_size: mffc.size(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::random_equivalence_check;
    use circuits::{Design, DesignScale};

    /// A network with obvious local redundancy: (a&b)|(a&c) plus duplicated cones.
    fn redundant_network() -> Aig {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 5);
        let ab = g.and(xs[0], xs[1]);
        let ac = g.and(xs[0], xs[2]);
        let f1 = g.or(ab, ac);
        // (a|b) & (a|c) = a | (b&c)
        let a_or_b = g.or(xs[0], xs[1]);
        let a_or_c = g.or(xs[0], xs[2]);
        let f2 = g.and(a_or_b, a_or_c);
        let f3 = g.xor(f1, xs[3]);
        let f4 = g.and(f2, xs[4]);
        g.add_output("f3", f3);
        g.add_output("f4", f4);
        g
    }

    #[test]
    fn rewrite_preserves_function() {
        let g = redundant_network();
        let r = rewrite(&g, false);
        assert!(random_equivalence_check(&g, &r, 16, 3));
    }

    #[test]
    fn rewrite_reduces_redundant_logic() {
        let g = redundant_network();
        let r = rewrite(&g, false);
        assert!(
            r.num_ands() < g.num_ands(),
            "rewrite should shrink the redundant network: {} -> {}",
            g.num_ands(),
            r.num_ands()
        );
    }

    #[test]
    fn strict_rewrite_never_grows() {
        for design in [Design::Alu64, Design::Montgomery64] {
            let g = design.generate(DesignScale::Tiny);
            let r = rewrite(&g, false);
            assert!(
                r.num_ands() <= g.cleanup().num_ands(),
                "{design}: {} -> {}",
                g.num_ands(),
                r.num_ands()
            );
            assert!(
                random_equivalence_check(&g, &r, 4, 5),
                "{design} function changed"
            );
        }
    }

    #[test]
    fn zero_cost_rewrite_preserves_function() {
        let g = Design::Alu64.generate(DesignScale::Tiny);
        let r = rewrite(&g, true);
        assert!(random_equivalence_check(&g, &r, 4, 17));
    }

    #[test]
    fn rewrite_is_stable_after_convergence() {
        let g = redundant_network();
        let once = rewrite(&g, false);
        let twice = rewrite(&once, false);
        assert!(twice.num_ands() <= once.num_ands());
        assert!(random_equivalence_check(&once, &twice, 8, 23));
    }

    #[test]
    fn params_default_matches_abc_convention() {
        let p = RewriteParams::default();
        assert_eq!(p.cut_size, 4);
        assert!(p.cuts_per_node >= 4);
    }
}
