//! Shared machinery of the resynthesis-style passes.
//!
//! `rewrite`, `refactor` and `restructure` all follow the same scheme:
//!
//! 1. sweep the nodes in topological order,
//! 2. for each node pick a cut, compute the cut function, and propose a new
//!    implementation of that function over the cut leaves,
//! 3. accept the proposal when the estimated gain (MFFC nodes freed minus new
//!    nodes added) meets the pass's threshold,
//! 4. rebuild the network applying the accepted proposals.
//!
//! This module owns steps 1, 3 and 4; each pass provides step 2 as a
//! [`Proposal`] generator.

use std::collections::HashMap;

use aig::{Aig, AigScratch, EditScratch, InPlaceEditor, Lit, NodeId, TruthTable};

use crate::decomp::{build_shannon, build_shannon_edit};
use crate::engine::EditMode;
use crate::pass::{pool_give, pool_take, ApplyStats, CancelCell, SweepScratch};
use crate::sop::{build_sop, build_sop_edit, Sop};

/// How the new implementation of a node's cut function is expressed.
#[derive(Debug, Clone)]
pub enum Structure {
    /// Irredundant sum-of-products (used by `rewrite`/`refactor`).
    SumOfProducts(Sop),
    /// Shannon / mux-tree decomposition (used by `restructure`).
    Shannon(TruthTable),
}

/// A resynthesis decision for one node: re-express it over `leaves` using `structure`.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Cut leaves (node ids of the working graph), defining the variable order.
    pub leaves: Vec<NodeId>,
    /// The replacement structure.
    pub structure: Structure,
    /// Estimated gain in AND nodes (may be zero for zero-cost variants).
    pub gain: i64,
}

/// A candidate produced by a pass for one node, before gain thresholding.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Cut leaves defining the variable order of `structure`.
    pub leaves: Vec<NodeId>,
    /// The proposed replacement structure.
    pub structure: Structure,
    /// Estimated number of new AND nodes the structure would add.
    pub added: usize,
    /// Size of the node's MFFC bounded by `leaves` (nodes freed on acceptance).
    ///
    /// Every pass already computes the MFFC while costing the proposal (the
    /// cost estimator must not count MFFC nodes as free reuse), so the sweep
    /// reads the size from here instead of recomputing the cone.
    pub mffc_size: usize,
}

/// Read-only view of the accepted decisions keyed by node id.
///
/// The rebuild/apply machinery is generic over this so the Reference path's
/// `HashMap` and the context path's dense [`DecisionTable`] replay decisions
/// through literally the same code — the two tables differ only in lookup
/// cost, never in contents, keeping the paths bit-identical by construction.
pub(crate) trait DecisionLookup {
    /// The decision recorded for `id`, if any.
    fn lookup(&self, id: NodeId) -> Option<&Decision>;
    /// Whether no decision was recorded at all.
    fn is_empty(&self) -> bool;
}

impl DecisionLookup for HashMap<NodeId, Decision> {
    fn lookup(&self, id: NodeId) -> Option<&Decision> {
        self.get(&id)
    }
    fn is_empty(&self) -> bool {
        HashMap::is_empty(self)
    }
}

/// Dense decision table indexed by node id — the context path's replacement
/// for the `HashMap`.  The rebuild loop queries *every* AND of the graph, so
/// the flat slot vector turns each probe into one bounds-checked load instead
/// of a hash + bucket walk; the slots recycle across sweeps through
/// [`crate::pass::SweepScratch`].
#[derive(Debug, Default)]
pub(crate) struct DecisionTable {
    slots: Vec<Option<Decision>>,
    len: usize,
}

impl DecisionTable {
    /// Clears the table and sizes it for a graph of `n` nodes.
    pub(crate) fn reset(&mut self, n: usize) {
        self.slots.clear();
        self.slots.resize(n, None);
        self.len = 0;
    }

    /// Records (or replaces) the decision for `id`.
    pub(crate) fn insert(&mut self, id: NodeId, d: Decision) {
        if id >= self.slots.len() {
            self.slots.resize(id + 1, None);
        }
        if self.slots[id].replace(d).is_none() {
            self.len += 1;
        }
    }
}

impl DecisionLookup for DecisionTable {
    fn lookup(&self, id: NodeId) -> Option<&Decision> {
        self.slots.get(id).and_then(Option::as_ref)
    }
    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Acceptance policy of a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acceptance {
    /// Minimum accepted gain: `1` for strict passes, `0` for the `-z` variants
    /// that also accept zero-gain (structure-changing) rewrites.
    pub min_gain: i64,
}

impl Acceptance {
    /// Strictly improving: only accept proposals that remove at least one node.
    pub fn strict() -> Self {
        Acceptance { min_gain: 1 }
    }

    /// Zero-cost accepting (the `-z` flavour of ABC's rewrite/refactor).
    pub fn zero_cost() -> Self {
        Acceptance { min_gain: 0 }
    }
}

/// Runs a resynthesis sweep over `aig`.
///
/// `propose` is called for every AND node (with up-to-date fanout counts) and
/// may return any number of candidate implementations; the best accepted one is
/// recorded.  The function returns the rebuilt, cleaned-up network.
pub fn resynthesis_sweep<F>(aig: &Aig, acceptance: Acceptance, mut propose: F) -> Aig
where
    F: FnMut(&mut Aig, NodeId) -> Vec<Proposal>,
{
    let mut work = aig.cleanup();
    work.compute_fanouts();
    let ids: Vec<NodeId> = work.and_ids().collect();
    let mut decisions: HashMap<NodeId, Decision> = HashMap::new();

    for id in ids {
        if work.fanout_count(id) == 0 {
            continue;
        }
        let proposals = propose(&mut work, id);
        let mut best: Option<Decision> = None;
        for p in proposals {
            let gain = p.mffc_size as i64 - p.added as i64;
            if gain < acceptance.min_gain {
                continue;
            }
            if best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(Decision {
                    leaves: p.leaves,
                    structure: p.structure,
                    gain,
                });
            }
        }
        if let Some(d) = best {
            decisions.insert(id, d);
        }
    }

    rebuild_with_decisions(&work, &decisions).cleanup()
}

/// The context-path resynthesis sweep: same decisions, same rebuilt network as
/// [`resynthesis_sweep`], but `g` is transformed **in place** through recycled
/// buffers and the decision map / id list / proposal vector live in the
/// caller's [`SweepScratch`].
///
/// `g` must already be dangling-free (the context ensures this); fanouts are
/// refreshed only when the epoch stamp says they are stale.
///
/// The per-node loop polls `cancel` and may unwind; `g` is only mutated by
/// the rebuild *after* the full sweep, so a cancelled sweep leaves it exactly
/// as it was on entry.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resynthesis_sweep_ctx<F>(
    g: &mut Aig,
    acceptance: Acceptance,
    sweep: &mut SweepScratch,
    pool: &mut Vec<Aig>,
    scratch: &mut AigScratch,
    cancel: &mut CancelCell,
    apply: SweepApply<'_>,
    mut propose: F,
) where
    F: FnMut(&mut Aig, NodeId, &mut Vec<Proposal>),
{
    debug_assert!(g.is_clean(), "caller must ensure_clean first");
    g.compute_fanouts_cached();
    let SweepScratch {
        ids,
        decisions,
        proposals,
        rebuild_map,
        leaf_lits,
        out_lits,
    } = sweep;
    ids.clear();
    ids.extend(g.and_ids());
    decisions.reset(g.len());
    // Estimated number of nodes the accepted decisions will structurally
    // change (freed MFFC + emitted replacement), driving the in-place /
    // rebuild crossover below.
    let mut estimated_touched = 0usize;

    for &id in ids.iter() {
        if g.fanout_count(id) == 0 {
            continue;
        }
        cancel.checkpoint();
        proposals.clear();
        propose(g, id, proposals);
        let mut best: Option<Decision> = None;
        let mut best_touch = 0usize;
        for p in proposals.drain(..) {
            let gain = p.mffc_size as i64 - p.added as i64;
            if gain < acceptance.min_gain {
                continue;
            }
            if best.as_ref().is_none_or(|b| gain > b.gain) {
                best_touch = p.mffc_size + p.added;
                best = Some(Decision {
                    leaves: p.leaves,
                    structure: p.structure,
                    gain,
                });
            }
        }
        if let Some(d) = best {
            estimated_touched += best_touch;
            decisions.insert(id, d);
        }
    }

    // Apply the decisions.  Both arms are bit-identical (pinned by the
    // differential tests); only the cost differs.
    if apply.mode == EditMode::InPlace {
        if decisions.is_empty() {
            // Identity sweep: a clean graph rebuilt with no decisions is the
            // graph itself, so skip the apply entirely.
            apply.stats.identity += 1;
            return;
        }
        // The editor's per-node bookkeeping only wins while the dirty region
        // is a minority of the graph; past that the plain rebuild is cheaper.
        if estimated_touched * 2 < g.num_ands() {
            apply_decisions_in_place(g, decisions, apply.edit, rebuild_map, leaf_lits, out_lits);
            apply.stats.in_place += 1;
            return;
        }
    }
    let mut rebuilt = pool_take(pool);
    rebuild_with_decisions_into(g, decisions, &mut rebuilt, rebuild_map);
    rebuilt.cleanup_into_with(g, scratch);
    pool_give(pool, rebuilt);
    apply.stats.rebuilt += 1;
}

/// The [`EditMode`] selection and its observability counters, passed into a
/// sweep after the caller destructured its [`crate::PassContext`].
pub(crate) struct SweepApply<'a> {
    pub(crate) mode: EditMode,
    pub(crate) edit: &'a mut EditScratch,
    pub(crate) stats: &'a mut ApplyStats,
}

/// Applies the decisions by mutating `g` through an [`InPlaceEditor`]:
/// the same sweep order as [`rebuild_with_decisions_into`] followed by the
/// compacting `finish`, producing node-for-node identical bits (see the
/// `aig::edit` module docs for the argument).
fn apply_decisions_in_place<D: DecisionLookup>(
    g: &mut Aig,
    decisions: &D,
    edit: &mut EditScratch,
    map: &mut Vec<Lit>,
    leaf_lits: &mut Vec<Lit>,
    out_lits: &mut Vec<Lit>,
) {
    let n = g.len();
    map.clear();
    map.resize(n, Lit::FALSE);
    for &id in g.input_ids() {
        map[id] = Lit::from_node(id, false);
    }
    out_lits.clear();
    out_lits.extend_from_slice(g.outputs());

    let mut ed = InPlaceEditor::begin(g, edit);
    for id in 0..n {
        let Some((a, b)) = ed.graph().node(id).fanins() else {
            continue;
        };
        if let Some(d) = decisions.lookup(id) {
            leaf_lits.clear();
            leaf_lits.extend(d.leaves.iter().map(|&l| map[l]));
            map[id] = match &d.structure {
                Structure::SumOfProducts(sop) => build_sop_edit(&mut ed, sop, leaf_lits),
                Structure::Shannon(truth) => build_shannon_edit(&mut ed, truth, leaf_lits),
            };
        } else {
            let na = map[a.node()] ^ a.is_complemented();
            let nb = map[b.node()] ^ b.is_complemented();
            map[id] = ed.copy(id, na, nb);
        }
    }
    for l in out_lits.iter_mut() {
        *l = map[l.node()] ^ l.is_complemented();
    }
    ed.finish(out_lits);
}

/// Rebuilds `src` into a fresh graph, replacing each decided node by its new
/// structure over the mapped cut leaves and copying every other node verbatim.
pub fn rebuild_with_decisions(src: &Aig, decisions: &HashMap<NodeId, Decision>) -> Aig {
    let mut out = Aig::new();
    let mut map = Vec::new();
    rebuild_with_decisions_into(src, decisions, &mut out, &mut map);
    out
}

/// [`rebuild_with_decisions`] into a recycled destination graph and remap
/// table (both cleared and pre-sized here), producing identical bits.
pub(crate) fn rebuild_with_decisions_into<D: DecisionLookup>(
    src: &Aig,
    decisions: &D,
    out: &mut Aig,
    map: &mut Vec<Lit>,
) {
    out.clear_for_reuse();
    out.set_name(src.name().to_string());
    out.reserve_for(src.len(), src.num_ands());
    map.clear();
    map.resize(src.len(), Lit::FALSE);
    for (i, &id) in src.input_ids().iter().enumerate() {
        map[id] = out.add_input(src.input_name(i).to_string());
    }
    for id in src.node_ids() {
        let Some((a, b)) = src.node(id).fanins() else {
            continue;
        };
        if let Some(d) = decisions.lookup(id) {
            let leaf_lits: Vec<Lit> = d.leaves.iter().map(|&l| map[l]).collect();
            map[id] = match &d.structure {
                Structure::SumOfProducts(sop) => build_sop(out, sop, &leaf_lits),
                Structure::Shannon(truth) => build_shannon(out, truth, &leaf_lits),
            };
        } else {
            let na = map[a.node()] ^ a.is_complemented();
            let nb = map[b.node()] ^ b.is_complemented();
            map[id] = out.and(na, nb);
        }
    }
    for (i, &l) in src.outputs().iter().enumerate() {
        out.add_output(
            src.output_name(i).to_string(),
            map[l.node()] ^ l.is_complemented(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sop::isop;
    use aig::{cut_truth, random_equivalence_check, Cut};

    /// f = (a & b) | (a & c) has a redundant two-node structure when written as
    /// a & (b | c); a sweep proposing the ISOP of the 3-leaf cut should shrink it.
    fn redundant_aig() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let ac = g.and(a, c);
        let f = g.or(ab, ac);
        g.add_output("f", f);
        g
    }

    #[test]
    fn sweep_preserves_function_and_reduces_nodes() {
        let g = redundant_aig();
        let before = g.num_ands();
        let result = resynthesis_sweep(&g, Acceptance::strict(), |work, id| {
            let leaves: Vec<NodeId> = work.input_ids().to_vec();
            let cut = Cut::from_leaves(leaves.clone());
            let Ok(truth) = cut_truth(work, id, &cut) else {
                return vec![];
            };
            let sop = isop(&truth);
            let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
            let mffc = aig::Mffc::compute(work, id, &leaves);
            let added = crate::sop::count_sop_nodes(work, &sop, &leaf_lits, |n| mffc.contains(n));
            vec![Proposal {
                leaves,
                structure: Structure::SumOfProducts(sop),
                added,
                mffc_size: mffc.size(),
            }]
        });
        assert!(
            random_equivalence_check(&g, &result, 8, 3),
            "function must be preserved"
        );
        assert!(
            result.num_ands() <= before,
            "strict sweep never grows the network: {} -> {}",
            before,
            result.num_ands()
        );
    }

    #[test]
    fn sweep_without_proposals_is_identity_up_to_cleanup() {
        let g = redundant_aig();
        let result = resynthesis_sweep(&g, Acceptance::strict(), |_, _| vec![]);
        assert!(random_equivalence_check(&g, &result, 8, 5));
        assert_eq!(result.num_ands(), g.cleanup().num_ands());
    }

    #[test]
    fn rebuild_honours_decisions() {
        let g = redundant_aig();
        // Decide to replace the top OR node by the SOP over the primary inputs.
        let root = g.outputs()[0].node();
        let leaves: Vec<NodeId> = g.input_ids().to_vec();
        let cut = Cut::from_leaves(leaves.clone());
        let truth = cut_truth(&g, root, &cut).expect("covered");
        let mut decisions = HashMap::new();
        decisions.insert(
            root,
            Decision {
                leaves,
                structure: Structure::SumOfProducts(isop(&truth)),
                gain: 1,
            },
        );
        let rebuilt = rebuild_with_decisions(&g, &decisions).cleanup();
        assert!(random_equivalence_check(&g, &rebuilt, 8, 11));
        assert!(rebuilt.num_ands() <= g.num_ands());
    }

    #[test]
    fn zero_cost_acceptance_accepts_equal_size() {
        assert_eq!(Acceptance::zero_cost().min_gain, 0);
        assert_eq!(Acceptance::strict().min_gain, 1);
    }
}
