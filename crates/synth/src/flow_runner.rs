//! Applying whole synthesis flows and collecting their QoR.
//!
//! This is the reproduction of component 1 of the paper's framework (Figure 2):
//! the "synthesis tool" box that takes the HDL/design plus a flow and returns
//! labelled QoR data.  Flows are evaluated independently, so large batches are
//! data-parallel across CPU cores (the paper uses a 2 × 12-core machine for the
//! same reason: dataset collection dominates total runtime).

use aig::{random_equivalence_check, Aig, AigStats};
use flow_core::{CancelToken, Cancelled};
use rayon::prelude::*;

use crate::engine::{CutEngine, EditMode};
use crate::library::CellLibrary;
use crate::mapper::{map_with_ctx, MapperParams};
use crate::pass::PassContext;
use crate::passes::Transform;
use crate::qor::Qor;

/// Evaluates synthesis flows (sequences of [`Transform`]s) against one design.
#[derive(Debug, Clone)]
pub struct FlowRunner {
    library: CellLibrary,
    mapper_params: MapperParams,
    verify: bool,
    edit_mode: EditMode,
}

/// The result of running one flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Post-mapping quality of result.
    pub qor: Qor,
    /// Structural statistics of the optimised network before mapping.
    pub optimized: AigStats,
    /// Wall-clock runtime of passes + mapping in seconds.
    pub runtime_s: f64,
    /// `true` when functional verification was requested and passed.
    pub verified: bool,
}

impl FlowRunner {
    /// Creates a runner with the built-in 14 nm-like library and default mapping.
    pub fn new() -> Self {
        FlowRunner {
            library: CellLibrary::nangate14(),
            mapper_params: MapperParams::default(),
            verify: false,
            edit_mode: EditMode::default(),
        }
    }

    /// Creates a runner with an explicit library and mapper configuration.
    pub fn with_library(library: CellLibrary, mapper_params: MapperParams) -> Self {
        FlowRunner {
            library,
            mapper_params,
            verify: false,
            edit_mode: EditMode::default(),
        }
    }

    /// Selects how passes apply accepted replacements ([`EditMode::InPlace`]
    /// mutates the resident graph, [`EditMode::Rebuild`] re-emits into a
    /// fresh buffer — the pinned PR 5 shape).  Both modes are bit-identical;
    /// only throughput differs.  Applies to the contexts this runner creates
    /// itself ([`run`](Self::run) / [`run_batch`](Self::run_batch)); the
    /// `*_with_ctx` entry points follow the caller's context instead.
    pub fn with_edit_mode(mut self, edit_mode: EditMode) -> Self {
        self.edit_mode = edit_mode;
        self
    }

    /// The edit mode used for runner-created contexts.
    pub fn edit_mode(&self) -> EditMode {
        self.edit_mode
    }

    /// Enables per-flow functional verification by random simulation.
    ///
    /// Verification costs extra runtime and is mainly useful in tests and when
    /// developing new passes.
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// The cell library in use.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The mapper parameters in use.
    pub fn mapper_params(&self) -> MapperParams {
        self.mapper_params
    }

    /// Whether per-flow functional verification is enabled.
    pub fn verification_enabled(&self) -> bool {
        self.verify
    }

    /// Runs a single flow on `design` and returns its outcome.
    ///
    /// Evaluation goes through a fresh [`PassContext`] (the arena-recycling
    /// pass pipeline); results are bit-identical to the Reference
    /// free-function path (`apply_sequence` + `map_qor`).
    pub fn run(&self, design: &Aig, flow: &[Transform]) -> FlowOutcome {
        let mut ctx = PassContext::with_modes(CutEngine::default(), self.edit_mode);
        self.run_with_ctx(design, flow, &mut ctx)
    }

    /// Runs a single flow through a caller-owned [`PassContext`], so batch
    /// callers recycle one context's buffers across many flows.
    pub fn run_with_ctx(
        &self,
        design: &Aig,
        flow: &[Transform],
        ctx: &mut PassContext,
    ) -> FlowOutcome {
        self.try_run_with_ctx(design, flow, ctx, &CancelToken::never())
            .expect("a never-firing token cannot cancel")
    }

    /// [`run_with_ctx`](Self::run_with_ctx) under a cancellation budget:
    /// passes, verification and mapping poll `cancel` and unwind into `Err`
    /// once it fires.  The context stays reusable after cancellation.
    pub fn try_run_with_ctx(
        &self,
        design: &Aig,
        flow: &[Transform],
        ctx: &mut PassContext,
        cancel: &CancelToken,
    ) -> Result<FlowOutcome, Cancelled> {
        ctx.arm_cancel(cancel.clone());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_armed(design, flow, ctx)
        }));
        ctx.disarm_cancel();
        match outcome {
            Ok(result) => Ok(result),
            Err(payload) => match payload.downcast::<Cancelled>() {
                Ok(cancelled) => Err(*cancelled),
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }

    fn run_armed(&self, design: &Aig, flow: &[Transform], ctx: &mut PassContext) -> FlowOutcome {
        let start = std::time::Instant::now();
        let mut optimized = ctx.run_flow(design, flow);
        let verified = if self.verify {
            random_equivalence_check(design, &optimized, 8, 0x5EED)
        } else {
            false
        };
        let qor = map_with_ctx(&mut optimized, &self.library, self.mapper_params, ctx).qor();
        let outcome = FlowOutcome {
            qor,
            optimized: AigStats::of(&optimized),
            runtime_s: start.elapsed().as_secs_f64(),
            verified,
        };
        ctx.recycle(optimized);
        outcome
    }

    /// Runs many flows in parallel and returns their QoR in input order.
    ///
    /// This is the bulk data-collection primitive used to build training
    /// datasets (10,000 flows in the paper) and evaluation sets (100,000 flows).
    pub fn run_batch(&self, design: &Aig, flows: &[Vec<Transform>]) -> Vec<Qor> {
        flows
            .par_iter()
            .map(|flow| self.run(design, flow).qor)
            .collect()
    }
}

impl Default for FlowRunner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{Design, DesignScale};

    #[test]
    fn runs_a_flow_and_reports_qor() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let runner = FlowRunner::new().with_verification(true);
        let flow = [Transform::Balance, Transform::Rewrite, Transform::Refactor];
        let outcome = runner.run(&design, &flow);
        assert!(outcome.qor.area_um2 > 0.0);
        assert!(outcome.qor.delay_ps > 0.0);
        assert!(outcome.verified, "passes must preserve the function");
        assert!(outcome.runtime_s >= 0.0);
        assert!(outcome.optimized.num_ands <= design.num_ands());
    }

    #[test]
    fn different_flows_give_different_qor() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let runner = FlowRunner::new();
        let q1 = runner
            .run(&design, &[Transform::Balance, Transform::Rewrite])
            .qor;
        let q2 = runner
            .run(&design, &[Transform::RefactorZ, Transform::Restructure])
            .qor;
        let differs =
            (q1.area_um2 - q2.area_um2).abs() > 1e-9 || (q1.delay_ps - q2.delay_ps).abs() > 1e-9;
        assert!(differs, "the premise of the paper: flow choice changes QoR");
    }

    #[test]
    fn batch_matches_individual_runs() {
        let design = Design::Montgomery64.generate(DesignScale::Tiny);
        let runner = FlowRunner::new();
        let flows = vec![
            vec![Transform::Rewrite],
            vec![Transform::Balance, Transform::Refactor],
            vec![],
        ];
        let batch = runner.run_batch(&design, &flows);
        assert_eq!(batch.len(), 3);
        for (flow, q) in flows.iter().zip(&batch) {
            let single = runner.run(&design, flow).qor;
            assert!(
                (single.area_um2 - q.area_um2).abs() < 1e-9,
                "deterministic evaluation"
            );
            assert!((single.delay_ps - q.delay_ps).abs() < 1e-9);
        }
    }

    #[test]
    fn edit_modes_agree_bit_for_bit() {
        let design = Design::Montgomery64.generate(DesignScale::Tiny);
        let flow = [
            Transform::Balance,
            Transform::Rewrite,
            Transform::Refactor,
            Transform::Restructure,
        ];
        let rebuild = FlowRunner::new()
            .with_edit_mode(EditMode::Rebuild)
            .run(&design, &flow);
        let inplace = FlowRunner::new()
            .with_edit_mode(EditMode::InPlace)
            .run(&design, &flow);
        assert_eq!(rebuild.optimized.num_ands, inplace.optimized.num_ands);
        assert_eq!(rebuild.optimized.depth, inplace.optimized.depth);
        assert_eq!(rebuild.qor.area_um2, inplace.qor.area_um2);
        assert_eq!(rebuild.qor.delay_ps, inplace.qor.delay_ps);
    }

    #[test]
    fn empty_flow_is_baseline_mapping() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let runner = FlowRunner::new();
        let outcome = runner.run(&design, &[]);
        assert_eq!(outcome.optimized.num_ands, design.cleanup().num_ands());
    }
}
