//! NPN canonization of small Boolean functions.
//!
//! Two functions belong to the same NPN class when one can be obtained from the
//! other by Negating inputs, Permuting inputs and/or Negating the output.  The
//! technology mapper uses NPN-canonical truth tables as the key when matching a
//! cut function against the standard-cell library.

use std::collections::HashMap;

use aig::TruthTable;

/// Maximum function arity supported by the canonizer (library cells are ≤ 4 inputs).
pub const MAX_NPN_VARS: usize = 4;

/// The canonical representative of an NPN class together with the
/// transformation that maps the original function onto it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnClass {
    /// Canonical truth table (lexicographically smallest over the orbit).
    pub canonical: TruthTable,
    /// Whether the output had to be complemented to reach the canonical form.
    pub output_negated: bool,
    /// Permutation applied to the inputs: `perm[i]` is the original variable
    /// placed at canonical position `i`.
    pub permutation: Vec<usize>,
    /// Input complementation mask (bit `i` set means canonical input `i` is the
    /// complement of the original variable `perm[i]`).
    pub input_negation: u32,
}

/// Computes the NPN canonical form of a function by exhaustive orbit search.
///
/// The orbit of an `n`-input function has at most `2 * n! * 2^n` members
/// (≤ 768 for `n = 4`), so exhaustive search is cheap and exact.
///
/// # Panics
///
/// Panics if the function has more than [`MAX_NPN_VARS`] variables.
pub fn npn_canonical(f: &TruthTable) -> NpnClass {
    let n = f.num_vars();
    assert!(
        n <= MAX_NPN_VARS,
        "NPN canonization supports at most {MAX_NPN_VARS} inputs"
    );
    let mut best: Option<NpnClass> = None;
    let perms = permutations(n);
    for out_neg in [false, true] {
        let base = if out_neg { f.not() } else { f.clone() };
        for perm in &perms {
            let permuted = apply_permutation(&base, perm);
            for neg_mask in 0u32..(1 << n) {
                let candidate = apply_negation(&permuted, neg_mask);
                let better = match &best {
                    None => true,
                    Some(b) => candidate.cmp_bits(&b.canonical) == std::cmp::Ordering::Less,
                };
                if better {
                    best = Some(NpnClass {
                        canonical: candidate,
                        output_negated: out_neg,
                        permutation: perm.clone(),
                        input_negation: neg_mask,
                    });
                }
            }
        }
    }
    best.expect("orbit is never empty")
}

/// A memoizing wrapper around [`npn_canonical`].
///
/// Cut functions repeat heavily during technology mapping, so caching the
/// canonical form by raw truth bits removes almost all of the orbit searches.
/// Functions of up to [`MAX_NPN_VARS`] variables fit a single truth word, so
/// the cache key is a plain `(num_vars, word)` pair — the hit path performs no
/// heap allocation.
#[derive(Debug, Default)]
pub struct NpnCache {
    map: HashMap<(usize, u64), NpnClass>,
    hits: u64,
    misses: u64,
}

// The inline key relies on every supported function fitting one truth word.
const _: () = assert!(MAX_NPN_VARS <= 6, "NpnCache key holds a single word");

impl NpnCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the canonical class of `f`, computing and caching it if needed.
    pub fn canonical(&mut self, f: &TruthTable) -> NpnClass {
        let key = (f.num_vars(), f.words()[0]);
        if let Some(c) = self.map.get(&key) {
            self.hits += 1;
            return c.clone();
        }
        self.misses += 1;
        let c = npn_canonical(f);
        self.map.insert(key, c.clone());
        c
    }

    /// Number of cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    permute_rec(&mut items, 0, &mut out);
    out
}

fn permute_rec(items: &mut Vec<usize>, start: usize, out: &mut Vec<Vec<usize>>) {
    if start == items.len() {
        out.push(items.clone());
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute_rec(items, start + 1, out);
        items.swap(start, i);
    }
}

/// Applies an input permutation: canonical variable `i` reads original variable `perm[i]`.
fn apply_permutation(f: &TruthTable, perm: &[usize]) -> TruthTable {
    let n = f.num_vars();
    let mut out = TruthTable::zeros(n);
    for row in 0..f.num_rows() {
        // Build the original-row index corresponding to canonical row `row`.
        let mut src = 0usize;
        for (canon_var, &orig_var) in perm.iter().enumerate() {
            if row >> canon_var & 1 == 1 {
                src |= 1 << orig_var;
            }
        }
        out.set(row, f.get(src));
    }
    out
}

fn apply_negation(f: &TruthTable, mask: u32) -> TruthTable {
    let mut out = f.clone();
    for v in 0..f.num_vars() {
        if mask >> v & 1 == 1 {
            out = out.flip_var(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> TruthTable {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        a.and(&b)
    }

    #[test]
    fn npn_merges_and_family() {
        // AND, NAND, NOR, OR and all their input-phase variants form one class.
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let variants = [
            a.and(&b),
            a.and(&b).not(),
            a.not().and(&b.not()),
            a.or(&b),
            a.and(&b.not()),
        ];
        let canon: Vec<TruthTable> = variants
            .iter()
            .map(|f| npn_canonical(f).canonical)
            .collect();
        for c in &canon[1..] {
            assert_eq!(c, &canon[0]);
        }
    }

    #[test]
    fn npn_separates_and_from_xor() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let and_c = npn_canonical(&a.and(&b)).canonical;
        let xor_c = npn_canonical(&a.xor(&b)).canonical;
        assert_ne!(and_c, xor_c);
    }

    #[test]
    fn canonical_is_idempotent() {
        let f = and2();
        let c1 = npn_canonical(&f);
        let c2 = npn_canonical(&c1.canonical);
        assert_eq!(c1.canonical, c2.canonical);
    }

    #[test]
    fn three_input_majority_class() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let maj = a.and(&b).or(&a.and(&c)).or(&b.and(&c));
        let maj_neg_inputs = a
            .not()
            .and(&b.not())
            .or(&a.not().and(&c.not()))
            .or(&b.not().and(&c.not()));
        assert_eq!(
            npn_canonical(&maj).canonical,
            npn_canonical(&maj_neg_inputs).canonical,
            "majority is NPN-equivalent to its input-negated version"
        );
    }

    #[test]
    fn cache_hits_on_repeats() {
        let mut cache = NpnCache::new();
        let f = and2();
        let c1 = cache.canonical(&f);
        let c2 = cache.canonical(&f);
        assert_eq!(c1.canonical, c2.canonical);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn permutation_application_is_consistent() {
        // f = x0 & !x1; permuting [1, 0] must swap the roles of the variables.
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let f = a.and(&b.not());
        let swapped = apply_permutation(&f, &[1, 0]);
        assert_eq!(swapped, b.and(&a.not()));
    }

    #[test]
    fn constants_are_their_own_class() {
        let zero = TruthTable::zeros(2);
        let one = TruthTable::ones(2);
        // Output negation folds them into one class.
        assert_eq!(
            npn_canonical(&zero).canonical,
            npn_canonical(&one).canonical
        );
    }
}
