//! The `restructure` pass: cut-based re-decomposition via Shannon expansion.
//!
//! Analogue of the restructuring command in the paper's transformation set: a
//! reconvergence-driven cut is computed per node and the cut function is
//! re-decomposed as a mux (Shannon) tree, a structurally different shape than
//! the SOP form produced by `rewrite`/`refactor`.  Replacements are accepted
//! only when they strictly reduce the node count, but because the resulting
//! structure differs, running `restructure` between other passes opens up
//! optimisation opportunities they cannot reach on their own — which is exactly
//! why the ordering of transformations matters (Section 1 of the paper).

use aig::{Aig, Cut, CutTruthScratch, Lit, Mffc, NodeId};

use crate::decomp::{count_shannon_nodes, count_shannon_nodes_fast, count_shannon_nodes_sweep};
use crate::engine::{CutEngine, EditMode};
use crate::pass::{PassContext, ProposeScratch};
use crate::reconv::{reconv_cut, reconv_cut_sweep, reconv_cut_with, ReconvParams};
use crate::refactor::compute_truth;
use crate::resyn::{
    resynthesis_sweep, resynthesis_sweep_ctx, Acceptance, Proposal, Structure, SweepApply,
};

/// Parameters of the restructure pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestructureParams {
    /// Maximum number of leaves of the reconvergence-driven cut.
    pub max_leaves: usize,
}

impl Default for RestructureParams {
    fn default() -> Self {
        RestructureParams { max_leaves: 6 }
    }
}

/// Applies Shannon-decomposition restructuring.
pub fn restructure(aig: &Aig) -> Aig {
    restructure_with_params(aig, RestructureParams::default())
}

/// Applies Shannon-decomposition restructuring with explicit parameters.
pub fn restructure_with_params(aig: &Aig, params: RestructureParams) -> Aig {
    restructure_with_engine(aig, params, CutEngine::default())
}

/// Applies Shannon-decomposition restructuring with an explicit cut engine.
///
/// Both engines produce bit-identical results; `Fast` uses the scratch-based
/// allocation-free cone walk for the cut function.
pub fn restructure_with_engine(aig: &Aig, params: RestructureParams, engine: CutEngine) -> Aig {
    let mut scratch = CutTruthScratch::new();
    resynthesis_sweep(aig, Acceptance::strict(), |graph, id| {
        let mut proposals = Vec::new();
        propose(graph, id, params, engine, &mut scratch, &mut proposals);
        proposals
    })
}

/// The context path of [`restructure`]: transforms `g` in place, reusing the
/// context's cut-truth scratch and sweep buffers, producing identical bits.
pub(crate) fn restructure_ctx(g: &mut Aig, params: RestructureParams, ctx: &mut PassContext) {
    ctx.ensure_clean(g);
    let PassContext {
        engine,
        edit_mode,
        pool,
        scratch,
        propose: ps,
        sweep,
        edit,
        apply_stats,
        cancel,
        ..
    } = ctx;
    let engine = *engine;
    // The in-place pipeline runs the allocation-light propose path on top of
    // the per-sweep strash snapshot (bit-identical proposals, cheaper
    // lookups); the Rebuild mode keeps the pinned PR 5 propose path.
    let sweep_fast = *edit_mode == EditMode::InPlace && engine == CutEngine::Fast;
    if sweep_fast {
        ps.strash.rebuild(g);
    }
    resynthesis_sweep_ctx(
        g,
        Acceptance::strict(),
        sweep,
        pool,
        scratch,
        cancel,
        SweepApply {
            mode: *edit_mode,
            edit,
            stats: apply_stats,
        },
        |graph, id, out| {
            if sweep_fast {
                propose_sweep(graph, id, params, Acceptance::strict().min_gain, ps, out)
            } else {
                propose_ctx(graph, id, params, engine, ps, out)
            }
        },
    );
}

/// The in-place pipeline's proposal generator: emits exactly the proposals
/// of [`propose_ctx`] that the sweep's accept loop can accept (cost capped
/// at `mffc_size - min_gain`; dearer cones are rejected without finishing
/// the count), with the reconvergence cut grown through the leaf-stamped
/// variant and the Shannon cost dry-run answered by the per-sweep strash
/// snapshot.
fn propose_sweep(
    graph: &mut Aig,
    id: NodeId,
    params: RestructureParams,
    min_gain: i64,
    ps: &mut ProposeScratch,
    proposals: &mut Vec<Proposal>,
) {
    let mut cut_leaves = std::mem::take(&mut ps.cut_leaves);
    reconv_cut_sweep(
        graph,
        id,
        ReconvParams {
            max_leaves: params.max_leaves,
        },
        &mut ps.reconv,
        &mut cut_leaves,
    );
    if cut_leaves.len() < 3 || cut_leaves.len() > aig::MAX_TRUTH_VARS {
        ps.cut_leaves = cut_leaves;
        return;
    }
    let cut = Cut::from_leaves(cut_leaves);
    let truth = match aig::cut_truth_with(graph, id, &cut, &mut ps.truth) {
        Ok(t) => t,
        Err(_) => {
            ps.cut_leaves = cut.into_leaves();
            return;
        }
    };
    ps.leaf_lits.clear();
    ps.leaf_lits
        .extend(cut.leaves().iter().map(|&n| Lit::from_node(n, false)));
    let mffc = Mffc::compute(graph, id, cut.leaves());
    let budget = (mffc.size() as i64 - min_gain).max(0) as usize;
    let Some(added) = count_shannon_nodes_sweep(
        &ps.strash,
        &truth,
        &ps.leaf_lits,
        |n| mffc.contains(n),
        budget,
    ) else {
        ps.cut_leaves = cut.into_leaves();
        return;
    };
    proposals.push(Proposal {
        leaves: cut.leaves().to_vec(),
        structure: Structure::Shannon(truth),
        added,
        mffc_size: mffc.size(),
    });
    ps.cut_leaves = cut.into_leaves();
}

/// The context-path proposal generator: identical proposals to [`propose`],
/// computed through the context's recycled reconv/cut-truth scratch (the
/// Shannon cost estimator is already allocation-free).
fn propose_ctx(
    graph: &mut Aig,
    id: NodeId,
    params: RestructureParams,
    engine: CutEngine,
    ps: &mut ProposeScratch,
    proposals: &mut Vec<Proposal>,
) {
    let leaves = reconv_cut_with(
        graph,
        id,
        ReconvParams {
            max_leaves: params.max_leaves,
        },
        &mut ps.reconv,
    );
    if leaves.len() < 3 || leaves.len() > aig::MAX_TRUTH_VARS {
        return;
    }
    let cut = Cut::from_leaves(leaves.clone());
    let Ok(truth) = compute_truth(graph, id, &cut, engine, &mut ps.truth) else {
        return;
    };
    let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
    let mffc = Mffc::compute(graph, id, &leaves);
    let added = match engine {
        CutEngine::Reference => {
            count_shannon_nodes(graph, &truth, &leaf_lits, |n| mffc.contains(n))
        }
        CutEngine::Fast => {
            count_shannon_nodes_fast(graph, &truth, &leaf_lits, |n| mffc.contains(n))
        }
    };
    proposals.push(Proposal {
        leaves,
        structure: Structure::Shannon(truth),
        added,
        mffc_size: mffc.size(),
    });
}

fn propose(
    graph: &mut Aig,
    id: NodeId,
    params: RestructureParams,
    engine: CutEngine,
    scratch: &mut CutTruthScratch,
    proposals: &mut Vec<Proposal>,
) {
    let leaves = reconv_cut(
        graph,
        id,
        ReconvParams {
            max_leaves: params.max_leaves,
        },
    );
    if leaves.len() < 3 || leaves.len() > aig::MAX_TRUTH_VARS {
        return;
    }
    let cut = Cut::from_leaves(leaves.clone());
    let Ok(truth) = compute_truth(graph, id, &cut, engine, scratch) else {
        return;
    };
    let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
    let mffc = Mffc::compute(graph, id, &leaves);
    let added = match engine {
        CutEngine::Reference => {
            count_shannon_nodes(graph, &truth, &leaf_lits, |n| mffc.contains(n))
        }
        CutEngine::Fast => {
            count_shannon_nodes_fast(graph, &truth, &leaf_lits, |n| mffc.contains(n))
        }
    };
    proposals.push(Proposal {
        leaves,
        structure: Structure::Shannon(truth),
        added,
        mffc_size: mffc.size(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::random_equivalence_check;
    use circuits::{Design, DesignScale};

    /// A wasteful SOP-shaped cone that a mux decomposition expresses more cheaply:
    /// f = (s & a) | (!s & b) written as four products over (s, a, b, c).
    fn mux_as_sop() -> Aig {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 4);
        let (s, a, b, c) = (xs[0], xs[1], xs[2], xs[3]);
        let p1 = g.and_many(&[s, a, c]);
        let p2 = g.and_many(&[s, a, !c]);
        let p3 = g.and_many(&[!s, b, c]);
        let p4 = g.and_many(&[!s, b, !c]);
        let f = g.or_many(&[p1, p2, p3, p4]);
        g.add_output("f", f);
        g
    }

    #[test]
    fn restructure_preserves_function() {
        let g = mux_as_sop();
        let r = restructure(&g);
        assert!(random_equivalence_check(&g, &r, 16, 3));
    }

    #[test]
    fn restructure_simplifies_mux_shaped_logic() {
        let g = mux_as_sop();
        let r = restructure(&g);
        assert!(
            r.num_ands() < g.num_ands(),
            "restructure should shrink: {} -> {}",
            g.num_ands(),
            r.num_ands()
        );
    }

    #[test]
    fn restructure_on_designs_preserves_function() {
        for design in Design::ALL {
            let g = design.generate(DesignScale::Tiny);
            let r = restructure(&g);
            assert!(random_equivalence_check(&g, &r, 4, 13), "{design}");
        }
    }

    #[test]
    fn restructure_produces_different_structure_than_refactor() {
        // Both preserve function, but the node counts / depths generally differ,
        // demonstrating that the passes are not redundant with each other.
        let g = Design::Alu64.generate(DesignScale::Tiny);
        let rs = restructure(&g);
        let rf = crate::refactor::refactor(&g, false);
        assert!(random_equivalence_check(&rs, &rf, 4, 29));
        let same_size = rs.num_ands() == rf.num_ands() && rs.depth() == rf.depth();
        assert!(
            !same_size,
            "restructure and refactor should not be identical in effect"
        );
    }

    #[test]
    fn default_params_are_sane() {
        assert!(RestructureParams::default().max_leaves >= 4);
    }
}
