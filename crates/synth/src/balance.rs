//! The `balance` pass: AND-tree balancing for depth reduction.
//!
//! Analogue of ABC's `balance` command.  Maximal single-fanout AND trees are
//! collected and rebuilt as depth-balanced trees: the two lowest-arriving
//! operands are combined first, which minimises the depth of the tree for the
//! given leaf levels (a Huffman-style construction).

use aig::{Aig, Lit};

use crate::pass::{pool_give, PassContext};

/// Applies AND-tree balancing and returns the rebuilt network.
///
/// The result computes the same functions as the input; its depth is usually
/// lower and its node count comparable (structural hashing removes duplicates).
pub fn balance(aig: &Aig) -> Aig {
    let mut src = aig.cleanup();
    src.compute_fanouts();
    let mut out = Aig::with_name(src.name().to_string());
    let mut map: Vec<Option<Lit>> = vec![None; src.len()];
    map[0] = Some(Lit::FALSE);
    for (i, &id) in src.input_ids().iter().enumerate() {
        map[id] = Some(out.add_input(src.input_name(i).to_string()));
    }
    for id in src.node_ids() {
        if src.node(id).is_and() {
            build_balanced(&src, &mut out, &mut map, id);
        }
    }
    for (i, &l) in src.outputs().iter().enumerate() {
        let nl = map[l.node()].expect("output cone built") ^ l.is_complemented();
        out.add_output(src.output_name(i).to_string(), nl);
    }
    out.cleanup()
}

/// The context path of [`balance`]: transforms `g` in place through the
/// context's recycled buffers, producing identical bits.
pub(crate) fn balance_ctx(g: &mut Aig, ctx: &mut PassContext) {
    ctx.ensure_clean(g);
    g.compute_fanouts_cached();
    let mut out = ctx.take_buf();
    out.set_name(g.name().to_string());
    out.reserve_for(g.len(), g.num_ands());
    // Disjoint borrows: the remap table feeds the build loop while the
    // cancel cell polls between trees.  `g` is only overwritten by the final
    // `cleanup_into_with`, so a cancellation unwind leaves it untouched.
    let PassContext {
        pool,
        scratch,
        balance_map: map,
        cancel,
        ..
    } = ctx;
    map.clear();
    map.resize(g.len(), None);
    map[0] = Some(Lit::FALSE);
    for (i, &id) in g.input_ids().iter().enumerate() {
        map[id] = Some(out.add_input(g.input_name(i).to_string()));
    }
    for id in g.node_ids() {
        if g.node(id).is_and() {
            cancel.checkpoint();
            build_balanced(g, &mut out, map, id);
        }
    }
    for (i, &l) in g.outputs().iter().enumerate() {
        let nl = map[l.node()].expect("output cone built") ^ l.is_complemented();
        out.add_output(g.output_name(i).to_string(), nl);
    }
    out.cleanup_into_with(g, scratch);
    pool_give(pool, out);
}

/// Builds the balanced implementation of node `id` into `out`, memoising in `map`.
fn build_balanced(src: &Aig, out: &mut Aig, map: &mut Vec<Option<Lit>>, id: usize) -> Lit {
    if let Some(l) = map[id] {
        return l;
    }
    // Collect the leaves of the maximal AND tree rooted at `id`: follow
    // non-complemented fanin edges into single-fanout AND nodes.
    let mut leaves: Vec<Lit> = Vec::new();
    collect_conjuncts(src, Lit::from_node(id, false), id, &mut leaves);
    // Map every leaf into the new graph first.
    let mut operands: Vec<Lit> = Vec::with_capacity(leaves.len());
    for leaf in leaves {
        let mapped = if src.node(leaf.node()).is_and() {
            build_balanced(src, out, map, leaf.node())
        } else {
            map[leaf.node()].expect("inputs and constants are pre-mapped")
        };
        operands.push(mapped ^ leaf.is_complemented());
    }
    // Combine the two shallowest operands repeatedly.
    let result = balanced_and(out, operands);
    map[id] = Some(result);
    result
}

/// Collects the conjunction leaves of the AND tree rooted at `lit`.
///
/// Expansion continues through non-complemented edges into AND nodes that have
/// a single fanout (so no shared logic is duplicated), except for the root
/// itself which is always expanded.
fn collect_conjuncts(src: &Aig, lit: Lit, root: usize, leaves: &mut Vec<Lit>) {
    let id = lit.node();
    let expandable = !lit.is_complemented()
        && src.node(id).is_and()
        && (id == root || src.fanout_count(id) == 1);
    if expandable {
        let (a, b) = src.node(id).fanins().expect("AND node");
        collect_conjuncts(src, a, root, leaves);
        collect_conjuncts(src, b, root, leaves);
    } else {
        leaves.push(lit);
    }
}

/// ANDs the operands pairing the lowest-level literals first.
fn balanced_and(out: &mut Aig, mut operands: Vec<Lit>) -> Lit {
    if operands.is_empty() {
        return Lit::TRUE;
    }
    while operands.len() > 1 {
        // Sort descending by level so the two cheapest are at the tail.
        operands.sort_by_key(|l| std::cmp::Reverse(out.level(*l)));
        let a = operands.pop().expect("len > 1");
        let b = operands.pop().expect("len > 1");
        operands.push(out.and(a, b));
    }
    operands[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::random_equivalence_check;

    /// A deliberately skewed AND chain: depth = n - 1 before balancing.
    fn and_chain(n: usize) -> Aig {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", n);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = g.and(acc, x);
        }
        g.add_output("f", acc);
        g
    }

    #[test]
    fn balancing_reduces_chain_depth_to_logarithmic() {
        let g = and_chain(16);
        assert_eq!(g.depth(), 15);
        let b = balance(&g);
        assert_eq!(b.depth(), 4, "16-input AND balances to depth log2(16)");
        assert!(random_equivalence_check(&g, &b, 8, 42));
        assert_eq!(b.num_ands(), 15, "AND count is unchanged for a pure tree");
    }

    #[test]
    fn balancing_preserves_arbitrary_logic() {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 6);
        let a = g.xor(xs[0], xs[1]);
        let b = g.and(xs[2], xs[3]);
        let c = g.or(xs[4], xs[5]);
        let d = g.and(a, b);
        let e = g.and(d, c);
        let f = g.mux(xs[0], e, b);
        g.add_output("f", f);
        g.add_output("e", e);
        let bal = balance(&g);
        assert!(random_equivalence_check(&g, &bal, 16, 7));
        assert!(bal.depth() <= g.depth());
    }

    #[test]
    fn balancing_is_idempotent_on_depth() {
        let g = and_chain(13);
        let once = balance(&g);
        let twice = balance(&once);
        assert_eq!(once.depth(), twice.depth());
        assert!(random_equivalence_check(&once, &twice, 8, 9));
    }

    #[test]
    fn shared_nodes_are_not_duplicated() {
        // A 5-input AND whose internal node feeds a second output.
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 5);
        let ab = g.and(xs[0], xs[1]);
        let abc = g.and(ab, xs[2]);
        let abcd = g.and(abc, xs[3]);
        let abcde = g.and(abcd, xs[4]);
        g.add_output("f", abcde);
        g.add_output("mid", abc);
        let b = balance(&g);
        assert!(random_equivalence_check(&g, &b, 8, 21));
        // The shared node `abc` is a tree boundary, so node count cannot grow.
        assert!(b.num_ands() <= g.num_ands());
    }

    #[test]
    fn balances_complemented_operands() {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 4);
        let n0 = g.and(!xs[0], xs[1]);
        let n1 = g.and(n0, !xs[2]);
        let n2 = g.and(n1, xs[3]);
        g.add_output("f", !n2);
        let b = balance(&g);
        assert!(random_equivalence_check(&g, &b, 8, 77));
    }
}
