//! Sum-of-products resynthesis.
//!
//! The rewriting and refactoring passes re-express a cut function as an
//! irredundant sum of products (ISOP, Minato–Morreale algorithm) and rebuild it
//! as an AND/OR tree on top of the cut leaves.  A dry-run cost estimator shares
//! the construction logic so the gain of a candidate rewrite can be evaluated
//! before committing to it.

use aig::{Aig, Lit, NodeId, SmallTruth, TruthOps, TruthTable};

/// One product term over the cut leaves.
///
/// Bit `i` of `pos` (`neg`) means leaf `i` appears positively (negatively) in
/// the product.  A cube with both masks empty is the constant-true product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cube {
    /// Positive-literal mask.
    pub pos: u32,
    /// Negative-literal mask.
    pub neg: u32,
}

impl Cube {
    /// The constant-true cube (no literals).
    pub const TRUE: Cube = Cube { pos: 0, neg: 0 };

    /// Number of literals in the cube.
    pub fn num_literals(&self) -> u32 {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Returns the characteristic function of the cube over `num_vars` variables.
    pub fn truth(&self, num_vars: usize) -> TruthTable {
        let mut t = TruthTable::ones(num_vars);
        for v in 0..num_vars {
            if self.pos >> v & 1 == 1 {
                t = t.and(&TruthTable::var(v, num_vars));
            }
            if self.neg >> v & 1 == 1 {
                t = t.and(&TruthTable::var(v, num_vars).not());
            }
        }
        t
    }
}

/// A sum of products: the function is the OR of all cubes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sop {
    cubes: Vec<Cube>,
}

impl Sop {
    /// The constant-false cover (no cubes).
    pub fn zero() -> Self {
        Sop { cubes: Vec::new() }
    }

    /// The constant-true cover (one empty cube).
    pub fn one() -> Self {
        Sop {
            cubes: vec![Cube::TRUE],
        }
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals over all cubes.
    pub fn num_literals(&self) -> u32 {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Returns the characteristic function of the cover.
    pub fn truth(&self, num_vars: usize) -> TruthTable {
        let mut t = TruthTable::zeros(num_vars);
        for c in &self.cubes {
            t = t.or(&c.truth(num_vars));
        }
        t
    }
}

/// Computes an irredundant sum-of-products cover of `f` (Minato–Morreale).
///
/// The cover is exact: `isop(f).truth(n) == *f`.  This is the reference
/// entry point working on heap-backed tables; the resynthesis fast paths use
/// [`isop_fast`], which produces the identical cover without allocating.
pub fn isop(f: &TruthTable) -> Sop {
    let n = f.num_vars();
    let (cover, _) = isop_rec(f, f, n, n);
    cover
}

/// Allocation-free variant of [`isop`] for functions of up to
/// [`SmallTruth::MAX_VARS`] variables (wider functions fall back).
///
/// The recursion is the same generic code as [`isop`] running on inline
/// [`SmallTruth`] tables, so the cover is bit-identical.
pub fn isop_fast(f: &TruthTable) -> Sop {
    let n = f.num_vars();
    if n > SmallTruth::MAX_VARS {
        return isop(f);
    }
    let sf = SmallTruth::from_table(f);
    let (cover, _) = isop_rec(&sf, &sf, n, n);
    cover
}

/// [`isop_fast`] through a caller-owned cube arena (the pass pipeline's
/// recycled buffer).
///
/// The reference recursion builds one `Vec<Cube>` per interior call and
/// copies child cubes into the parent at every level; here every interior
/// cover is a contiguous range of `arena` (cleared on entry) and the
/// variable-insertion step mutates the ranges in place, so one ISOP performs
/// a single allocation — the returned cover — and zero cube copies.  The
/// cover is bit-identical to [`isop`]/[`isop_fast`] (same recursion, same
/// cube order: `!v`-cubes, then `v`-cubes, then the shared remainder).
pub fn isop_fast_with(f: &TruthTable, arena: &mut Vec<Cube>) -> Sop {
    let n = f.num_vars();
    if n > SmallTruth::MAX_VARS {
        return isop(f);
    }
    let sf = SmallTruth::from_table(f);
    arena.clear();
    let _ = isop_arena_rec(&sf, &sf, n, n, arena);
    Sop {
        cubes: arena.as_slice().to_vec(),
    }
}

/// A memoizing ISOP front: covers are pure functions of the truth table, so
/// the pass pipeline caches them across nodes, passes and whole flows.
///
/// Real designs repeat cut functions heavily (replicated S-boxes, datapath
/// slices), and successive passes of a flow revisit mostly-unchanged cones;
/// a hit replaces the whole Minato–Morreale recursion with one clone of the
/// cached cover.  Determinism of `isop` makes hits bit-identical to misses.
///
/// A context-local cache can additionally be backed by a process-wide
/// [`SharedIsopCache`]: local misses probe the shared tier before computing,
/// and freshly computed covers are published back, so concurrent workers
/// evaluating different flows of the same batch reuse each other's work.
#[derive(Debug, Default)]
pub struct IsopCache {
    map: std::collections::HashMap<(usize, [u64; 4]), Sop>,
    arena: Vec<Cube>,
    /// Overflow slot backing [`isop_ref`](Self::isop_ref) when the cover
    /// cannot live in the map (wide function or full cache).
    spill: Sop,
    /// Optional process-wide second tier probed on local misses.
    shared: Option<SharedIsopCache>,
}

/// Entry cap of [`IsopCache`] (≈ a few MB worst case); beyond it the cache
/// serves hits but stops growing.
const ISOP_CACHE_CAP: usize = 1 << 16;

impl IsopCache {
    /// Attaches (or detaches) the shared second tier.
    pub(crate) fn set_shared(&mut self, shared: Option<SharedIsopCache>) {
        self.shared = shared;
    }

    /// [`isop_fast`] with memoization; the cover is bit-identical.
    pub fn isop(&mut self, f: &TruthTable) -> Sop {
        let n = f.num_vars();
        if n > SmallTruth::MAX_VARS {
            return isop(f);
        }
        let mut key = [0u64; 4];
        for (slot, &word) in key.iter_mut().zip(f.words()) {
            *slot = word;
        }
        if let Some(sop) = self.map.get(&(n, key)) {
            return sop.clone();
        }
        let sop = match self.shared.as_ref().and_then(|s| s.probe(n, key)) {
            Some(sop) => sop,
            None => {
                let sop = isop_fast_with(f, &mut self.arena);
                if let Some(s) = &self.shared {
                    s.publish(n, key, &sop);
                }
                sop
            }
        };
        if self.map.len() < ISOP_CACHE_CAP {
            self.map.insert((n, key), sop.clone());
        }
        sop
    }

    /// [`isop`](Self::isop) returning a borrowed cover: the winner-only
    /// propose path costs many covers per node and materialises only the
    /// best, so it reads the cache without cloning.  The borrow is valid
    /// until the next call on the cache.
    pub(crate) fn isop_ref(&mut self, f: &TruthTable) -> &Sop {
        let n = f.num_vars();
        if n > SmallTruth::MAX_VARS {
            self.spill = isop(f);
            return &self.spill;
        }
        let mut key = [0u64; 4];
        for (slot, &word) in key.iter_mut().zip(f.words()) {
            *slot = word;
        }
        let IsopCache {
            map,
            arena,
            spill,
            shared,
        } = self;
        let compute = |arena: &mut Vec<Cube>| {
            if let Some(sop) = shared.as_ref().and_then(|s| s.probe(n, key)) {
                return sop;
            }
            let sop = isop_fast_with(f, arena);
            if let Some(s) = shared.as_ref() {
                s.publish(n, key, &sop);
            }
            sop
        };
        if map.len() >= ISOP_CACHE_CAP && !map.contains_key(&(n, key)) {
            *spill = compute(arena);
            return spill;
        }
        map.entry((n, key)).or_insert_with(|| compute(arena))
    }
}

/// A process-wide, thread-safe tier of the ISOP memo shared across contexts.
///
/// `evaluate_batch` and the exploration orchestrator hand one clone of this
/// to every worker's [`crate::PassContext`]; covers are pure functions of the
/// truth table and `isop` is deterministic, so a cross-worker hit returns
/// exactly the cover the worker would have computed — sharing is QoR-neutral
/// by construction and only saves the Minato–Morreale recursion.
///
/// Cheap to clone (an `Arc` handle).  Reads take a shared `RwLock` guard;
/// writes are one short exclusive insert per *distinct* truth function in the
/// whole batch, so contention stays negligible.
#[derive(Debug, Clone, Default)]
pub struct SharedIsopCache {
    inner: std::sync::Arc<SharedIsopInner>,
}

#[derive(Debug, Default)]
struct SharedIsopInner {
    map: std::sync::RwLock<std::collections::HashMap<(usize, [u64; 4]), Sop>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// Entry cap of the shared tier (larger than the per-context cap: it serves
/// a whole batch of flows across all workers).
const SHARED_ISOP_CACHE_CAP: usize = 1 << 18;

impl SharedIsopCache {
    /// Creates an empty shared cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached covers.
    pub fn len(&self) -> usize {
        self.inner.map.read().expect("isop cache poisoned").len()
    }

    /// Whether the cache holds no covers yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cross-context hits served so far.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Probes that fell through to a local computation.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn probe(&self, n: usize, key: [u64; 4]) -> Option<Sop> {
        let got = self
            .inner
            .map
            .read()
            .expect("isop cache poisoned")
            .get(&(n, key))
            .cloned();
        let counter = if got.is_some() {
            &self.inner.hits
        } else {
            &self.inner.misses
        };
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        got
    }

    fn publish(&self, n: usize, key: [u64; 4], sop: &Sop) {
        let mut map = self.inner.map.write().expect("isop cache poisoned");
        if map.len() < SHARED_ISOP_CACHE_CAP {
            map.entry((n, key)).or_insert_with(|| sop.clone());
        }
    }
}

/// Arena recursion of [`isop_fast_with`]: appends the cover of the interval
/// to `arena` and returns its characteristic function.
fn isop_arena_rec<T: TruthOps>(
    lower: &T,
    upper: &T,
    var: usize,
    num_vars: usize,
    arena: &mut Vec<Cube>,
) -> T {
    if lower.is_zero() {
        return T::zeros_like(num_vars);
    }
    if upper.is_one() {
        arena.push(Cube::TRUE);
        return T::ones_like(num_vars);
    }
    // Find the topmost variable either bound depends on.
    let mut v = var;
    loop {
        assert!(v > 0, "non-constant function must depend on some variable");
        v -= 1;
        if lower.depends_on(v) || upper.depends_on(v) {
            break;
        }
    }
    let l0 = lower.cofactor0(v);
    let l1 = lower.cofactor1(v);
    let u0 = upper.cofactor0(v);
    let u1 = upper.cofactor1(v);
    let start0 = arena.len();
    // Cubes that must contain !v.
    let f0 = isop_arena_rec(&l0.and(&u1.not()), &u0, v, num_vars, arena);
    let start1 = arena.len();
    // Cubes that must contain v.
    let f1 = isop_arena_rec(&l1.and(&u0.not()), &u1, v, num_vars, arena);
    let start_star = arena.len();
    // Remaining onset not yet covered, independent of v.
    let l_new = l0.and(&f0.not()).or(&l1.and(&f1.not()));
    let fstar = isop_arena_rec(&l_new, &u0.and(&u1), v, num_vars, arena);
    for c in &mut arena[start0..start1] {
        c.neg |= 1 << v;
    }
    for c in &mut arena[start1..start_star] {
        c.pos |= 1 << v;
    }
    let var_t = T::var_like(v, num_vars);
    f0.and(&var_t.not()).or(&f1.and(&var_t)).or(&fstar)
}

/// Recursive ISOP over the interval `[lower, upper]`; returns the cover and its
/// characteristic function.
fn isop_rec<T: TruthOps>(lower: &T, upper: &T, var: usize, num_vars: usize) -> (Sop, T) {
    if lower.is_zero() {
        return (Sop::zero(), T::zeros_like(num_vars));
    }
    if upper.is_one() {
        return (Sop::one(), T::ones_like(num_vars));
    }
    // Find the topmost variable either bound depends on.
    let mut v = var;
    loop {
        assert!(v > 0, "non-constant function must depend on some variable");
        v -= 1;
        if lower.depends_on(v) || upper.depends_on(v) {
            break;
        }
    }
    let l0 = lower.cofactor0(v);
    let l1 = lower.cofactor1(v);
    let u0 = upper.cofactor0(v);
    let u1 = upper.cofactor1(v);
    // Cubes that must contain !v.
    let (c0, f0) = isop_rec(&l0.and(&u1.not()), &u0, v, num_vars);
    // Cubes that must contain v.
    let (c1, f1) = isop_rec(&l1.and(&u0.not()), &u1, v, num_vars);
    // Remaining onset not yet covered, independent of v.
    let l_new = l0.and(&f0.not()).or(&l1.and(&f1.not()));
    let (cstar, fstar) = isop_rec(&l_new, &u0.and(&u1), v, num_vars);
    let mut cubes = Vec::with_capacity(c0.num_cubes() + c1.num_cubes() + cstar.num_cubes());
    for c in c0.cubes() {
        cubes.push(Cube {
            pos: c.pos,
            neg: c.neg | 1 << v,
        });
    }
    for c in c1.cubes() {
        cubes.push(Cube {
            pos: c.pos | 1 << v,
            neg: c.neg,
        });
    }
    cubes.extend_from_slice(cstar.cubes());
    let var_t = T::var_like(v, num_vars);
    let cover_fn = f0.and(&var_t.not()).or(&f1.and(&var_t)).or(&fstar);
    (Sop { cubes }, cover_fn)
}

// ---------------------------------------------------------------------------
// Construction / cost estimation
// ---------------------------------------------------------------------------

/// Abstraction over "building an AND" so the real construction and the dry-run
/// cost estimation share exactly the same structure.
trait GateSink {
    /// Handle to a (possibly virtual) signal.
    type Signal: Copy;

    fn leaf(&mut self, lit: Lit) -> Self::Signal;
    fn constant(&mut self, value: bool) -> Self::Signal;
    fn and(&mut self, a: Self::Signal, b: Self::Signal) -> Self::Signal;
    fn not(&mut self, a: Self::Signal) -> Self::Signal;
}

struct RealBuilder<'a> {
    aig: &'a mut Aig,
}

impl GateSink for RealBuilder<'_> {
    type Signal = Lit;

    fn leaf(&mut self, lit: Lit) -> Lit {
        lit
    }
    fn constant(&mut self, value: bool) -> Lit {
        if value {
            Lit::TRUE
        } else {
            Lit::FALSE
        }
    }
    fn and(&mut self, a: Lit, b: Lit) -> Lit {
        self.aig.and(a, b)
    }
    fn not(&mut self, a: Lit) -> Lit {
        !a
    }
}

/// A signal during cost estimation: either an existing literal or a virtual
/// node that would have to be created.
#[derive(Debug, Clone, Copy)]
enum CostSignal {
    Existing(Lit),
    Virtual { complemented: bool },
}

struct CostCounter<F: Fn(NodeId) -> bool, G: Fn(Lit, Lit) -> Option<Lit>> {
    /// Structural lookup: [`Aig::find_and`] or the per-sweep snapshot
    /// ([`crate::strash::SweepStrash`]) — both answer identically.
    find: G,
    /// Nodes that may *not* be counted as free reuse (e.g. the MFFC that the
    /// rewrite is about to delete).
    excluded: F,
    added: usize,
}

impl<F: Fn(NodeId) -> bool, G: Fn(Lit, Lit) -> Option<Lit>> GateSink for CostCounter<F, G> {
    type Signal = CostSignal;

    fn leaf(&mut self, lit: Lit) -> CostSignal {
        CostSignal::Existing(lit)
    }
    fn constant(&mut self, value: bool) -> CostSignal {
        CostSignal::Existing(if value { Lit::TRUE } else { Lit::FALSE })
    }
    fn and(&mut self, a: CostSignal, b: CostSignal) -> CostSignal {
        if let (CostSignal::Existing(x), CostSignal::Existing(y)) = (a, b) {
            if let Some(found) = (self.find)(x, y) {
                if found.is_const() || !(self.excluded)(found.node()) {
                    return CostSignal::Existing(found);
                }
            }
        }
        self.added += 1;
        CostSignal::Virtual {
            complemented: false,
        }
    }
    fn not(&mut self, a: CostSignal) -> CostSignal {
        match a {
            CostSignal::Existing(l) => CostSignal::Existing(!l),
            CostSignal::Virtual { complemented } => CostSignal::Virtual {
                complemented: !complemented,
            },
        }
    }
}

/// Builds (or costs) the SOP over the given leaf literals using balanced
/// AND/OR trees.
fn emit_sop<S: GateSink>(sink: &mut S, sop: &Sop, leaves: &[Lit]) -> S::Signal {
    if sop.num_cubes() == 0 {
        return sink.constant(false);
    }
    let mut cube_signals = Vec::with_capacity(sop.num_cubes());
    for cube in sop.cubes() {
        let mut lits = Vec::new();
        for (v, &leaf) in leaves.iter().enumerate() {
            if cube.pos >> v & 1 == 1 {
                lits.push(sink.leaf(leaf));
            } else if cube.neg >> v & 1 == 1 {
                let l = sink.leaf(leaf);
                lits.push(sink.not(l));
            }
        }
        let product = reduce_balanced(sink, lits, true);
        cube_signals.push(product);
    }
    // OR of cubes: complement, AND, complement.
    let negated: Vec<S::Signal> = cube_signals.into_iter().map(|s| sink.not(s)).collect();
    let all_off = reduce_balanced(sink, negated, true);
    sink.not(all_off)
}

fn reduce_balanced<S: GateSink>(
    sink: &mut S,
    mut items: Vec<S::Signal>,
    and_identity: bool,
) -> S::Signal {
    if items.is_empty() {
        return sink.constant(and_identity);
    }
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            if let Some(b) = it.next() {
                next.push(sink.and(a, b));
            } else {
                next.push(a);
            }
        }
        items = next;
    }
    items.pop().expect("non-empty")
}

/// Builds the SOP into `aig` on top of `leaves` and returns the root literal.
///
/// Leaf `i` of the SOP corresponds to `leaves[i]`.
pub fn build_sop(aig: &mut Aig, sop: &Sop, leaves: &[Lit]) -> Lit {
    let mut builder = RealBuilder { aig };
    emit_sop(&mut builder, sop, leaves)
}

/// [`build_sop`] through an in-place editing session: same gate emission
/// order, so the same structural merges, producing identical bits.
struct EditBuilder<'a, 'b> {
    ed: &'a mut aig::InPlaceEditor<'b>,
}

impl GateSink for EditBuilder<'_, '_> {
    type Signal = Lit;

    fn leaf(&mut self, lit: Lit) -> Lit {
        lit
    }
    fn constant(&mut self, value: bool) -> Lit {
        if value {
            Lit::TRUE
        } else {
            Lit::FALSE
        }
    }
    fn and(&mut self, a: Lit, b: Lit) -> Lit {
        self.ed.and(a, b)
    }
    fn not(&mut self, a: Lit) -> Lit {
        !a
    }
}

/// Builds the SOP into a live [`aig::InPlaceEditor`] session over the (already
/// remapped) leaf literals — the in-place counterpart of [`build_sop`].
pub(crate) fn build_sop_edit(ed: &mut aig::InPlaceEditor<'_>, sop: &Sop, leaves: &[Lit]) -> Lit {
    let mut builder = EditBuilder { ed };
    emit_sop(&mut builder, sop, leaves)
}

/// Estimates how many *new* AND nodes building the SOP would add to `aig`,
/// reusing structurally present nodes except those for which `excluded`
/// returns `true`.
pub fn count_sop_nodes(
    aig: &Aig,
    sop: &Sop,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool,
) -> usize {
    let mut counter = CostCounter {
        find: |x, y| aig.find_and(x, y),
        excluded,
        added: 0,
    };
    emit_sop(&mut counter, sop, leaves);
    counter.added
}

/// Reusable buffers of [`count_sop_nodes_with`].
#[derive(Debug, Default)]
pub struct SopCostScratch {
    cube_signals: Vec<CostSignal>,
    lits: Vec<CostSignal>,
}

/// [`count_sop_nodes`] through caller-owned scratch buffers: the dry-run
/// allocates nothing (cube/literal signal vectors are recycled and the
/// balanced reduction runs in place) and returns the identical count.
pub fn count_sop_nodes_with(
    aig: &Aig,
    sop: &Sop,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool,
    scratch: &mut SopCostScratch,
) -> usize {
    count_sop_nodes_with_finder(|x, y| aig.find_and(x, y), sop, leaves, excluded, scratch)
}

/// [`count_sop_nodes_with`] served by the per-sweep strash snapshot and
/// capped at `budget` — the in-place propose pipeline's cost estimator.
///
/// Returns `None` as soon as the count provably exceeds `budget`, `Some(n)`
/// with the exact count otherwise.  The cap is lossless for the sweep's
/// accept loop: a proposal is only viable when `added <= mffc_size -
/// min_gain`, so callers pass that bound as the budget — capped covers are
/// exactly the ones the accept loop would reject, and surviving counts are
/// bit-identical to the uncapped dry-run.
pub(crate) fn count_sop_nodes_sweep(
    strash: &crate::strash::SweepStrash,
    sop: &Sop,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool,
    scratch: &mut SopCostScratch,
    budget: usize,
) -> Option<usize> {
    let mut counter = CostCounter {
        find: |x, y| strash.find_and(x, y),
        excluded,
        added: 0,
    };
    if sop.num_cubes() == 0 {
        return Some(0); // emit_sop returns the constant; nothing is added
    }
    let SopCostScratch { cube_signals, lits } = scratch;
    cube_signals.clear();
    for cube in sop.cubes() {
        lits.clear();
        for (v, &leaf) in leaves.iter().enumerate() {
            if cube.pos >> v & 1 == 1 {
                lits.push(counter.leaf(leaf));
            } else if cube.neg >> v & 1 == 1 {
                let l = counter.leaf(leaf);
                lits.push(counter.not(l));
            }
        }
        let product = reduce_balanced_in_place(&mut counter, lits, true);
        cube_signals.push(product);
        if counter.added > budget {
            return None;
        }
    }
    // OR of cubes: complement, AND, complement — same shape as emit_sop.
    for s in cube_signals.iter_mut() {
        *s = counter.not(*s);
    }
    let all_off = reduce_balanced_in_place(&mut counter, cube_signals, true);
    let _ = counter.not(all_off);
    if counter.added > budget {
        return None;
    }
    Some(counter.added)
}

fn count_sop_nodes_with_finder(
    find: impl Fn(Lit, Lit) -> Option<Lit>,
    sop: &Sop,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool,
    scratch: &mut SopCostScratch,
) -> usize {
    let mut counter = CostCounter {
        find,
        excluded,
        added: 0,
    };
    if sop.num_cubes() == 0 {
        return 0; // emit_sop returns the constant; nothing is added
    }
    let SopCostScratch { cube_signals, lits } = scratch;
    cube_signals.clear();
    for cube in sop.cubes() {
        lits.clear();
        for (v, &leaf) in leaves.iter().enumerate() {
            if cube.pos >> v & 1 == 1 {
                lits.push(counter.leaf(leaf));
            } else if cube.neg >> v & 1 == 1 {
                let l = counter.leaf(leaf);
                lits.push(counter.not(l));
            }
        }
        let product = reduce_balanced_in_place(&mut counter, lits, true);
        cube_signals.push(product);
    }
    // OR of cubes: complement, AND, complement — same shape as emit_sop.
    for s in cube_signals.iter_mut() {
        *s = counter.not(*s);
    }
    let all_off = reduce_balanced_in_place(&mut counter, cube_signals, true);
    let _ = counter.not(all_off);
    counter.added
}

/// [`reduce_balanced`] over a recycled vector: identical pairing order, the
/// level's results overwrite the vector's front instead of a fresh `Vec`.
fn reduce_balanced_in_place<S: GateSink>(
    sink: &mut S,
    items: &mut Vec<S::Signal>,
    and_identity: bool,
) -> S::Signal {
    if items.is_empty() {
        return sink.constant(and_identity);
    }
    while items.len() > 1 {
        let mut write = 0;
        let mut read = 0;
        while read < items.len() {
            items[write] = if read + 1 < items.len() {
                sink.and(items[read], items[read + 1])
            } else {
                items[read]
            };
            write += 1;
            read += 2;
        }
        items.truncate(write);
    }
    items[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_truth(num_vars: usize, seed: u64) -> TruthTable {
        let mut t = TruthTable::zeros(num_vars);
        let mut state = seed | 1;
        for row in 0..t.num_rows() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if state.wrapping_mul(0x2545_F491_4F6C_DD1D) & 1 == 1 {
                t.set(row, true);
            }
        }
        t
    }

    #[test]
    fn isop_covers_exactly() {
        for num_vars in 1..=6 {
            for seed in 1..=10u64 {
                let f = random_truth(num_vars, seed * 7 + num_vars as u64);
                let cover = isop(&f);
                assert_eq!(cover.truth(num_vars), f, "nv={num_vars} seed={seed}");
            }
        }
    }

    #[test]
    fn isop_fast_is_identical_to_reference() {
        for num_vars in 1..=8 {
            for seed in 1..=12u64 {
                let f = random_truth(num_vars, seed * 13 + num_vars as u64);
                assert_eq!(isop(&f), isop_fast(&f), "nv={num_vars} seed={seed}");
            }
        }
        assert_eq!(
            isop(&TruthTable::zeros(4)),
            isop_fast(&TruthTable::zeros(4))
        );
        assert_eq!(isop(&TruthTable::ones(4)), isop_fast(&TruthTable::ones(4)));
    }

    #[test]
    fn isop_arena_and_cache_are_identical_to_reference() {
        let mut arena = Vec::new();
        let mut cache = IsopCache::default();
        for num_vars in 1..=8 {
            for seed in 1..=12u64 {
                let f = random_truth(num_vars, seed * 13 + num_vars as u64);
                let reference = isop(&f);
                assert_eq!(
                    reference,
                    isop_fast_with(&f, &mut arena),
                    "arena nv={num_vars} seed={seed}"
                );
                // Twice through the cache: miss then hit, both identical.
                assert_eq!(reference, cache.isop(&f), "miss nv={num_vars} seed={seed}");
                assert_eq!(reference, cache.isop(&f), "hit nv={num_vars} seed={seed}");
            }
        }
        assert_eq!(
            isop(&TruthTable::zeros(4)),
            isop_fast_with(&TruthTable::zeros(4), &mut arena)
        );
        assert_eq!(isop(&TruthTable::ones(4)), cache.isop(&TruthTable::ones(4)));
    }

    #[test]
    fn scratch_cost_counter_is_identical_to_reference() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 6);
        // Pre-existing structure so the reuse path (find_and) is exercised.
        let ab = g.and(inputs[0], inputs[1]);
        let cd = g.and(inputs[2], !inputs[3]);
        let top = g.and(ab, cd);
        g.add_output("keep", top);
        let mut scratch = SopCostScratch::default();
        for num_vars in 1..=6usize {
            for seed in 1..=15u64 {
                let f = random_truth(num_vars, seed * 31 + num_vars as u64);
                let sop = isop(&f);
                let leaves = &inputs[..num_vars];
                for excluded in [ab.node(), top.node(), usize::MAX] {
                    let reference = count_sop_nodes(&g, &sop, leaves, |n| n == excluded);
                    let fast =
                        count_sop_nodes_with(&g, &sop, leaves, |n| n == excluded, &mut scratch);
                    assert_eq!(reference, fast, "nv={num_vars} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn isop_of_constants() {
        assert_eq!(isop(&TruthTable::zeros(3)).num_cubes(), 0);
        let one = isop(&TruthTable::ones(3));
        assert_eq!(one.num_cubes(), 1);
        assert_eq!(one.cubes()[0], Cube::TRUE);
    }

    #[test]
    fn isop_of_single_variable() {
        let f = TruthTable::var(2, 4);
        let cover = isop(&f);
        assert_eq!(cover.num_cubes(), 1);
        assert_eq!(
            cover.cubes()[0],
            Cube {
                pos: 1 << 2,
                neg: 0
            }
        );
        let g = f.not();
        let cover_n = isop(&g);
        assert_eq!(
            cover_n.cubes()[0],
            Cube {
                pos: 0,
                neg: 1 << 2
            }
        );
    }

    #[test]
    fn isop_is_reasonably_small_for_and() {
        let a = TruthTable::var(0, 4);
        let b = TruthTable::var(1, 4);
        let c = TruthTable::var(2, 4);
        let d = TruthTable::var(3, 4);
        let f = a.and(&b).and(&c).and(&d);
        let cover = isop(&f);
        assert_eq!(cover.num_cubes(), 1);
        assert_eq!(cover.num_literals(), 4);
    }

    #[test]
    fn build_sop_realises_the_function() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        for seed in 1..=6u64 {
            let f = random_truth(4, seed);
            let cover = isop(&f);
            let root = build_sop(&mut g, &cover, &inputs);
            // Verify by simulation over all 16 assignments.
            let mut probe = g.clone();
            probe.add_output("f", root);
            let sim = aig::Simulator::new(&probe);
            for row in 0..16 {
                let bits: Vec<bool> = (0..4).map(|i| row >> i & 1 == 1).collect();
                let got = *sim.evaluate(&bits).last().expect("one output");
                assert_eq!(got, f.get(row), "seed={seed} row={row}");
            }
        }
    }

    #[test]
    fn cost_estimation_reuses_existing_structure() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        g.add_output("keep", ab);
        // f = a & b & c : the a&b part already exists, so only one new node is needed.
        let t = TruthTable::var(0, 3)
            .and(&TruthTable::var(1, 3))
            .and(&TruthTable::var(2, 3));
        let cover = isop(&t);
        let added = count_sop_nodes(&g, &cover, &[a, b, c], |_| false);
        assert_eq!(added, 1);
        // With the existing node excluded (e.g. it is in the MFFC being replaced),
        // the estimate must pay for it again.
        let added_excl = count_sop_nodes(&g, &cover, &[a, b, c], |id| id == ab.node());
        assert_eq!(added_excl, 2);
    }

    #[test]
    fn cost_matches_actual_build_for_fresh_structure() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 4);
        let f = random_truth(4, 99);
        let cover = isop(&f);
        let estimated = count_sop_nodes(&g, &cover, &inputs, |_| false);
        let before = g.num_ands();
        let _ = build_sop(&mut g, &cover, &inputs);
        let actual = g.num_ands() - before;
        assert!(
            actual <= estimated,
            "structural hashing can only make the real build cheaper: actual {actual} vs estimated {estimated}"
        );
    }

    #[test]
    fn cube_truth_and_literals() {
        let c = Cube {
            pos: 0b01,
            neg: 0b10,
        };
        assert_eq!(c.num_literals(), 2);
        let t = c.truth(2);
        assert!(t.get(0b01));
        assert!(!t.get(0b11));
        assert!(!t.get(0b00));
    }
}
