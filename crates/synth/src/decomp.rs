//! Shannon (mux-tree) decomposition of cut functions.
//!
//! The `restructure` pass re-expresses a cut function as a tree of 2-to-1
//! multiplexers obtained by recursive Shannon expansion, which produces a
//! structurally different network than the sum-of-products form used by
//! `rewrite`/`refactor`.

use aig::{Aig, Lit, NodeId, SmallTruth, TruthOps, TruthTable};

/// Builds the Shannon decomposition of `f` into `aig` over the leaf literals.
///
/// Leaf `i` of the function corresponds to `leaves[i]`.  Returns the root literal.
pub fn build_shannon(aig: &mut Aig, f: &TruthTable, leaves: &[Lit]) -> Lit {
    if f.is_zero() {
        return Lit::FALSE;
    }
    if f.is_one() {
        return Lit::TRUE;
    }
    let support = f.support();
    if support.len() == 1 {
        let v = support[0];
        let leaf = leaves[v];
        return if f == &TruthTable::var(v, f.num_vars()) {
            leaf
        } else {
            !leaf
        };
    }
    let v = pick_split_var(f, &support);
    let f0 = f.cofactor0(v);
    let f1 = f.cofactor1(v);
    let s0 = build_shannon(aig, &f0, leaves);
    let s1 = build_shannon(aig, &f1, leaves);
    aig.mux(leaves[v], s1, s0)
}

/// Estimates how many new AND nodes [`build_shannon`] would add to `aig`,
/// reusing already-present structure except nodes for which `excluded` is true.
///
/// The estimate is conservative (an upper bound): it assumes the recursion
/// creates fresh nodes whenever either mux operand is itself fresh.  This is
/// the reference entry point; the restructure fast path uses
/// [`count_shannon_nodes_fast`], which returns the identical count without
/// allocating during the recursion.
pub fn count_shannon_nodes(
    aig: &Aig,
    f: &TruthTable,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
) -> usize {
    count_rec(aig, f, leaves, excluded).1
}

/// Allocation-free variant of [`count_shannon_nodes`] for functions of up to
/// [`SmallTruth::MAX_VARS`] variables (wider functions fall back).
pub fn count_shannon_nodes_fast(
    aig: &Aig,
    f: &TruthTable,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
) -> usize {
    if f.num_vars() > SmallTruth::MAX_VARS {
        return count_shannon_nodes(aig, f, leaves, excluded);
    }
    count_rec(aig, &SmallTruth::from_table(f), leaves, excluded).1
}

/// Returns `(existing_literal_if_free, added_nodes)`.
fn count_rec<T: TruthOps>(
    aig: &Aig,
    f: &T,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
) -> (Option<Lit>, usize) {
    if f.is_zero() {
        return (Some(Lit::FALSE), 0);
    }
    if f.is_one() {
        return (Some(Lit::TRUE), 0);
    }
    let mut support = [0usize; aig::MAX_TRUTH_VARS];
    let mut num_support = 0usize;
    for v in 0..TruthOps::num_vars(f) {
        if f.depends_on(v) {
            support[num_support] = v;
            num_support += 1;
        }
    }
    let support = &support[..num_support];
    if support.len() == 1 {
        let v = support[0];
        let leaf = leaves[v];
        let lit = if f == &T::var_like(v, TruthOps::num_vars(f)) {
            leaf
        } else {
            !leaf
        };
        return (Some(lit), 0);
    }
    let v = pick_split_var(f, support);
    let (l0, c0) = count_rec(aig, &f0_of(f, v), leaves, excluded);
    let (l1, c1) = count_rec(aig, &f1_of(f, v), leaves, excluded);
    let mut added = c0 + c1;
    // The mux needs sel&t, !sel&e and an OR node unless the pieces already exist.
    let sel = leaves[v];
    let reuse = |x: Lit, y: Lit, aig: &Aig| -> Option<Lit> {
        aig.find_and(x, y)
            .filter(|l| l.is_const() || !excluded(l.node()))
    };
    match (l1, l0) {
        (Some(t), Some(e)) => {
            let a = reuse(sel, t, aig);
            let b = reuse(!sel, e, aig);
            if a.is_none() {
                added += 1;
            }
            if b.is_none() {
                added += 1;
            }
            match (a, b) {
                (Some(x), Some(y)) => {
                    if let Some(o) = reuse(!x, !y, aig) {
                        (Some(!o), added)
                    } else {
                        (None, added + 1)
                    }
                }
                _ => (None, added + 1),
            }
        }
        _ => (None, added + 3),
    }
}

fn f0_of<T: TruthOps>(f: &T, v: usize) -> T {
    f.cofactor0(v)
}

fn f1_of<T: TruthOps>(f: &T, v: usize) -> T {
    f.cofactor1(v)
}

/// Picks the splitting variable: the support variable whose cofactors are most
/// unbalanced in ones-count, which tends to expose constant branches early.
fn pick_split_var<T: TruthOps>(f: &T, support: &[usize]) -> usize {
    let mut best = support[0];
    let mut best_score = -1i64;
    for &v in support {
        let c0 = TruthOps::count_ones(&f.cofactor0(v)) as i64;
        let c1 = TruthOps::count_ones(&f.cofactor1(v)) as i64;
        let half = (1i64 << TruthOps::num_vars(f)) / 2;
        // Distance of each cofactor from "constant": prefer splits that make a
        // cofactor nearly constant 0 or constant 1.
        let score = (c0 - half).abs() + (c1 - half).abs();
        if score > best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Simulator;

    fn random_truth(num_vars: usize, seed: u64) -> TruthTable {
        let mut t = TruthTable::zeros(num_vars);
        let mut state = seed | 1;
        for row in 0..t.num_rows() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if state.wrapping_mul(0x2545_F491_4F6C_DD1D) & 1 == 1 {
                t.set(row, true);
            }
        }
        t
    }

    #[test]
    fn shannon_realises_the_function() {
        for seed in 1..=8u64 {
            let mut g = Aig::new();
            let inputs = g.add_inputs("x", 5);
            let f = random_truth(5, seed);
            let root = build_shannon(&mut g, &f, &inputs);
            g.add_output("f", root);
            let sim = Simulator::new(&g);
            for row in 0..32 {
                let bits: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
                assert_eq!(sim.evaluate(&bits)[0], f.get(row), "seed={seed} row={row}");
            }
        }
    }

    #[test]
    fn shannon_handles_constants_and_literals() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 3);
        assert_eq!(
            build_shannon(&mut g, &TruthTable::zeros(3), &inputs),
            Lit::FALSE
        );
        assert_eq!(
            build_shannon(&mut g, &TruthTable::ones(3), &inputs),
            Lit::TRUE
        );
        assert_eq!(
            build_shannon(&mut g, &TruthTable::var(1, 3), &inputs),
            inputs[1]
        );
        assert_eq!(
            build_shannon(&mut g, &TruthTable::var(2, 3).not(), &inputs),
            !inputs[2]
        );
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn count_is_an_upper_bound_on_build() {
        for seed in 10..=14u64 {
            let mut g = Aig::new();
            let inputs = g.add_inputs("x", 4);
            let f = random_truth(4, seed);
            let estimated = count_shannon_nodes(&g, &f, &inputs, |_| false);
            let before = g.num_ands();
            build_shannon(&mut g, &f, &inputs);
            let actual = g.num_ands() - before;
            assert!(
                actual <= estimated,
                "seed={seed}: actual {actual} > estimated {estimated}"
            );
        }
    }

    #[test]
    fn fast_count_is_identical_to_reference() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 6);
        let pre0 = g.and(inputs[0], inputs[1]);
        let pre1 = g.mux(inputs[2], pre0, inputs[3]);
        g.add_output("keep", pre1);
        for nv in 2..=6usize {
            for seed in 1..=10u64 {
                let f = random_truth(nv, seed * 31 + nv as u64);
                let leaves = &inputs[..nv];
                let reference = count_shannon_nodes(&g, &f, leaves, |_| false);
                let fast = count_shannon_nodes_fast(&g, &f, leaves, |_| false);
                assert_eq!(reference, fast, "nv={nv} seed={seed}");
            }
        }
    }

    #[test]
    fn count_reuses_existing_structure() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let existing = g.and(a, b);
        g.add_output("keep", existing);
        // f = a & b is already present, so zero new nodes are needed.
        let f = TruthTable::var(0, 2).and(&TruthTable::var(1, 2));
        let added = count_shannon_nodes(&g, &f, &[a, b], |_| false);
        assert_eq!(added, 0);
    }
}
