//! Shannon (mux-tree) decomposition of cut functions.
//!
//! The `restructure` pass re-expresses a cut function as a tree of 2-to-1
//! multiplexers obtained by recursive Shannon expansion, which produces a
//! structurally different network than the sum-of-products form used by
//! `rewrite`/`refactor`.

use aig::{Aig, InPlaceEditor, Lit, NodeId, SmallTruth, TruthOps, TruthTable};

/// Abstraction over "building a mux" so the fresh-graph construction and the
/// in-place editing session share the identical recursion (and therefore emit
/// gates in the identical order — required for bit-identity).
trait MuxSink {
    fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit;
}

impl MuxSink for Aig {
    fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        Aig::mux(self, sel, t, e)
    }
}

impl MuxSink for InPlaceEditor<'_> {
    fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        InPlaceEditor::mux(self, sel, t, e)
    }
}

fn build_shannon_rec<S: MuxSink>(sink: &mut S, f: &TruthTable, leaves: &[Lit]) -> Lit {
    if f.is_zero() {
        return Lit::FALSE;
    }
    if f.is_one() {
        return Lit::TRUE;
    }
    let support = f.support();
    if support.len() == 1 {
        let v = support[0];
        let leaf = leaves[v];
        return if f == &TruthTable::var(v, f.num_vars()) {
            leaf
        } else {
            !leaf
        };
    }
    let v = pick_split_var(f, &support);
    let f0 = f.cofactor0(v);
    let f1 = f.cofactor1(v);
    let s0 = build_shannon_rec(sink, &f0, leaves);
    let s1 = build_shannon_rec(sink, &f1, leaves);
    sink.mux(leaves[v], s1, s0)
}

/// Builds the Shannon decomposition of `f` into `aig` over the leaf literals.
///
/// Leaf `i` of the function corresponds to `leaves[i]`.  Returns the root literal.
pub fn build_shannon(aig: &mut Aig, f: &TruthTable, leaves: &[Lit]) -> Lit {
    build_shannon_rec(aig, f, leaves)
}

/// [`build_shannon`] into a live [`InPlaceEditor`] session over the (already
/// remapped) leaf literals — the in-place counterpart used by `restructure`.
pub(crate) fn build_shannon_edit(
    ed: &mut InPlaceEditor<'_>,
    f: &TruthTable,
    leaves: &[Lit],
) -> Lit {
    build_shannon_rec(ed, f, leaves)
}

/// Estimates how many new AND nodes [`build_shannon`] would add to `aig`,
/// reusing already-present structure except nodes for which `excluded` is true.
///
/// The estimate is conservative (an upper bound): it assumes the recursion
/// creates fresh nodes whenever either mux operand is itself fresh.  This is
/// the reference entry point; the restructure fast path uses
/// [`count_shannon_nodes_fast`], which returns the identical count without
/// allocating during the recursion.
pub fn count_shannon_nodes(
    aig: &Aig,
    f: &TruthTable,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
) -> usize {
    count_rec(&|x, y| aig.find_and(x, y), f, leaves, excluded).1
}

/// Allocation-free variant of [`count_shannon_nodes`] for functions of up to
/// [`SmallTruth::MAX_VARS`] variables (wider functions fall back).
pub fn count_shannon_nodes_fast(
    aig: &Aig,
    f: &TruthTable,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
) -> usize {
    if f.num_vars() > SmallTruth::MAX_VARS {
        return count_shannon_nodes(aig, f, leaves, excluded);
    }
    count_rec(
        &|x, y| aig.find_and(x, y),
        &SmallTruth::from_table(f),
        leaves,
        excluded,
    )
    .1
}

/// [`count_shannon_nodes_fast`] served by the per-sweep strash snapshot and
/// capped at `budget` — the in-place propose pipeline's estimator.
///
/// Returns `None` as soon as the count provably exceeds `budget`, `Some(n)`
/// with the exact count otherwise.  The cap is lossless for the sweep's
/// accept loop: a proposal is only viable when `added <= mffc_size -
/// min_gain`, so callers pass that bound as the budget — capped cones are
/// exactly the ones the accept loop would reject, and surviving counts are
/// bit-identical to the uncapped recursion (same split variables, same
/// reuse probes).
pub(crate) fn count_shannon_nodes_sweep(
    strash: &crate::strash::SweepStrash,
    f: &TruthTable,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
    budget: usize,
) -> Option<usize> {
    let find = |x, y| strash.find_and(x, y);
    if f.num_vars() > SmallTruth::MAX_VARS {
        return count_rec_budget(&find, f, leaves, excluded, budget).map(|(_, n)| n);
    }
    if f.num_vars() <= 6 {
        // Single-word functions: the whole table is one u64.
        let word = f.words()[0];
        return count_rec_budget_u64(&find, word, f.num_vars(), leaves, excluded, budget)
            .map(|(_, n)| n);
    }
    count_rec_budget_small(&find, &SmallTruth::from_table(f), leaves, excluded, budget)
        .map(|(_, n)| n)
}

/// Truth-table bit masks of the first six variables over a 6-variable domain
/// (identical to the word-0 masks `SmallTruth` uses internally).
const VAR_MASKS_U64: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// [`count_rec_budget_small`] specialised further to functions of at most six
/// variables, whose whole table is one `u64` word: cofactors, constancy and
/// ones-counts are single bitwise operations on the word, replacing the
/// 40-byte `SmallTruth` copies of the general small path.  The operations are
/// exactly `SmallTruth`'s word-0 arithmetic, so split choices, probes and
/// counts stay identical (pinned by `budgeted_sweep_count_matches_reference`).
fn count_rec_budget_u64(
    find: &impl Fn(Lit, Lit) -> Option<Lit>,
    f: u64,
    nv: usize,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
    budget: usize,
) -> Option<(Option<Lit>, usize)> {
    let tail = TruthTable::tail_mask(nv);
    if f == 0 {
        return Some((Some(Lit::FALSE), 0));
    }
    if f == tail {
        return Some((Some(Lit::TRUE), 0));
    }
    let mut cof = [(0u64, 0u64); 6];
    let mut support = [0usize; 6];
    let mut num_support = 0usize;
    for (v, slot) in cof.iter_mut().enumerate().take(nv) {
        let shift = 1u32 << v;
        let low = f & !VAR_MASKS_U64[v];
        let c0 = low | (low << shift);
        let high = f & VAR_MASKS_U64[v];
        let c1 = high | (high >> shift);
        if c0 != c1 {
            *slot = (c0, c1);
            support[num_support] = v;
            num_support += 1;
        }
    }
    let support = &support[..num_support];
    if support.len() == 1 {
        let v = support[0];
        let leaf = leaves[v];
        let lit = if f == VAR_MASKS_U64[v] & tail {
            leaf
        } else {
            !leaf
        };
        return Some((Some(lit), 0));
    }
    // `pick_split_var` over the cached pairs: same scores, same tie-breaks.
    let half = (1i64 << nv) / 2;
    let mut v = support[0];
    let mut best_score = -1i64;
    for &cand in support {
        let (c0, c1) = cof[cand];
        let score =
            (i64::from(c0.count_ones()) - half).abs() + (i64::from(c1.count_ones()) - half).abs();
        if score > best_score {
            best_score = score;
            v = cand;
        }
    }
    let (f0, f1) = cof[v];
    let (l0, c0) = count_rec_budget_u64(find, f0, nv, leaves, excluded, budget)?;
    let (l1, c1) = count_rec_budget_u64(find, f1, nv, leaves, excluded, budget - c0)?;
    let mut added = c0 + c1;
    let sel = leaves[v];
    let reuse = |x: Lit, y: Lit| -> Option<Lit> {
        find(x, y).filter(|l| l.is_const() || !excluded(l.node()))
    };
    let (lit, added) = match (l1, l0) {
        (Some(t), Some(e)) => {
            let a = reuse(sel, t);
            let b = reuse(!sel, e);
            if a.is_none() {
                added += 1;
            }
            if b.is_none() {
                added += 1;
            }
            match (a, b) {
                (Some(x), Some(y)) => {
                    if let Some(o) = reuse(!x, !y) {
                        (Some(!o), added)
                    } else {
                        (None, added + 1)
                    }
                }
                _ => (None, added + 1),
            }
        }
        _ => (None, added + 3),
    };
    if added > budget {
        return None;
    }
    Some((lit, added))
}

/// [`count_rec_budget`] specialised to [`SmallTruth`]: every support
/// variable's cofactor pair is computed once per recursion node and shared
/// between the support test (`c0 != c1`, exactly `depends_on`), the split
/// scoring and the recursion itself — the generic path recomputes them in
/// each of those places.  Split choices, probes and counts are identical.
fn count_rec_budget_small(
    find: &impl Fn(Lit, Lit) -> Option<Lit>,
    f: &SmallTruth,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
    budget: usize,
) -> Option<(Option<Lit>, usize)> {
    if f.is_zero() {
        return Some((Some(Lit::FALSE), 0));
    }
    if f.is_one() {
        return Some((Some(Lit::TRUE), 0));
    }
    let nv = TruthOps::num_vars(f);
    let mut cof = [(*f, *f); SmallTruth::MAX_VARS];
    let mut support = [0usize; SmallTruth::MAX_VARS];
    let mut num_support = 0usize;
    for (v, slot) in cof.iter_mut().enumerate().take(nv) {
        let c0 = f.cofactor0(v);
        let c1 = f.cofactor1(v);
        if c0 != c1 {
            *slot = (c0, c1);
            support[num_support] = v;
            num_support += 1;
        }
    }
    let support = &support[..num_support];
    if support.len() == 1 {
        let v = support[0];
        let leaf = leaves[v];
        let lit = if f == &SmallTruth::var_like(v, nv) {
            leaf
        } else {
            !leaf
        };
        return Some((Some(lit), 0));
    }
    // `pick_split_var` over the cached pairs: same scores, same tie-breaks.
    let half = (1i64 << nv) / 2;
    let mut v = support[0];
    let mut best_score = -1i64;
    for &cand in support {
        let (c0, c1) = &cof[cand];
        let score = (c0.count_ones() as i64 - half).abs() + (c1.count_ones() as i64 - half).abs();
        if score > best_score {
            best_score = score;
            v = cand;
        }
    }
    let (f0, f1) = &cof[v];
    let (l0, c0) = count_rec_budget_small(find, f0, leaves, excluded, budget)?;
    let (l1, c1) = count_rec_budget_small(find, f1, leaves, excluded, budget - c0)?;
    let mut added = c0 + c1;
    let sel = leaves[v];
    let reuse = |x: Lit, y: Lit| -> Option<Lit> {
        find(x, y).filter(|l| l.is_const() || !excluded(l.node()))
    };
    let (lit, added) = match (l1, l0) {
        (Some(t), Some(e)) => {
            let a = reuse(sel, t);
            let b = reuse(!sel, e);
            if a.is_none() {
                added += 1;
            }
            if b.is_none() {
                added += 1;
            }
            match (a, b) {
                (Some(x), Some(y)) => {
                    if let Some(o) = reuse(!x, !y) {
                        (Some(!o), added)
                    } else {
                        (None, added + 1)
                    }
                }
                _ => (None, added + 1),
            }
        }
        _ => (None, added + 3),
    };
    if added > budget {
        return None;
    }
    Some((lit, added))
}

/// Returns `(existing_literal_if_free, added_nodes)`.
fn count_rec<T: TruthOps>(
    find: &impl Fn(Lit, Lit) -> Option<Lit>,
    f: &T,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
) -> (Option<Lit>, usize) {
    if f.is_zero() {
        return (Some(Lit::FALSE), 0);
    }
    if f.is_one() {
        return (Some(Lit::TRUE), 0);
    }
    let mut support = [0usize; aig::MAX_TRUTH_VARS];
    let mut num_support = 0usize;
    for v in 0..TruthOps::num_vars(f) {
        if f.depends_on(v) {
            support[num_support] = v;
            num_support += 1;
        }
    }
    let support = &support[..num_support];
    if support.len() == 1 {
        let v = support[0];
        let leaf = leaves[v];
        let lit = if f == &T::var_like(v, TruthOps::num_vars(f)) {
            leaf
        } else {
            !leaf
        };
        return (Some(lit), 0);
    }
    let v = pick_split_var(f, support);
    let (l0, c0) = count_rec(find, &f0_of(f, v), leaves, excluded);
    let (l1, c1) = count_rec(find, &f1_of(f, v), leaves, excluded);
    let mut added = c0 + c1;
    // The mux needs sel&t, !sel&e and an OR node unless the pieces already exist.
    let sel = leaves[v];
    let reuse = |x: Lit, y: Lit| -> Option<Lit> {
        find(x, y).filter(|l| l.is_const() || !excluded(l.node()))
    };
    match (l1, l0) {
        (Some(t), Some(e)) => {
            let a = reuse(sel, t);
            let b = reuse(!sel, e);
            if a.is_none() {
                added += 1;
            }
            if b.is_none() {
                added += 1;
            }
            match (a, b) {
                (Some(x), Some(y)) => {
                    if let Some(o) = reuse(!x, !y) {
                        (Some(!o), added)
                    } else {
                        (None, added + 1)
                    }
                }
                _ => (None, added + 1),
            }
        }
        _ => (None, added + 3),
    }
}

/// Budget-capped twin of [`count_rec`]: identical recursion (same split
/// variables, same probes) but bails with `None` the moment the accumulated
/// count exceeds `budget`.  A `Some` result is the exact uncapped count.
fn count_rec_budget<T: TruthOps>(
    find: &impl Fn(Lit, Lit) -> Option<Lit>,
    f: &T,
    leaves: &[Lit],
    excluded: impl Fn(NodeId) -> bool + Copy,
    budget: usize,
) -> Option<(Option<Lit>, usize)> {
    if f.is_zero() {
        return Some((Some(Lit::FALSE), 0));
    }
    if f.is_one() {
        return Some((Some(Lit::TRUE), 0));
    }
    let mut support = [0usize; aig::MAX_TRUTH_VARS];
    let mut num_support = 0usize;
    for v in 0..TruthOps::num_vars(f) {
        if f.depends_on(v) {
            support[num_support] = v;
            num_support += 1;
        }
    }
    let support = &support[..num_support];
    if support.len() == 1 {
        let v = support[0];
        let leaf = leaves[v];
        let lit = if f == &T::var_like(v, TruthOps::num_vars(f)) {
            leaf
        } else {
            !leaf
        };
        return Some((Some(lit), 0));
    }
    let v = pick_split_var(f, support);
    let (l0, c0) = count_rec_budget(find, &f0_of(f, v), leaves, excluded, budget)?;
    let (l1, c1) = count_rec_budget(find, &f1_of(f, v), leaves, excluded, budget - c0)?;
    let mut added = c0 + c1;
    let sel = leaves[v];
    let reuse = |x: Lit, y: Lit| -> Option<Lit> {
        find(x, y).filter(|l| l.is_const() || !excluded(l.node()))
    };
    let (lit, added) = match (l1, l0) {
        (Some(t), Some(e)) => {
            let a = reuse(sel, t);
            let b = reuse(!sel, e);
            if a.is_none() {
                added += 1;
            }
            if b.is_none() {
                added += 1;
            }
            match (a, b) {
                (Some(x), Some(y)) => {
                    if let Some(o) = reuse(!x, !y) {
                        (Some(!o), added)
                    } else {
                        (None, added + 1)
                    }
                }
                _ => (None, added + 1),
            }
        }
        _ => (None, added + 3),
    };
    if added > budget {
        return None;
    }
    Some((lit, added))
}

fn f0_of<T: TruthOps>(f: &T, v: usize) -> T {
    f.cofactor0(v)
}

fn f1_of<T: TruthOps>(f: &T, v: usize) -> T {
    f.cofactor1(v)
}

/// Picks the splitting variable: the support variable whose cofactors are most
/// unbalanced in ones-count, which tends to expose constant branches early.
fn pick_split_var<T: TruthOps>(f: &T, support: &[usize]) -> usize {
    let mut best = support[0];
    let mut best_score = -1i64;
    for &v in support {
        let c0 = TruthOps::count_ones(&f.cofactor0(v)) as i64;
        let c1 = TruthOps::count_ones(&f.cofactor1(v)) as i64;
        let half = (1i64 << TruthOps::num_vars(f)) / 2;
        // Distance of each cofactor from "constant": prefer splits that make a
        // cofactor nearly constant 0 or constant 1.
        let score = (c0 - half).abs() + (c1 - half).abs();
        if score > best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Simulator;

    fn random_truth(num_vars: usize, seed: u64) -> TruthTable {
        let mut t = TruthTable::zeros(num_vars);
        let mut state = seed | 1;
        for row in 0..t.num_rows() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if state.wrapping_mul(0x2545_F491_4F6C_DD1D) & 1 == 1 {
                t.set(row, true);
            }
        }
        t
    }

    #[test]
    fn shannon_realises_the_function() {
        for seed in 1..=8u64 {
            let mut g = Aig::new();
            let inputs = g.add_inputs("x", 5);
            let f = random_truth(5, seed);
            let root = build_shannon(&mut g, &f, &inputs);
            g.add_output("f", root);
            let sim = Simulator::new(&g);
            for row in 0..32 {
                let bits: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
                assert_eq!(sim.evaluate(&bits)[0], f.get(row), "seed={seed} row={row}");
            }
        }
    }

    #[test]
    fn shannon_handles_constants_and_literals() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 3);
        assert_eq!(
            build_shannon(&mut g, &TruthTable::zeros(3), &inputs),
            Lit::FALSE
        );
        assert_eq!(
            build_shannon(&mut g, &TruthTable::ones(3), &inputs),
            Lit::TRUE
        );
        assert_eq!(
            build_shannon(&mut g, &TruthTable::var(1, 3), &inputs),
            inputs[1]
        );
        assert_eq!(
            build_shannon(&mut g, &TruthTable::var(2, 3).not(), &inputs),
            !inputs[2]
        );
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn count_is_an_upper_bound_on_build() {
        for seed in 10..=14u64 {
            let mut g = Aig::new();
            let inputs = g.add_inputs("x", 4);
            let f = random_truth(4, seed);
            let estimated = count_shannon_nodes(&g, &f, &inputs, |_| false);
            let before = g.num_ands();
            build_shannon(&mut g, &f, &inputs);
            let actual = g.num_ands() - before;
            assert!(
                actual <= estimated,
                "seed={seed}: actual {actual} > estimated {estimated}"
            );
        }
    }

    #[test]
    fn fast_count_is_identical_to_reference() {
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 6);
        let pre0 = g.and(inputs[0], inputs[1]);
        let pre1 = g.mux(inputs[2], pre0, inputs[3]);
        g.add_output("keep", pre1);
        for nv in 2..=6usize {
            for seed in 1..=10u64 {
                let f = random_truth(nv, seed * 31 + nv as u64);
                let leaves = &inputs[..nv];
                let reference = count_shannon_nodes(&g, &f, leaves, |_| false);
                let fast = count_shannon_nodes_fast(&g, &f, leaves, |_| false);
                assert_eq!(reference, fast, "nv={nv} seed={seed}");
            }
        }
    }

    #[test]
    fn budgeted_sweep_count_matches_reference() {
        // Random graphs + random truths: the budget-capped strash-snapshot
        // counter must return Some(exact reference count) whenever the
        // reference count fits the budget and None otherwise.
        let mut state = 0x5EEDu64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut g = Aig::new();
        let mut lits: Vec<Lit> = g.add_inputs("x", 6);
        for _ in 0..80 {
            let a = lits[(rng() % lits.len() as u64) as usize];
            let b = lits[(rng() % lits.len() as u64) as usize];
            let a = if rng() & 1 == 1 { !a } else { a };
            let b = if rng() & 1 == 1 { !b } else { b };
            let l = g.and(a, b);
            if !l.is_const() {
                lits.push(l);
            }
        }
        let mut strash = crate::strash::SweepStrash::default();
        strash.rebuild(&g);
        let inputs: Vec<Lit> = g
            .input_ids()
            .iter()
            .map(|&n| Lit::from_node(n, false))
            .collect();
        for nv in 3..=6usize {
            for seed in 1..=12u64 {
                let f = random_truth(nv, seed * 13 + nv as u64);
                let leaves = &inputs[..nv];
                let excluded = |n: aig::NodeId| n % 7 == 3;
                let reference = count_shannon_nodes_fast(&g, &f, leaves, excluded);
                for budget in [
                    0usize,
                    1,
                    2,
                    reference.saturating_sub(1),
                    reference,
                    reference + 5,
                ] {
                    let got = count_shannon_nodes_sweep(&strash, &f, leaves, excluded, budget);
                    if reference <= budget {
                        assert_eq!(got, Some(reference), "nv={nv} seed={seed} budget={budget}");
                    } else {
                        assert_eq!(got, None, "nv={nv} seed={seed} budget={budget}");
                    }
                }
            }
        }
    }

    #[test]
    fn count_reuses_existing_structure() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let existing = g.and(a, b);
        g.add_output("keep", existing);
        // f = a & b is already present, so zero new nodes are needed.
        let f = TruthTable::var(0, 2).and(&TruthTable::var(1, 2));
        let added = count_shannon_nodes(&g, &f, &[a, b], |_| false);
        assert_eq!(added, 0);
    }
}
