//! The `refactor` pass: large-cut resynthesis.
//!
//! Analogue of ABC's `refactor` (`rf`) and `refactor -z` (`rfz`) commands: a
//! single reconvergence-driven cut (up to eight leaves by default) is computed
//! per node, the cut function is collapsed to a truth table, re-expressed as an
//! irredundant SOP and rebuilt.  Because the cut is much larger than rewrite's
//! 4-feasible cuts, refactoring restructures whole fanin cones at once.

use aig::{cut_truth, cut_truth_with, Aig, Cut, CutTruthScratch, Lit, Mffc, NodeId, TruthTable};

use crate::engine::{CutEngine, EditMode};
use crate::pass::{PassContext, ProposeScratch};
use crate::reconv::{reconv_cut, reconv_cut_sweep, reconv_cut_with, ReconvParams};
use crate::resyn::{
    resynthesis_sweep, resynthesis_sweep_ctx, Acceptance, Proposal, Structure, SweepApply,
};
use crate::sop::{count_sop_nodes, count_sop_nodes_sweep, count_sop_nodes_with, isop, isop_fast};

/// Parameters of the refactor pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefactorParams {
    /// Maximum number of leaves of the reconvergence-driven cut.
    pub max_leaves: usize,
    /// Covers with more cubes than this are not considered (keeps the pass fast).
    pub max_cubes: usize,
}

impl Default for RefactorParams {
    fn default() -> Self {
        RefactorParams {
            max_leaves: 8,
            max_cubes: 24,
        }
    }
}

/// Applies large-cut refactoring; `zero_cost` selects the `-z` behaviour.
pub fn refactor(aig: &Aig, zero_cost: bool) -> Aig {
    refactor_with_params(aig, zero_cost, RefactorParams::default())
}

/// Applies large-cut refactoring with explicit parameters.
pub fn refactor_with_params(aig: &Aig, zero_cost: bool, params: RefactorParams) -> Aig {
    refactor_with_engine(aig, zero_cost, params, CutEngine::default())
}

/// Applies large-cut refactoring with explicit parameters and cut engine.
///
/// Both engines produce bit-identical results; `Fast` computes the cut
/// function through the scratch-based allocation-free cone walk
/// ([`cut_truth_with`]) instead of rebuilding a hash map per node.
pub fn refactor_with_engine(
    aig: &Aig,
    zero_cost: bool,
    params: RefactorParams,
    engine: CutEngine,
) -> Aig {
    let acceptance = if zero_cost {
        Acceptance::zero_cost()
    } else {
        Acceptance::strict()
    };
    let mut scratch = CutTruthScratch::new();
    resynthesis_sweep(aig, acceptance, |graph, id| {
        let mut proposals = Vec::new();
        propose(graph, id, params, engine, &mut scratch, &mut proposals);
        proposals
    })
}

/// The context path of [`refactor`]: transforms `g` in place, reusing the
/// context's cut-truth scratch and sweep buffers, producing identical bits.
pub(crate) fn refactor_ctx(
    g: &mut Aig,
    zero_cost: bool,
    params: RefactorParams,
    ctx: &mut PassContext,
) {
    let acceptance = if zero_cost {
        Acceptance::zero_cost()
    } else {
        Acceptance::strict()
    };
    ctx.ensure_clean(g);
    let PassContext {
        engine,
        edit_mode,
        pool,
        scratch,
        propose: ps,
        sweep,
        edit,
        apply_stats,
        cancel,
        ..
    } = ctx;
    let engine = *engine;
    // The in-place pipeline runs the allocation-light propose path on top of
    // the per-sweep strash snapshot (bit-identical proposals, cheaper
    // lookups); the Rebuild mode keeps the pinned PR 5 propose path.
    let sweep_fast = *edit_mode == EditMode::InPlace && engine == CutEngine::Fast;
    if sweep_fast {
        ps.strash.rebuild(g);
    }
    resynthesis_sweep_ctx(
        g,
        acceptance,
        sweep,
        pool,
        scratch,
        cancel,
        SweepApply {
            mode: *edit_mode,
            edit,
            stats: apply_stats,
        },
        |graph, id, out| {
            if sweep_fast {
                propose_sweep(graph, id, params, acceptance.min_gain, ps, out)
            } else {
                propose_ctx(graph, id, params, engine, ps, out)
            }
        },
    );
}

/// The in-place pipeline's proposal generator: emits exactly the proposals
/// of [`propose_ctx`] that the sweep's accept loop can accept (cost capped
/// at `mffc_size - min_gain`; dearer cones are rejected without finishing
/// the count), with the reconvergence cut grown through the leaf-stamped
/// variant and the SOP cost dry-run answered by the per-sweep strash
/// snapshot.
fn propose_sweep(
    graph: &mut Aig,
    id: NodeId,
    params: RefactorParams,
    min_gain: i64,
    ps: &mut ProposeScratch,
    proposals: &mut Vec<Proposal>,
) {
    let mut cut_leaves = std::mem::take(&mut ps.cut_leaves);
    reconv_cut_sweep(
        graph,
        id,
        ReconvParams {
            max_leaves: params.max_leaves,
        },
        &mut ps.reconv,
        &mut cut_leaves,
    );
    if cut_leaves.len() < 3 || cut_leaves.len() > aig::MAX_TRUTH_VARS {
        ps.cut_leaves = cut_leaves;
        return;
    }
    let cut = Cut::from_leaves(cut_leaves);
    let truth = match cut_truth_with(graph, id, &cut, &mut ps.truth) {
        Ok(t) => t,
        Err(_) => {
            ps.cut_leaves = cut.into_leaves();
            return;
        }
    };
    // Borrowed cover for the cheap reject paths; the owned clone is
    // materialised only for a surviving proposal.
    let sop = ps.isop.isop_ref(&truth);
    if sop.num_cubes() > params.max_cubes {
        ps.cut_leaves = cut.into_leaves();
        return;
    }
    ps.leaf_lits.clear();
    ps.leaf_lits
        .extend(cut.leaves().iter().map(|&n| Lit::from_node(n, false)));
    let mffc = Mffc::compute(graph, id, cut.leaves());
    let budget = (mffc.size() as i64 - min_gain).max(0) as usize;
    let Some(added) = count_sop_nodes_sweep(
        &ps.strash,
        sop,
        &ps.leaf_lits,
        |n| mffc.contains(n),
        &mut ps.cost,
        budget,
    ) else {
        ps.cut_leaves = cut.into_leaves();
        return;
    };
    let sop = ps.isop.isop(&truth);
    proposals.push(Proposal {
        leaves: cut.leaves().to_vec(),
        structure: Structure::SumOfProducts(sop),
        added,
        mffc_size: mffc.size(),
    });
    ps.cut_leaves = cut.into_leaves();
}

/// The context-path proposal generator: identical proposals to [`propose`],
/// computed through the context's recycled reconv/ISOP/cost scratch.
fn propose_ctx(
    graph: &mut Aig,
    id: NodeId,
    params: RefactorParams,
    engine: CutEngine,
    ps: &mut ProposeScratch,
    proposals: &mut Vec<Proposal>,
) {
    let leaves = reconv_cut_with(
        graph,
        id,
        ReconvParams {
            max_leaves: params.max_leaves,
        },
        &mut ps.reconv,
    );
    if leaves.len() < 3 || leaves.len() > aig::MAX_TRUTH_VARS {
        return;
    }
    let cut = Cut::from_leaves(leaves.clone());
    let Ok(truth) = compute_truth(graph, id, &cut, engine, &mut ps.truth) else {
        return;
    };
    let sop = match engine {
        CutEngine::Reference => isop(&truth),
        CutEngine::Fast => ps.isop.isop(&truth),
    };
    if sop.num_cubes() > params.max_cubes {
        return;
    }
    let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
    let mffc = Mffc::compute(graph, id, &leaves);
    let added = count_sop_nodes_with(graph, &sop, &leaf_lits, |n| mffc.contains(n), &mut ps.cost);
    proposals.push(Proposal {
        leaves,
        structure: Structure::SumOfProducts(sop),
        added,
        mffc_size: mffc.size(),
    });
}

fn propose(
    graph: &mut Aig,
    id: NodeId,
    params: RefactorParams,
    engine: CutEngine,
    scratch: &mut CutTruthScratch,
    proposals: &mut Vec<Proposal>,
) {
    let leaves = reconv_cut(
        graph,
        id,
        ReconvParams {
            max_leaves: params.max_leaves,
        },
    );
    if leaves.len() < 3 || leaves.len() > aig::MAX_TRUTH_VARS {
        return;
    }
    let cut = Cut::from_leaves(leaves.clone());
    let Ok(truth) = compute_truth(graph, id, &cut, engine, scratch) else {
        return;
    };
    let sop = match engine {
        CutEngine::Reference => isop(&truth),
        CutEngine::Fast => isop_fast(&truth),
    };
    if sop.num_cubes() > params.max_cubes {
        return;
    }
    let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| Lit::from_node(n, false)).collect();
    let mffc = Mffc::compute(graph, id, &leaves);
    let added = count_sop_nodes(graph, &sop, &leaf_lits, |n| mffc.contains(n));
    proposals.push(Proposal {
        leaves,
        structure: Structure::SumOfProducts(sop),
        added,
        mffc_size: mffc.size(),
    });
}

/// Engine dispatch for the cut-function computation of the large-cut passes.
pub(crate) fn compute_truth(
    graph: &Aig,
    root: NodeId,
    cut: &Cut,
    engine: CutEngine,
    scratch: &mut CutTruthScratch,
) -> aig::Result<TruthTable> {
    match engine {
        CutEngine::Reference => cut_truth(graph, root, cut),
        CutEngine::Fast => cut_truth_with(graph, root, cut, scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::random_equivalence_check;
    use circuits::{Design, DesignScale};

    /// A cone that is smaller when collapsed: a chain of ORs that a flat SOP
    /// plus sharing expresses more compactly after intermediate XOR detours.
    fn bloated_cone() -> Aig {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 5);
        // f = (x0 | x1 | x2) computed wastefully via muxes.
        let t0 = g.mux(xs[0], Lit::TRUE, xs[1]);
        let t1 = g.mux(t0, Lit::TRUE, xs[2]);
        let dup0 = g.or(xs[0], xs[1]);
        let dup1 = g.or(dup0, xs[2]);
        let f = g.and(t1, dup1); // equals dup1
        let out = g.and(f, xs[3]);
        let out2 = g.or(out, xs[4]);
        g.add_output("o", out2);
        g
    }

    #[test]
    fn refactor_preserves_function() {
        let g = bloated_cone();
        let r = refactor(&g, false);
        assert!(random_equivalence_check(&g, &r, 16, 3));
    }

    #[test]
    fn refactor_collapses_redundant_cone() {
        let g = bloated_cone();
        let r = refactor(&g, false);
        assert!(
            r.num_ands() < g.num_ands(),
            "refactor should simplify: {} -> {}",
            g.num_ands(),
            r.num_ands()
        );
    }

    #[test]
    fn refactor_on_designs_preserves_function_and_size_bound() {
        for design in [Design::Montgomery64, Design::Alu64] {
            let g = design.generate(DesignScale::Tiny);
            let r = refactor(&g, false);
            assert!(random_equivalence_check(&g, &r, 4, 11), "{design}");
            assert!(
                r.num_ands() <= g.cleanup().num_ands() + g.cleanup().num_ands() / 20,
                "{design}: {} -> {}",
                g.num_ands(),
                r.num_ands()
            );
        }
    }

    #[test]
    fn zero_cost_refactor_preserves_function() {
        let g = bloated_cone();
        let r = refactor(&g, true);
        assert!(random_equivalence_check(&g, &r, 16, 19));
    }

    #[test]
    fn default_params_are_sane() {
        let p = RefactorParams::default();
        assert!(p.max_leaves >= 6 && p.max_leaves <= 12);
        assert!(p.max_cubes >= p.max_leaves);
    }
}
