//! Per-sweep structural-hash snapshot for the in-place propose pipeline.
//!
//! The resynthesis cost estimators ask one question millions of times per
//! sweep — *does an AND of these two literals already exist?* — and routing
//! every query through [`Aig::find_and`]'s SipHash-backed `HashMap` dominates
//! the propose phase.  [`SweepStrash`] snapshots the graph's strash into a
//! flat open-addressing table with a multiplicative hash once per sweep
//! (the graph does not change while a sweep collects decisions, so the
//! snapshot stays valid for the whole pass) and serves every lookup from it.
//!
//! Lookups replicate [`Aig::find_and`]'s trivial-rule handling and key
//! canonicalisation exactly, so cost estimates computed through the snapshot
//! are bit-identical to ones computed through the graph.  The table's buffers
//! live in the pass context and are recycled across sweeps and flows.

use aig::{Aig, Lit};

/// Slot sentinel: a packed key can never be all-ones (that would need two
/// `u32::MAX` literal encodings, i.e. a graph with ~2^31 nodes).
const EMPTY: u64 = u64::MAX;

/// An open-addressing `(fanin a, fanin b) -> AND node` table snapshotting a
/// graph's structural hash for read-only cost estimation.
#[derive(Debug, Default)]
pub(crate) struct SweepStrash {
    /// Packed canonical key per slot: `(a.raw() as u64) << 32 | b.raw()`.
    keys: Vec<u64>,
    /// Node id of the AND stored in the same slot.
    vals: Vec<u32>,
    mask: u64,
}

#[inline]
fn hash(key: u64) -> u64 {
    // Multiplicative mix (splitmix64 finalizer-style): cheap and well
    // distributed for the packed literal pairs used as keys.
    let mut h = key;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl SweepStrash {
    /// Rebuilds the snapshot from `g`'s AND nodes, recycling the table
    /// storage.  Call once per sweep, after the graph was cleaned.
    pub(crate) fn rebuild(&mut self, g: &Aig) {
        let cap = (g.num_ands() * 2).next_power_of_two().max(64);
        self.keys.clear();
        self.keys.resize(cap, EMPTY);
        self.vals.resize(cap, 0);
        self.mask = cap as u64 - 1;
        for id in g.and_ids() {
            let (a, b) = g.node(id).fanins().expect("AND node");
            // Stored fanin order follows the reference rebuild's id space
            // after in-place edits; the strash key canonicalises by raw
            // encoding, exactly like `Aig::and`/`Aig::find_and`.
            let (x, y) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
            let key = (x.raw() as u64) << 32 | y.raw() as u64;
            let mut slot = hash(key) & self.mask;
            while self.keys[slot as usize] != EMPTY {
                debug_assert_ne!(self.keys[slot as usize], key, "strash keys are unique");
                slot = (slot + 1) & self.mask;
            }
            self.keys[slot as usize] = key;
            self.vals[slot as usize] = id as u32;
        }
    }

    /// [`Aig::find_and`] served from the snapshot: identical trivial rules,
    /// identical canonicalisation, identical result.
    #[inline]
    pub(crate) fn find_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE || a == b {
            return Some(a);
        }
        let (x, y) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        let key = (x.raw() as u64) << 32 | y.raw() as u64;
        let mut slot = hash(key) & self.mask;
        loop {
            let k = self.keys[slot as usize];
            if k == key {
                return Some(Lit::from_node(self.vals[slot as usize] as usize, false));
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_graph_find_and() {
        // Random graphs: every literal pair (existing or not, plus trivial
        // rules) must answer exactly like Aig::find_and.
        let mut state = 0x5EED_CAFEu64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut strash = SweepStrash::default();
        for _ in 0..5 {
            let mut g = Aig::new();
            let mut lits: Vec<Lit> = g.add_inputs("x", 5);
            for _ in 0..80 {
                let a = lits[(rng() % lits.len() as u64) as usize];
                let b = lits[(rng() % lits.len() as u64) as usize];
                let a = if rng() & 1 == 1 { !a } else { a };
                let b = if rng() & 1 == 1 { !b } else { b };
                let l = g.and(a, b);
                if !l.is_const() {
                    lits.push(l);
                }
            }
            let g = g.cleanup();
            strash.rebuild(&g);
            let mut probes: Vec<Lit> = vec![Lit::FALSE, Lit::TRUE];
            probes.extend(
                g.node_ids()
                    .flat_map(|n| [Lit::from_node(n, false), Lit::from_node(n, true)]),
            );
            for &a in &probes {
                for &b in &probes {
                    assert_eq!(
                        strash.find_and(a, b),
                        g.find_and(a, b),
                        "find_and({a:?}, {b:?})"
                    );
                }
            }
        }
    }
}
