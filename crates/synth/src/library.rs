//! The synthetic standard-cell library.
//!
//! The paper maps the optimised networks with a 14 nm standard-cell library and
//! reports area (µm²) and delay (ps).  That library is proprietary, so this
//! module provides a synthetic one: a typical set of combinational cells with
//! area and delay values scaled to a 14 nm-like operating point.  Absolute
//! numbers differ from the paper's, but the mapper produces the same *relative*
//! area/delay trade-offs across synthesis flows, which is the signal the flow
//! classifier learns from.

use std::collections::HashMap;

use aig::TruthTable;
use serde::{Deserialize, Serialize};

use crate::npn::npn_canonical;
use crate::npn4::canonical4_padded;

/// One combinational standard cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Cell name, e.g. `NAND2_X1`.
    pub name: String,
    /// Cell area in µm².
    pub area: f64,
    /// Intrinsic pin-to-pin delay in ps.
    pub delay_ps: f64,
    /// Additional delay per fanout of the driven net, in ps.
    pub load_delay_ps: f64,
    /// Number of input pins.
    pub num_inputs: usize,
    /// The cell's logic function over its input pins.
    pub function: TruthTable,
}

/// Identifier of a cell within a [`CellLibrary`].
pub type CellId = usize;

/// A technology library: a set of cells indexed by the NPN class of their function.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    name: String,
    cells: Vec<Cell>,
    npn_index: HashMap<(usize, Vec<u64>), Vec<CellId>>,
    /// Fast-path index keyed by the padded-to-4-variables NPN4 canonical form
    /// (see [`crate::npn4`]): NPN transforms preserve support size, so the
    /// padded grouping is identical to the per-arity grouping of `npn_index`.
    npn4_index: HashMap<u16, Vec<CellId>>,
    inverter: CellId,
}

impl CellLibrary {
    /// Builds a library from a list of cells.
    ///
    /// # Panics
    ///
    /// Panics if the list does not contain an inverter (a 1-input cell whose
    /// function is the complement of its input), because technology mapping
    /// needs one.
    pub fn new(name: impl Into<String>, cells: Vec<Cell>) -> Self {
        let mut npn_index: HashMap<(usize, Vec<u64>), Vec<CellId>> = HashMap::new();
        let mut npn4_index: HashMap<u16, Vec<CellId>> = HashMap::new();
        let mut inverter = None;
        for (id, cell) in cells.iter().enumerate() {
            let canon = npn_canonical(&cell.function);
            let key = (cell.function.num_vars(), canon.canonical.words().to_vec());
            npn_index.entry(key).or_default().push(id);
            // The padded NPN4 fast index relies on a cell depending on all of
            // its pins (padding erases the declared arity).  A dead-pin cell
            // is unreachable through `matches` anyway — queries are reduced to
            // their support, so their canonical class always has full support
            // while the cell's does not — so leaving it out of the fast index
            // keeps both mappers bit-identical without rejecting the library.
            if cell.function.support().len() == cell.num_inputs {
                npn4_index
                    .entry(canonical4_padded(&cell.function))
                    .or_default()
                    .push(id);
            }
            if cell.num_inputs == 1 && cell.function == TruthTable::var(0, 1).not() {
                inverter.get_or_insert(id);
            }
        }
        let inverter = inverter.expect("library must contain an inverter");
        CellLibrary {
            name: name.into(),
            cells,
            npn_index,
            npn4_index,
            inverter,
        }
    }

    /// The built-in synthetic library scaled to a 14 nm-like operating point.
    pub fn nangate14() -> Self {
        Self::new("synthetic-14nm", standard_cells())
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Returns a cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id]
    }

    /// The library inverter.
    pub fn inverter(&self) -> CellId {
        self.inverter
    }

    /// Returns the ids of cells whose function is NPN-equivalent to `f`.
    ///
    /// Matching is done on the NPN class, i.e. input permutation, input phase
    /// and output phase are considered free (see the crate documentation for
    /// the fidelity discussion).
    pub fn matches(&self, f: &TruthTable) -> &[CellId] {
        let canon = npn_canonical(f);
        let key = (f.num_vars(), canon.canonical.words().to_vec());
        self.npn_index.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns the ids of cells whose function's padded NPN4 canonical form is
    /// `canon4` (see [`crate::npn4::canonical4_padded`]).
    ///
    /// This is the orbit-search-free fast path of [`CellLibrary::matches`]:
    /// for *full-support* queries (the mapper reduces every cut function to
    /// its support before matching, and every library cell depends on all its
    /// pins) both produce the same cell lists in the same order.  A query with
    /// dead variables would additionally match cells of smaller arity here,
    /// because padding erases the declared variable count.
    pub fn matches_npn4(&self, canon4: u16) -> &[CellId] {
        self.npn4_index
            .get(&canon4)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the library has no cells (never true for built libraries).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Builds a truth table for an `n`-input function given as a row evaluator.
fn table(n: usize, f: impl Fn(usize) -> bool) -> TruthTable {
    let mut t = TruthTable::zeros(n);
    for row in 0..(1 << n) {
        if f(row) {
            t.set(row, true);
        }
    }
    t
}

fn bit(row: usize, i: usize) -> bool {
    row >> i & 1 == 1
}

/// The synthetic cell set: typical static CMOS cells with 14 nm-flavoured
/// area/delay figures (areas in µm², delays in ps).
fn standard_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    let mut push =
        |name: &str, area: f64, delay: f64, load: f64, n: usize, f: &dyn Fn(usize) -> bool| {
            cells.push(Cell {
                name: name.to_string(),
                area,
                delay_ps: delay,
                load_delay_ps: load,
                num_inputs: n,
                function: table(n, f),
            });
        };

    push("INV_X1", 0.117, 6.0, 1.2, 1, &|r| !bit(r, 0));
    push("BUF_X1", 0.156, 9.5, 1.0, 1, &|r| bit(r, 0));
    push("NAND2_X1", 0.156, 8.5, 1.4, 2, &|r| {
        !(bit(r, 0) && bit(r, 1))
    });
    push("NOR2_X1", 0.156, 10.0, 1.6, 2, &|r| {
        !(bit(r, 0) || bit(r, 1))
    });
    push("AND2_X1", 0.195, 11.0, 1.3, 2, &|r| bit(r, 0) && bit(r, 1));
    push("OR2_X1", 0.195, 12.0, 1.3, 2, &|r| bit(r, 0) || bit(r, 1));
    push("XOR2_X1", 0.273, 14.5, 1.8, 2, &|r| bit(r, 0) ^ bit(r, 1));
    push("XNOR2_X1", 0.273, 14.5, 1.8, 2, &|r| {
        !(bit(r, 0) ^ bit(r, 1))
    });
    push("NAND3_X1", 0.195, 10.5, 1.5, 3, &|r| {
        !(bit(r, 0) && bit(r, 1) && bit(r, 2))
    });
    push("NOR3_X1", 0.195, 13.0, 1.8, 3, &|r| {
        !(bit(r, 0) || bit(r, 1) || bit(r, 2))
    });
    push("AND3_X1", 0.234, 13.0, 1.4, 3, &|r| {
        bit(r, 0) && bit(r, 1) && bit(r, 2)
    });
    push("OR3_X1", 0.234, 14.0, 1.4, 3, &|r| {
        bit(r, 0) || bit(r, 1) || bit(r, 2)
    });
    push("NAND4_X1", 0.234, 12.5, 1.6, 4, &|r| {
        !(bit(r, 0) && bit(r, 1) && bit(r, 2) && bit(r, 3))
    });
    push("NOR4_X1", 0.234, 16.0, 2.0, 4, &|r| {
        !(bit(r, 0) || bit(r, 1) || bit(r, 2) || bit(r, 3))
    });
    push("AND4_X1", 0.273, 15.0, 1.5, 4, &|r| {
        bit(r, 0) && bit(r, 1) && bit(r, 2) && bit(r, 3)
    });
    push("OR4_X1", 0.273, 16.0, 1.5, 4, &|r| {
        bit(r, 0) || bit(r, 1) || bit(r, 2) || bit(r, 3)
    });
    push("AOI21_X1", 0.195, 10.0, 1.5, 3, &|r| {
        !((bit(r, 0) && bit(r, 1)) || bit(r, 2))
    });
    push("OAI21_X1", 0.195, 10.0, 1.5, 3, &|r| {
        !((bit(r, 0) || bit(r, 1)) && bit(r, 2))
    });
    push("AOI22_X1", 0.234, 12.0, 1.7, 4, &|r| {
        !((bit(r, 0) && bit(r, 1)) || (bit(r, 2) && bit(r, 3)))
    });
    push("OAI22_X1", 0.234, 12.0, 1.7, 4, &|r| {
        !((bit(r, 0) || bit(r, 1)) && (bit(r, 2) || bit(r, 3)))
    });
    push("MUX2_X1", 0.273, 13.5, 1.6, 3, &|r| {
        if bit(r, 2) {
            bit(r, 1)
        } else {
            bit(r, 0)
        }
    });
    push("MAJ3_X1", 0.273, 14.0, 1.7, 3, &|r| {
        (bit(r, 0) as u8 + bit(r, 1) as u8 + bit(r, 2) as u8) >= 2
    });
    push("XOR3_X1", 0.390, 20.0, 2.2, 3, &|r| {
        bit(r, 0) ^ bit(r, 1) ^ bit(r, 2)
    });
    push("AOI211_X1", 0.234, 13.0, 1.8, 4, &|r| {
        !((bit(r, 0) && bit(r, 1)) || bit(r, 2) || bit(r, 3))
    });
    push("OAI211_X1", 0.234, 13.0, 1.8, 4, &|r| {
        !((bit(r, 0) || bit(r, 1)) && bit(r, 2) && bit(r, 3))
    });
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_library_is_well_formed() {
        let lib = CellLibrary::nangate14();
        assert!(
            lib.len() >= 20,
            "a usable library needs a reasonable cell set"
        );
        assert!(!lib.is_empty());
        assert_eq!(lib.cell(lib.inverter()).num_inputs, 1);
        for cell in lib.cells() {
            assert!(cell.area > 0.0, "{}", cell.name);
            assert!(cell.delay_ps > 0.0, "{}", cell.name);
            assert_eq!(cell.function.num_vars(), cell.num_inputs, "{}", cell.name);
        }
    }

    #[test]
    fn and_like_functions_match_nand() {
        let lib = CellLibrary::nangate14();
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let f = a.and(&b);
        let matches = lib.matches(&f);
        assert!(!matches.is_empty());
        let names: Vec<&str> = matches
            .iter()
            .map(|&id| lib.cell(id).name.as_str())
            .collect();
        assert!(
            names.iter().any(|n| n.contains("AND2")
                || n.contains("NAND2")
                || n.contains("NOR2")
                || n.contains("OR2")),
            "AND-class match expected, got {names:?}"
        );
    }

    #[test]
    fn xor_matches_only_xor_cells() {
        let lib = CellLibrary::nangate14();
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let matches = lib.matches(&a.xor(&b));
        let names: Vec<&str> = matches
            .iter()
            .map(|&id| lib.cell(id).name.as_str())
            .collect();
        assert!(!names.is_empty());
        assert!(
            names
                .iter()
                .all(|n| n.contains("XOR") || n.contains("XNOR")),
            "{names:?}"
        );
    }

    #[test]
    fn majority_and_mux_are_available() {
        let lib = CellLibrary::nangate14();
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let maj = a.and(&b).or(&a.and(&c)).or(&b.and(&c));
        assert!(!lib.matches(&maj).is_empty());
        let mux = c.and(&b).or(&c.not().and(&a));
        assert!(!lib.matches(&mux).is_empty());
    }

    #[test]
    fn unmatched_function_returns_empty() {
        let lib = CellLibrary::nangate14();
        // A 4-input function unlikely to be in the library: parity of 4 inputs.
        let mut parity = TruthTable::zeros(4);
        for row in 0..16usize {
            if row.count_ones() % 2 == 1 {
                parity.set(row, true);
            }
        }
        assert!(lib.matches(&parity).is_empty());
    }

    #[test]
    fn npn4_index_agrees_with_orbit_index() {
        let lib = CellLibrary::nangate14();
        for cell in lib.cells() {
            let via_orbit = lib.matches(&cell.function);
            let via_table = lib.matches_npn4(canonical4_padded(&cell.function));
            assert_eq!(via_orbit, via_table, "{}", cell.name);
        }
        // Random *full-support* functions of every arity take the same path
        // (the mapper reduces to the support before matching, so these are the
        // only queries the fast path ever receives).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for nv in 1..=4usize {
            let mut checked = 0;
            while checked < 25 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                let mut f = TruthTable::zeros(nv);
                for row in 0..f.num_rows() {
                    if bits >> row & 1 == 1 {
                        f.set(row, true);
                    }
                }
                if f.support().len() != nv {
                    continue;
                }
                checked += 1;
                assert_eq!(
                    lib.matches(&f),
                    lib.matches_npn4(canonical4_padded(&f)),
                    "nv={nv} f={f}"
                );
            }
        }
    }

    #[test]
    fn dead_pin_cell_is_accepted_and_never_fast_matched() {
        // A cell whose function ignores a declared pin must not panic at
        // construction, and must stay invisible to both matching paths (the
        // reference path can never reach it either: queries are reduced to
        // their support first).
        let inv = Cell {
            name: "INV".into(),
            area: 1.0,
            delay_ps: 1.0,
            load_delay_ps: 0.1,
            num_inputs: 1,
            function: TruthTable::var(0, 1).not(),
        };
        let dead_pin = Cell {
            name: "BUF_DEADPIN".into(),
            area: 1.0,
            delay_ps: 1.0,
            load_delay_ps: 0.1,
            num_inputs: 2,
            function: TruthTable::var(0, 2),
        };
        let lib = CellLibrary::new("deadpin", vec![inv, dead_pin]);
        // A full-support 1-var query matches only the inverter family.
        let buf1 = TruthTable::var(0, 1);
        assert_eq!(
            lib.matches(&buf1),
            lib.matches_npn4(canonical4_padded(&buf1))
        );
        // A full-support 2-var query matches nothing in either path.
        let and2 = TruthTable::var(0, 2).and(&TruthTable::var(1, 2));
        assert!(lib.matches(&and2).is_empty());
        assert!(lib.matches_npn4(canonical4_padded(&and2)).is_empty());
    }

    #[test]
    fn inverter_sized_correctly() {
        let lib = CellLibrary::nangate14();
        let inv = lib.cell(lib.inverter());
        assert!(inv.area <= lib.cells().iter().map(|c| c.area).fold(f64::MAX, f64::min) + 1e-9);
    }
}
