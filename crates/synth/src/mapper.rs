//! Cut-based technology mapping and static timing analysis.
//!
//! The mapper covers the AIG with library cells: k-feasible cuts are enumerated
//! per node, each cut function is matched against the NPN-indexed cell library,
//! and the best match per node is chosen by arrival time (delay mode) or
//! area-flow (area mode).  A cover is then extracted from the primary outputs
//! and summarised as area (sum of cell areas) and delay (static timing with a
//! fanout-dependent load term), the two QoR metrics the paper reports.

use aig::{
    cut_truth, truth4_pad, truth4_reduce, truth4_support, Aig, Cut4Enumerator, CutEnumerator,
    CutParams, NodeId,
};
use serde::{Deserialize, Serialize};

use crate::engine::CutEngine;
use crate::library::{CellId, CellLibrary};
use crate::npn4::npn4;
use crate::pass::{CancelCell, PassContext};
use crate::qor::Qor;

/// Objective used to choose among matched cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapMode {
    /// Minimise arrival time first, area-flow second (ABC `map` default).
    Delay,
    /// Minimise area-flow first, arrival second.
    Area,
}

/// Parameters of the technology mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapperParams {
    /// Maximum cut size considered for matching (≤ 4: library cells have ≤ 4 pins).
    pub cut_size: usize,
    /// Number of cuts kept per node during enumeration.
    pub cuts_per_node: usize,
    /// Mapping objective.
    pub mode: MapMode,
}

impl Default for MapperParams {
    fn default() -> Self {
        MapperParams {
            cut_size: 4,
            cuts_per_node: 8,
            mode: MapMode::Delay,
        }
    }
}

/// One mapped gate instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappedGate {
    /// The AIG node implemented by this gate.
    pub root: NodeId,
    /// The library cell used.
    pub cell: CellId,
    /// The AIG nodes feeding the gate's input pins (cut leaves).
    pub leaves: Vec<NodeId>,
    /// Arrival time at the gate output in ps.
    pub arrival_ps: f64,
}

/// The result of technology mapping.
#[derive(Debug, Clone)]
pub struct MappedNetlist {
    /// Gate instances of the cover, in topological order.
    pub gates: Vec<MappedGate>,
    /// Total cell area in µm².
    pub area: f64,
    /// Critical-path delay in ps.
    pub delay_ps: f64,
    /// Number of AND nodes of the (cleaned) subject graph.
    pub subject_ands: usize,
    /// Depth of the subject graph in AND levels.
    pub subject_depth: u32,
}

impl MappedNetlist {
    /// Summarises the mapping as a [`Qor`] record.
    pub fn qor(&self) -> Qor {
        Qor {
            area_um2: self.area,
            delay_ps: self.delay_ps,
            gates: self.gates.len(),
            and_nodes: self.subject_ands,
            depth: self.subject_depth,
        }
    }
}

#[derive(Debug, Clone)]
struct Choice {
    cell: CellId,
    leaves: Vec<NodeId>,
    arrival: f64,
    area_flow: f64,
}

/// Maps `aig` onto `library` and returns the mapped netlist.
///
/// Mapping is deterministic for a given graph, library and parameter set.
pub fn map(aig: &Aig, library: &CellLibrary, params: MapperParams) -> MappedNetlist {
    map_with_engine(aig, library, params, CutEngine::default())
}

/// Per-node matching state shared by both cut engines.
struct Matcher<'a> {
    library: &'a CellLibrary,
    mode: MapMode,
    arrivals: &'a [f64],
    area_flows: &'a [f64],
}

impl Matcher<'_> {
    /// Scores every `cell` implementing `leaves -> id` and keeps the best.
    fn consider(
        &self,
        best: &mut Option<Choice>,
        subject: &Aig,
        id: NodeId,
        leaves: &[NodeId],
        cells: &[CellId],
    ) {
        for &cell_id in cells {
            let cell = self.library.cell(cell_id);
            let leaf_arrival = leaves
                .iter()
                .map(|&l| self.arrivals[l])
                .fold(0.0f64, f64::max);
            let arrival = leaf_arrival
                + cell.delay_ps
                + cell.load_delay_ps * (subject.fanout_count(id) as f64);
            let leaf_flow: f64 = leaves
                .iter()
                .map(|&l| self.area_flows[l] / (subject.fanout_count(l).max(1) as f64))
                .sum();
            let area_flow = cell.area + leaf_flow;
            let better = match (&best, self.mode) {
                (None, _) => true,
                (Some(b), MapMode::Delay) => {
                    arrival < b.arrival - 1e-9
                        || (arrival < b.arrival + 1e-9 && area_flow < b.area_flow)
                }
                (Some(b), MapMode::Area) => {
                    area_flow < b.area_flow - 1e-9
                        || (area_flow < b.area_flow + 1e-9 && arrival < b.arrival)
                }
            };
            if better {
                *best = Some(Choice {
                    cell: cell_id,
                    leaves: leaves.to_vec(),
                    arrival,
                    area_flow,
                });
            }
        }
    }
}

/// Maps `aig` onto `library` with an explicit [`CutEngine`].
///
/// Both engines produce bit-identical netlists and QoR; `Fast` enumerates
/// inline 4-cuts with fused `u16` truths, reduces support with bitwise
/// operations and matches through the precomputed NPN4 table, eliminating the
/// per-cut cone walk and orbit search of the reference path.
pub fn map_with_engine(
    aig: &Aig,
    library: &CellLibrary,
    params: MapperParams,
    engine: CutEngine,
) -> MappedNetlist {
    let mut subject = aig.cleanup();
    subject.compute_fanouts();
    let cut_params = mapper_cut_params(params);
    let fast = engine == CutEngine::Fast && params.cuts_per_node <= aig::CUT4_SET_CAPACITY;
    let cut_sets = if fast {
        Vec::new()
    } else {
        CutEnumerator::new(cut_params).enumerate(&subject)
    };
    let cut4_sets = if fast {
        Cut4Enumerator::new(cut_params).enumerate(&subject)
    } else {
        Vec::new()
    };
    map_core(
        &subject,
        library,
        params,
        fast,
        &cut_sets,
        &cut4_sets,
        &mut CancelCell::default(),
    )
}

/// Maps `g` through an arena-recycling [`PassContext`].
///
/// The analysis front of the mapper runs on the context's epoch-stamped
/// caches: the cleanup at the head is skipped when the graph is known clean
/// (every pass output is), fanouts recompute only when stale, and the fast
/// path's cut sets land in the context's recycled enumeration buffer.  The
/// netlist is bit-identical to [`map_with_engine`] on the context's engine.
pub fn map_with_ctx(
    g: &mut Aig,
    library: &CellLibrary,
    params: MapperParams,
    ctx: &mut PassContext,
) -> MappedNetlist {
    let start = std::time::Instant::now();
    ctx.ensure_clean(g);
    g.compute_fanouts_cached();
    let cut_params = mapper_cut_params(params);
    let fast = ctx.engine() == CutEngine::Fast && params.cuts_per_node <= aig::CUT4_SET_CAPACITY;
    let netlist = if fast {
        Cut4Enumerator::new(cut_params).enumerate_into(g, &mut ctx.cut4_sets);
        let PassContext {
            cut4_sets, cancel, ..
        } = ctx;
        map_core(g, library, params, true, &[], cut4_sets, cancel)
    } else {
        let cut_sets = CutEnumerator::new(cut_params).enumerate(g);
        map_core(g, library, params, false, &cut_sets, &[], &mut ctx.cancel)
    };
    ctx.record_mapping(start.elapsed().as_secs_f64());
    netlist
}

fn mapper_cut_params(params: MapperParams) -> CutParams {
    CutParams {
        max_cut_size: params.cut_size.min(4),
        max_cuts_per_node: params.cuts_per_node,
        include_trivial: false,
    }
}

/// Matching + cover extraction over an already cleaned, fanout-annotated
/// subject graph with pre-enumerated cuts (shared by both mapper entries).
fn map_core(
    subject: &Aig,
    library: &CellLibrary,
    params: MapperParams,
    fast: bool,
    cut_sets: &[aig::CutSet],
    cut4_sets: &[aig::CutSet4],
    cancel: &mut CancelCell,
) -> MappedNetlist {
    // Dense, node-id-indexed choice table: every AND gets exactly one entry,
    // so a Vec beats a HashMap on both insert and the cover-extraction reads.
    let mut choices: Vec<Option<Choice>> = vec![None; subject.len()];
    let mut arrivals: Vec<f64> = vec![0.0; subject.len()];
    let mut area_flows: Vec<f64> = vec![0.0; subject.len()];
    // Scratch buffer for the fast path's reduced leaf list.
    let mut leaf_buf: Vec<NodeId> = Vec::with_capacity(4);

    for id in subject.node_ids() {
        if !subject.node(id).is_and() {
            continue;
        }
        cancel.checkpoint();
        let matcher = Matcher {
            library,
            mode: params.mode,
            arrivals: &arrivals,
            area_flows: &area_flows,
        };
        let mut best: Option<Choice> = None;
        if fast {
            for cut in cut4_sets[id].cuts() {
                let nv = cut.size();
                let truth = cut.truth();
                // Reduce to the true support so e.g. a 3-leaf cut computing a
                // 2-input function can match 2-input cells.
                let support = truth4_support(truth, nv);
                if support == 0 {
                    continue; // constant functions never reach the cover
                }
                let (reduced, rnv) = truth4_reduce(truth, nv, support);
                leaf_buf.clear();
                for (v, &leaf) in cut.leaves().iter().enumerate() {
                    if support >> v & 1 == 1 {
                        leaf_buf.push(leaf as NodeId);
                    }
                }
                let canon = npn4().canonical(truth4_pad(reduced, rnv));
                matcher.consider(
                    &mut best,
                    subject,
                    id,
                    &leaf_buf,
                    library.matches_npn4(canon),
                );
            }
        } else {
            for cut in cut_sets[id].cuts() {
                let Ok(truth) = cut_truth(subject, id, cut) else {
                    continue;
                };
                let support = truth.support();
                if support.is_empty() {
                    continue;
                }
                let (reduced, leaves) = reduce_support(&truth, &support, cut.leaves());
                matcher.consider(&mut best, subject, id, &leaves, library.matches(&reduced));
            }
        }
        let choice = best.unwrap_or_else(|| {
            // Fallback: implement the bare AND of the two fanins with an AND2
            // cell (always present in the library).
            let (a, b) = subject.node(id).fanins().expect("AND node");
            let leaves = vec![a.node(), b.node()];
            let and2 = library
                .cells()
                .iter()
                .position(|c| c.name.starts_with("AND2"))
                .expect("library provides AND2");
            let cell = library.cell(and2);
            let leaf_arrival = leaves.iter().map(|&l| arrivals[l]).fold(0.0f64, f64::max);
            Choice {
                cell: and2,
                leaves,
                arrival: leaf_arrival + cell.delay_ps,
                area_flow: cell.area,
            }
        });
        arrivals[id] = choice.arrival;
        area_flows[id] = choice.area_flow;
        choices[id] = Some(choice);
    }

    // Cover extraction from the primary outputs.
    let mut required: Vec<NodeId> = subject
        .outputs()
        .iter()
        .map(|l| l.node())
        .filter(|&n| subject.node(n).is_and())
        .collect();
    required.sort_unstable();
    required.dedup();
    let mut in_cover: Vec<bool> = vec![false; subject.len()];
    let mut stack = required;
    let mut cover_nodes: Vec<NodeId> = Vec::new();
    while let Some(id) = stack.pop() {
        if in_cover[id] || !subject.node(id).is_and() {
            continue;
        }
        in_cover[id] = true;
        cover_nodes.push(id);
        for &leaf in &choices[id].as_ref().expect("AND node has a choice").leaves {
            if subject.node(leaf).is_and() && !in_cover[leaf] {
                stack.push(leaf);
            }
        }
    }
    cover_nodes.sort_unstable();

    let inv = library.cell(library.inverter());
    let mut area = 0.0;
    let mut gates = Vec::with_capacity(cover_nodes.len());
    for id in cover_nodes {
        let c = choices[id].as_ref().expect("cover node has a choice");
        area += library.cell(c.cell).area;
        gates.push(MappedGate {
            root: id,
            cell: c.cell,
            leaves: c.leaves.clone(),
            arrival_ps: c.arrival,
        });
    }
    // Complemented primary outputs need an output inverter.
    let mut delay: f64 = 0.0;
    for &po in subject.outputs() {
        let mut t = arrivals[po.node()];
        if po.is_complemented() && subject.node(po.node()).is_and() {
            area += inv.area;
            t += inv.delay_ps;
        }
        delay = delay.max(t);
    }

    MappedNetlist {
        gates,
        area,
        delay_ps: delay,
        subject_ands: subject.num_ands(),
        subject_depth: subject.depth(),
    }
}

/// Projects `truth` onto its support variables and returns the reduced table
/// together with the corresponding leaf nodes.
fn reduce_support(
    truth: &aig::TruthTable,
    support: &[usize],
    leaves: &[NodeId],
) -> (aig::TruthTable, Vec<NodeId>) {
    if support.len() == truth.num_vars() {
        return (truth.clone(), leaves.to_vec());
    }
    let mut reduced = aig::TruthTable::zeros(support.len());
    for row in 0..reduced.num_rows() {
        // Build a full-width row where support variables take the bits of `row`
        // and non-support variables are zero.
        let mut full = 0usize;
        for (new_pos, &old_var) in support.iter().enumerate() {
            if row >> new_pos & 1 == 1 {
                full |= 1 << old_var;
            }
        }
        reduced.set(row, truth.get(full));
    }
    let new_leaves = support.iter().map(|&v| leaves[v]).collect();
    (reduced, new_leaves)
}

/// Convenience wrapper: maps the graph and returns only the QoR summary.
pub fn map_qor(aig: &Aig, library: &CellLibrary, params: MapperParams) -> Qor {
    map(aig, library, params).qor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{Design, DesignScale};

    fn lib() -> CellLibrary {
        CellLibrary::nangate14()
    }

    #[test]
    fn maps_a_small_adder() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cin = g.add_input("cin");
        let sum = g.xor_many(&[a, b, cin]);
        let carry = g.maj(a, b, cin);
        g.add_output("sum", sum);
        g.add_output("carry", carry);
        let mapped = map(&g, &lib(), MapperParams::default());
        assert!(!mapped.gates.is_empty());
        assert!(mapped.area > 0.0);
        assert!(mapped.delay_ps > 0.0);
        // A full adder should map to only a handful of cells (XOR3 + MAJ3 ideal).
        assert!(mapped.gates.len() <= 8, "got {} gates", mapped.gates.len());
    }

    #[test]
    fn delay_mode_is_no_slower_than_area_mode() {
        let g = Design::Alu64.generate(DesignScale::Tiny);
        let delay_q = map_qor(
            &g,
            &lib(),
            MapperParams {
                mode: MapMode::Delay,
                ..Default::default()
            },
        );
        let area_q = map_qor(
            &g,
            &lib(),
            MapperParams {
                mode: MapMode::Area,
                ..Default::default()
            },
        );
        assert!(delay_q.delay_ps <= area_q.delay_ps + 1e-6);
        assert!(area_q.area_um2 <= delay_q.area_um2 + 1e-6);
    }

    #[test]
    fn mapping_covers_all_outputs() {
        let g = Design::Montgomery64.generate(DesignScale::Tiny);
        let mapped = map(&g, &lib(), MapperParams::default());
        let subject = g.cleanup();
        // Every AND-driven output must have a gate rooted at its node.
        let roots: std::collections::HashSet<NodeId> =
            mapped.gates.iter().map(|gate| gate.root).collect();
        for po in subject.outputs() {
            if subject.node(po.node()).is_and() {
                assert!(
                    roots.contains(&po.node()),
                    "output node {} not covered",
                    po.node()
                );
            }
        }
    }

    #[test]
    fn smaller_subject_graph_gives_smaller_area() {
        // Mapping after a strict rewrite should not increase area much; in the
        // typical case it decreases.  This ties the optimisation passes to QoR.
        let g = Design::Alu64.generate(DesignScale::Tiny);
        let before = map_qor(&g, &lib(), MapperParams::default());
        let optimised = crate::rewrite::rewrite(&g, false);
        let after = map_qor(&optimised, &lib(), MapperParams::default());
        assert!(
            after.area_um2 <= before.area_um2 * 1.05,
            "area should not blow up: {} -> {}",
            before.area_um2,
            after.area_um2
        );
    }

    #[test]
    fn qor_summary_is_consistent() {
        let g = Design::Alu64.generate(DesignScale::Tiny);
        let mapped = map(&g, &lib(), MapperParams::default());
        let q = mapped.qor();
        assert_eq!(q.gates, mapped.gates.len());
        assert!((q.area_um2 - mapped.area).abs() < 1e-9);
        assert!(q.depth > 0);
    }

    #[test]
    fn support_reduction_matches_smaller_cells() {
        // f over a 3-leaf cut that only depends on two leaves must map as a
        // 2-input cell, not fail to match.
        let t = aig::TruthTable::var(0, 3).and(&aig::TruthTable::var(2, 3));
        let (reduced, leaves) = reduce_support(&t, &[0, 2], &[10, 11, 12]);
        assert_eq!(reduced.num_vars(), 2);
        assert_eq!(leaves, vec![10, 12]);
        assert!(reduced.get(0b11));
        assert!(!reduced.get(0b01));
    }
}
