//! Precomputed NPN canonization of all 4-variable functions.
//!
//! [`npn_canonical`](crate::npn::npn_canonical) finds the canonical form of a
//! function by searching its full orbit (up to `2 · 4! · 2^4 = 768` members) —
//! exact, but far too slow to sit under technology mapping, where every cut of
//! every node needs a canonical form.  This module instead fills a
//! 65,536-entry table once (orbit by orbit: processing functions in increasing
//! numeric order guarantees the first unassigned function *is* its class
//! representative) and answers every subsequent query with one array load.
//!
//! Functions of fewer than four variables are handled by padding: a function
//! padded with don't-care variables is NPN4-equivalent to another padded
//! function exactly when the originals are NPN-equivalent at their own arity
//! (NPN transforms preserve support size), so one table serves every cut
//! function the 4-cut consumers produce.

use std::sync::OnceLock;

/// Number of distinct 4-variable truth tables.
const NUM_FUNCTIONS: usize = 1 << 16;

/// All permutations of `[0, 1, 2, 3]` in lexicographic order.
const fn permutations4() -> [[u8; 4]; 24] {
    let mut out = [[0u8; 4]; 24];
    let mut n = 0;
    let mut a = 0u8;
    while a < 4 {
        let mut b = 0u8;
        while b < 4 {
            let mut c = 0u8;
            while c < 4 {
                let mut d = 0u8;
                while d < 4 {
                    if a != b && a != c && a != d && b != c && b != d && c != d {
                        out[n] = [a, b, c, d];
                        n += 1;
                    }
                    d += 1;
                }
                c += 1;
            }
            b += 1;
        }
        a += 1;
    }
    out
}

/// The 24 input permutations, indexed by the 5-bit permutation id stored in a
/// packed transform.
pub const PERMS4: [[u8; 4]; 24] = permutations4();

/// The NPN transform recovering the canonical form of a function: apply output
/// negation, then the permutation, then the input negations — the same
/// operation order as [`npn_canonical`](crate::npn::npn_canonical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Npn4Transform {
    /// Whether the output is complemented.
    pub output_negated: bool,
    /// Permutation: canonical variable `i` reads original variable `perm[i]`.
    pub perm: [u8; 4],
    /// Input complementation mask over canonical positions.
    pub input_negation: u8,
}

/// Packed transform: bits 0..5 permutation id, 5..9 negation mask, 9 output.
#[inline]
fn pack(perm_id: usize, neg: u8, out_neg: bool) -> u16 {
    (perm_id as u16) | (u16::from(neg) << 5) | (u16::from(out_neg) << 9)
}

#[inline]
fn unpack(packed: u16) -> Npn4Transform {
    Npn4Transform {
        output_negated: packed >> 9 & 1 == 1,
        perm: PERMS4[(packed & 0x1F) as usize],
        input_negation: (packed >> 5 & 0xF) as u8,
    }
}

/// Applies a permutation to a packed 4-variable truth: canonical variable `i`
/// reads original variable `perm[i]`.
pub fn apply_perm4(t: u16, perm: &[u8; 4]) -> u16 {
    let mut out = 0u16;
    for row in 0..16u32 {
        let mut src = 0u32;
        for (canon_var, &orig_var) in perm.iter().enumerate() {
            if row >> canon_var & 1 == 1 {
                src |= 1 << orig_var;
            }
        }
        if t >> src & 1 == 1 {
            out |= 1 << row;
        }
    }
    out
}

/// Complements the inputs in `mask`: `out(row) = t(row ^ mask)`.
#[inline]
pub fn apply_neg4(t: u16, mask: u8) -> u16 {
    let mut out = t;
    for v in 0..4u32 {
        if mask >> v & 1 == 1 {
            out = flip_var4(out, v);
        }
    }
    out
}

/// Flips one input variable of a packed 4-variable truth.
#[inline]
fn flip_var4(t: u16, v: u32) -> u16 {
    const HI: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];
    let shift = 1u32 << v;
    ((t & HI[v as usize]) >> shift) | ((t & !HI[v as usize]) << shift)
}

/// Applies a full NPN transform (output negation, permutation, input negation
/// — in that order) to a packed 4-variable truth.
pub fn apply_npn4(t: u16, tf: &Npn4Transform) -> u16 {
    let base = if tf.output_negated { !t } else { t };
    apply_neg4(apply_perm4(base, &tf.perm), tf.input_negation)
}

/// The precomputed canonization table for all 65,536 4-variable functions.
#[derive(Debug)]
pub struct Npn4Table {
    canon: Vec<u16>,
    transform: Vec<u16>,
    num_classes: usize,
}

impl Npn4Table {
    fn build() -> Self {
        let mut canon = vec![0u16; NUM_FUNCTIONS];
        let mut transform = vec![0u16; NUM_FUNCTIONS];
        let mut assigned = vec![false; NUM_FUNCTIONS];
        let mut perm_inverse = [[0u8; 4]; 24];
        for (pi, p) in PERMS4.iter().enumerate() {
            for (i, &v) in p.iter().enumerate() {
                perm_inverse[pi][v as usize] = i as u8;
            }
        }
        let mut num_classes = 0usize;
        for f in 0..NUM_FUNCTIONS as u32 {
            let f = f as u16;
            if assigned[f as usize] {
                continue;
            }
            // Processing functions in increasing order, the first unassigned
            // function is numerically minimal in its orbit — i.e. canonical
            // (the orbit search compares raw bits).
            num_classes += 1;
            for out_neg in [false, true] {
                let base = if out_neg { !f } else { f };
                for (pi, perm) in PERMS4.iter().enumerate() {
                    let permuted = apply_perm4(base, perm);
                    for m in 0u8..16 {
                        let g = apply_neg4(permuted, m);
                        if assigned[g as usize] {
                            continue;
                        }
                        assigned[g as usize] = true;
                        canon[g as usize] = f;
                        // g = N_m(P_p(O_b(f)))  ⇒  f = N_m'(P_{p⁻¹}(O_b(g)))
                        // with m'[j] = m[p⁻¹[j]] (the negation mask carried
                        // through the inverse permutation).
                        let inv = perm_inverse[pi];
                        let mut m2 = 0u8;
                        for (j, &src) in inv.iter().enumerate() {
                            if m >> src & 1 == 1 {
                                m2 |= 1 << j;
                            }
                        }
                        let inv_id = PERMS4
                            .iter()
                            .position(|p| *p == inv)
                            .expect("inverse is a permutation");
                        transform[g as usize] = pack(inv_id, m2, out_neg);
                    }
                }
            }
        }
        Npn4Table {
            canon,
            transform,
            num_classes,
        }
    }

    /// The canonical representative of the NPN class of `t`.
    #[inline]
    pub fn canonical(&self, t: u16) -> u16 {
        self.canon[t as usize]
    }

    /// A transform mapping `t` onto its canonical representative.
    #[inline]
    pub fn transform(&self, t: u16) -> Npn4Transform {
        unpack(self.transform[t as usize])
    }

    /// Number of distinct NPN classes over 4 variables (222).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// The process-wide table, built on first use (a few milliseconds).
pub fn npn4() -> &'static Npn4Table {
    static TABLE: OnceLock<Npn4Table> = OnceLock::new();
    TABLE.get_or_init(Npn4Table::build)
}

/// Packs a truth table of up to 4 variables into the low `2^n` bits of a `u16`.
///
/// # Panics
///
/// Panics if the table has more than 4 variables.
pub fn truth_to_u16(t: &aig::TruthTable) -> u16 {
    let nv = t.num_vars();
    assert!(nv <= 4, "packed truths span at most 4 variables");
    (t.words()[0] & ((1u64 << (1 << nv)) - 1)) as u16
}

/// The padded-to-4-variables NPN4 canonical form of a function of up to 4
/// variables — the key of the mapper's fast matching index.
pub fn canonical4_padded(t: &aig::TruthTable) -> u16 {
    npn4().canonical(aig::truth4_pad(truth_to_u16(t), t.num_vars()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npn::npn_canonical;
    use aig::TruthTable;

    fn table_from_u16(bits: u16) -> TruthTable {
        TruthTable::from_words(4, vec![u64::from(bits)])
    }

    #[test]
    fn perms_are_all_distinct() {
        for (i, a) in PERMS4.iter().enumerate() {
            for b in &PERMS4[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn class_count_is_222() {
        assert_eq!(npn4().num_classes(), 222);
    }

    #[test]
    fn canonical_matches_orbit_search_on_random_functions() {
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        for _ in 0..200 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let f = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u16;
            let want = npn_canonical(&table_from_u16(f));
            let got = npn4().canonical(f);
            assert_eq!(
                truth_to_u16(&want.canonical),
                got,
                "canonical mismatch for {f:#06x}"
            );
        }
    }

    #[test]
    fn transform_recovers_canonical() {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        for _ in 0..500 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let f = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u16;
            let tf = npn4().transform(f);
            assert_eq!(
                apply_npn4(f, &tf),
                npn4().canonical(f),
                "transform does not map {f:#06x} to its canonical form"
            );
        }
    }

    #[test]
    fn u16_application_matches_truthtable_application() {
        // apply_perm4 / apply_neg4 agree with the TruthTable-based operations
        // used by the orbit search.
        let f: u16 = 0b0110_1001_1100_0011;
        let t = table_from_u16(f);
        let perm = [2u8, 0, 3, 1];
        let perm_usize: Vec<usize> = perm.iter().map(|&v| v as usize).collect();
        let mut permuted_t = TruthTable::zeros(4);
        for row in 0..16usize {
            let mut src = 0usize;
            for (cv, &ov) in perm_usize.iter().enumerate() {
                if row >> cv & 1 == 1 {
                    src |= 1 << ov;
                }
            }
            permuted_t.set(row, t.get(src));
        }
        assert_eq!(apply_perm4(f, &perm), truth_to_u16(&permuted_t));
        let flipped = t.flip_var(1).flip_var(3);
        assert_eq!(apply_neg4(f, 0b1010), truth_to_u16(&flipped));
    }

    #[test]
    fn padding_preserves_class_grouping() {
        // Two 2-variable functions are NPN-equivalent iff their 4-variable
        // paddings share an NPN4 class.
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let and2 = a.and(&b);
        let nor2 = a.or(&b).not();
        let xor2 = a.xor(&b);
        assert_eq!(canonical4_padded(&and2), canonical4_padded(&nor2));
        assert_ne!(canonical4_padded(&and2), canonical4_padded(&xor2));
        // Support size separates classes: padded AND2 never collides with a
        // genuine 4-variable function's class.
        let a4 = TruthTable::var(0, 4);
        let b4 = TruthTable::var(1, 4);
        let c4 = TruthTable::var(2, 4);
        let d4 = TruthTable::var(3, 4);
        let and4 = a4.and(&b4).and(&c4).and(&d4);
        assert_ne!(canonical4_padded(&and2), canonical4_padded(&and4));
    }
}
