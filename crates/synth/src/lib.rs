//! # synth — logic synthesis passes, technology mapping and QoR evaluation
//!
//! This crate is the reproduction's stand-in for the ABC logic synthesis system
//! used by *Developing Synthesis Flows Without Human Knowledge* (DAC 2018):
//!
//! * the paper's transformation set `S` = {`balance`, `restructure`, `rewrite`,
//!   `refactor`, `rewrite -z`, `refactor -z`} as [`Transform`] with faithful
//!   algorithmic analogues of each pass,
//! * a cut-based technology [`mapper`] over a synthetic 14 nm-like
//!   standard-cell [`library`], producing the area/delay QoR the paper labels
//!   flows with, and
//! * a [`FlowRunner`] that applies whole flows and collects QoR in parallel —
//!   the "synthesis tool" box of the paper's framework (Figure 2, component 1).
//!
//! ## Quick example
//!
//! ```
//! use circuits::{Design, DesignScale};
//! use synth::{FlowRunner, Transform};
//!
//! let design = Design::Alu64.generate(DesignScale::Tiny);
//! let runner = FlowRunner::new();
//! let outcome = runner.run(&design, &[Transform::Balance, Transform::Rewrite]);
//! assert!(outcome.qor.area_um2 > 0.0);
//! ```
//!
//! ## Fidelity notes
//!
//! The passes follow the same algorithmic families as their ABC namesakes
//! (AND-tree balancing, 4-cut NPN/SOP rewriting, reconvergence-driven-cut
//! refactoring, Shannon restructuring), but they are reimplementations, not
//! ports; absolute QoR numbers differ from ABC's while the qualitative
//! behaviour — order-dependent, design-specific QoR — is preserved.  Technology
//! mapping treats input/output phase as free (complemented edges), a common
//! simplification in academic mappers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod decomp;
pub mod engine;
pub mod flow_runner;
pub mod library;
pub mod mapper;
pub mod npn;
pub mod npn4;
pub mod pass;
pub mod passes;
pub mod qor;
pub mod reconv;
pub mod refactor;
pub mod restructure;
pub mod resyn;
pub mod rewrite;
pub mod sop;
mod strash;

pub use balance::balance;
pub use engine::{apply_sequence_with_engine, CutEngine, EditMode};
pub use flow_runner::{FlowOutcome, FlowRunner};
pub use library::{Cell, CellId, CellLibrary};
pub use mapper::{
    map, map_qor, map_with_ctx, map_with_engine, MapMode, MappedGate, MappedNetlist, MapperParams,
};
pub use pass::{apply_sequence_ctx, ApplyStats, Pass, PassContext, PassStat, PassTimings};
pub use passes::{apply_sequence, Transform};
pub use qor::{Qor, QorMetric};
pub use refactor::refactor;
pub use restructure::restructure;
pub use rewrite::rewrite;
pub use sop::SharedIsopCache;
