//! Reconvergence-driven cut computation.
//!
//! `refactor` and `restructure` operate on one large cut per node instead of the
//! enumerated 4-feasible cuts used by `rewrite`.  The cut is grown greedily from
//! the node's fanins, preferring expansions that do not increase the leaf count
//! (reconvergent paths), exactly in the spirit of ABC's reconvergence-driven
//! cut computation.

use aig::{Aig, NodeId};

/// Parameters of the reconvergence-driven cut growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconvParams {
    /// Maximum number of cut leaves.
    pub max_leaves: usize,
}

impl Default for ReconvParams {
    fn default() -> Self {
        ReconvParams { max_leaves: 8 }
    }
}

/// Computes a reconvergence-driven cut of `root`, returning the sorted leaf set.
///
/// The cut always covers the cone of `root`: every path from a primary input to
/// `root` goes through a leaf.  Primary inputs and the constant node are never
/// expanded.
pub fn reconv_cut(aig: &Aig, root: NodeId, params: ReconvParams) -> Vec<NodeId> {
    let mut leaves: Vec<NodeId> = Vec::new();
    let mut visited: Vec<NodeId> = vec![root];
    match aig.node(root).fanins() {
        Some((a, b)) => {
            push_unique(&mut leaves, a.node());
            push_unique(&mut leaves, b.node());
        }
        None => return vec![root],
    }

    loop {
        // Find the best leaf to expand: an AND node whose expansion increases
        // the leaf count the least (negative cost = reconvergence).
        let mut best: Option<(usize, i32)> = None;
        for (i, &leaf) in leaves.iter().enumerate() {
            if !aig.node(leaf).is_and() {
                continue;
            }
            let (a, b) = aig.node(leaf).fanins().expect("AND node");
            let mut cost = -1i32; // removing the leaf itself
            for f in [a.node(), b.node()] {
                if !leaves.contains(&f) && !visited.contains(&f) {
                    cost += 1;
                }
            }
            if leaves.len() as i32 + cost > params.max_leaves as i32 {
                continue;
            }
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
            if cost <= 0 {
                break; // cannot do better than free
            }
        }
        let Some((idx, _)) = best else { break };
        let leaf = leaves.swap_remove(idx);
        visited.push(leaf);
        let (a, b) = aig.node(leaf).fanins().expect("AND node");
        for f in [a.node(), b.node()] {
            if !visited.contains(&f) {
                push_unique(&mut leaves, f);
            }
        }
    }
    leaves.sort_unstable();
    leaves
}

/// Reusable state of [`reconv_cut_with`]: an epoch-stamped visited set that
/// replaces the reference implementation's linear `visited.contains` scans,
/// plus a leaf-membership stamp used by the sweep-path cut growth
/// (`reconv_cut_sweep`).
#[derive(Debug, Default)]
pub struct ReconvScratch {
    stamp: Vec<u32>,
    leaf_stamp: Vec<u32>,
    epoch: u32,
}

impl ReconvScratch {
    fn begin(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
            self.leaf_stamp.resize(len, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.leaf_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    fn visit(&mut self, id: NodeId) {
        self.stamp[id] = self.epoch;
    }

    #[inline]
    fn visited(&self, id: NodeId) -> bool {
        self.stamp[id] == self.epoch
    }

    #[inline]
    fn mark_leaf(&mut self, id: NodeId) {
        self.leaf_stamp[id] = self.epoch;
    }

    #[inline]
    fn unmark_leaf(&mut self, id: NodeId) {
        self.leaf_stamp[id] = 0;
    }

    #[inline]
    fn is_leaf(&self, id: NodeId) -> bool {
        self.leaf_stamp[id] == self.epoch
    }
}

/// [`reconv_cut`] through recycled scratch: identical growth decisions and
/// leaf set, with visited-set membership answered by an epoch stamp instead
/// of a growing vector scanned linearly per candidate.
pub fn reconv_cut_with(
    aig: &Aig,
    root: NodeId,
    params: ReconvParams,
    scratch: &mut ReconvScratch,
) -> Vec<NodeId> {
    scratch.begin(aig.len());
    let mut leaves: Vec<NodeId> = Vec::new();
    scratch.visit(root);
    match aig.node(root).fanins() {
        Some((a, b)) => {
            push_unique(&mut leaves, a.node());
            push_unique(&mut leaves, b.node());
        }
        None => return vec![root],
    }

    loop {
        let mut best: Option<(usize, i32)> = None;
        for (i, &leaf) in leaves.iter().enumerate() {
            if !aig.node(leaf).is_and() {
                continue;
            }
            let (a, b) = aig.node(leaf).fanins().expect("AND node");
            let mut cost = -1i32; // removing the leaf itself
            for f in [a.node(), b.node()] {
                if !leaves.contains(&f) && !scratch.visited(f) {
                    cost += 1;
                }
            }
            if leaves.len() as i32 + cost > params.max_leaves as i32 {
                continue;
            }
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
            if cost <= 0 {
                break; // cannot do better than free
            }
        }
        let Some((idx, _)) = best else { break };
        let leaf = leaves.swap_remove(idx);
        scratch.visit(leaf);
        let (a, b) = aig.node(leaf).fanins().expect("AND node");
        for f in [a.node(), b.node()] {
            if !scratch.visited(f) {
                push_unique(&mut leaves, f);
            }
        }
    }
    leaves.sort_unstable();
    leaves
}

/// [`reconv_cut_with`] with O(1) leaf-membership tests, growing the leaf set
/// into the caller-recycled `leaves` buffer — the in-place propose
/// pipeline's variant.
///
/// The growth loop's cost check asks "is this fanin already a leaf?" for
/// every candidate on every iteration; the reference answers with a linear
/// scan of the leaf vector, this variant with a second epoch stamp
/// maintained as leaves enter and leave the set.  Iteration order, growth
/// decisions, tie-breaks and the produced leaf set are identical (pinned by
/// `sweep_cut_is_identical_to_reference`).
pub(crate) fn reconv_cut_sweep(
    aig: &Aig,
    root: NodeId,
    params: ReconvParams,
    scratch: &mut ReconvScratch,
    leaves: &mut Vec<NodeId>,
) {
    scratch.begin(aig.len());
    leaves.clear();
    scratch.visit(root);
    match aig.node(root).fanins() {
        Some((a, b)) => {
            for f in [a.node(), b.node()] {
                if !scratch.is_leaf(f) {
                    scratch.mark_leaf(f);
                    leaves.push(f);
                }
            }
        }
        None => {
            leaves.push(root);
            return;
        }
    }

    loop {
        let mut best: Option<(usize, i32)> = None;
        for (i, &leaf) in leaves.iter().enumerate() {
            if !aig.node(leaf).is_and() {
                continue;
            }
            let (a, b) = aig.node(leaf).fanins().expect("AND node");
            let mut cost = -1i32; // removing the leaf itself
            for f in [a.node(), b.node()] {
                if !scratch.is_leaf(f) && !scratch.visited(f) {
                    cost += 1;
                }
            }
            if leaves.len() as i32 + cost > params.max_leaves as i32 {
                continue;
            }
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
            if cost <= 0 {
                break; // cannot do better than free
            }
        }
        let Some((idx, _)) = best else { break };
        let leaf = leaves.swap_remove(idx);
        scratch.unmark_leaf(leaf);
        scratch.visit(leaf);
        let (a, b) = aig.node(leaf).fanins().expect("AND node");
        for f in [a.node(), b.node()] {
            if !scratch.visited(f) && !scratch.is_leaf(f) {
                scratch.mark_leaf(f);
                leaves.push(f);
            }
        }
    }
    leaves.sort_unstable();
}

fn push_unique(v: &mut Vec<NodeId>, x: NodeId) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::{cut_truth, Cut};

    #[test]
    fn cut_of_input_is_trivial() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let cut = reconv_cut(&g, a.node(), ReconvParams::default());
        assert_eq!(cut, vec![a.node()]);
    }

    #[test]
    fn cut_covers_cone_and_respects_limit() {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            let t = g.xor(acc, x);
            acc = t;
        }
        g.add_output("f", acc);
        for max_leaves in [4usize, 6, 8] {
            let leaves = reconv_cut(&g, acc.node(), ReconvParams { max_leaves });
            assert!(leaves.len() <= max_leaves, "limit {max_leaves}");
            // The leaf set must be a valid cut: truth computation succeeds.
            let cut = Cut::from_leaves(leaves);
            assert!(cut_truth(&g, acc.node(), &cut).is_ok());
        }
    }

    #[test]
    fn wide_limit_reaches_primary_inputs() {
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 4);
        let ab = g.and(xs[0], xs[1]);
        let cd = g.and(xs[2], xs[3]);
        let f = g.and(ab, cd);
        g.add_output("f", f);
        let leaves = reconv_cut(&g, f.node(), ReconvParams { max_leaves: 8 });
        let mut want: Vec<NodeId> = xs.iter().map(|l| l.node()).collect();
        want.sort_unstable();
        assert_eq!(leaves, want);
    }

    #[test]
    fn scratch_cut_is_identical_to_reference() {
        // Random graphs: every node's cut must match the reference exactly,
        // with one scratch reused across all nodes (and stale stamps).
        let mut state = 0xD1F7u64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut scratch = ReconvScratch::default();
        for _ in 0..5 {
            let mut g = Aig::new();
            let mut lits: Vec<aig::Lit> = g.add_inputs("x", 6);
            for _ in 0..60 {
                let a = lits[(rng() % lits.len() as u64) as usize];
                let b = lits[(rng() % lits.len() as u64) as usize];
                let a = if rng() & 1 == 1 { !a } else { a };
                let b = if rng() & 1 == 1 { !b } else { b };
                let l = g.and(a, b);
                if !l.is_const() {
                    lits.push(l);
                }
            }
            for max_leaves in [4usize, 6, 8] {
                for id in 0..g.len() {
                    let params = ReconvParams { max_leaves };
                    let reference = reconv_cut(&g, id, params);
                    let fast = reconv_cut_with(&g, id, params, &mut scratch);
                    assert_eq!(reference, fast, "node {id} max_leaves {max_leaves}");
                }
            }
        }
    }

    #[test]
    fn sweep_cut_is_identical_to_reference() {
        // Same shape as `scratch_cut_is_identical_to_reference`, pinning the
        // leaf-stamped variant used by the in-place propose pipeline.
        let mut state = 0xABCD_1234u64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut scratch = ReconvScratch::default();
        for _ in 0..5 {
            let mut g = Aig::new();
            let mut lits: Vec<aig::Lit> = g.add_inputs("x", 6);
            for _ in 0..60 {
                let a = lits[(rng() % lits.len() as u64) as usize];
                let b = lits[(rng() % lits.len() as u64) as usize];
                let a = if rng() & 1 == 1 { !a } else { a };
                let b = if rng() & 1 == 1 { !b } else { b };
                let l = g.and(a, b);
                if !l.is_const() {
                    lits.push(l);
                }
            }
            for max_leaves in [4usize, 6, 8] {
                for id in 0..g.len() {
                    let params = ReconvParams { max_leaves };
                    let reference = reconv_cut(&g, id, params);
                    let mut fast = Vec::new();
                    reconv_cut_sweep(&g, id, params, &mut scratch, &mut fast);
                    assert_eq!(reference, fast, "node {id} max_leaves {max_leaves}");
                }
            }
        }
    }

    #[test]
    fn reconvergence_is_preferred() {
        // f = (a & b) & (a & c): expanding either fanin re-uses `a`.
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let ac = g.and(a, c);
        let f = g.and(ab, ac);
        g.add_output("f", f);
        let leaves = reconv_cut(&g, f.node(), ReconvParams { max_leaves: 3 });
        let mut want = vec![a.node(), b.node(), c.node()];
        want.sort_unstable();
        assert_eq!(leaves, want);
    }
}
