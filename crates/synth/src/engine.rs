//! Selection between the reference and the fast cut/truth/NPN machinery.
//!
//! Every 4-cut consumer (`rewrite`, the technology mapper) and every
//! reconvergence-cut consumer (`refactor`, `restructure`) exists in two
//! functionally identical implementations:
//!
//! * **Reference** — the original allocation-heavy path: [`aig::CutEnumerator`]
//!   plus a per-(node, cut) [`aig::cut_truth`] cone walk, and exhaustive NPN
//!   orbit search during library matching.
//! * **Fast** — the small-cut engine: [`aig::Cut4Enumerator`] with fused
//!   `u16` truths, the scratch-based [`aig::cut_truth_with`] cone walk for
//!   wide cuts, and the precomputed [`crate::npn4`] table for matching.
//!
//! The fast path changes *cost only*: for any graph, library and parameter
//! set, both engines produce bit-identical results (pinned by differential
//! tests and by the `perf_report` benchmark binary, which times one against
//! the other).  The reference path is kept callable so the speedup remains
//! measurable and the equivalence remains testable.

use aig::Aig;

use crate::passes::Transform;

/// Which cut/truth/NPN implementation a pass should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutEngine {
    /// The original enumeration + cone-walk + orbit-search machinery.
    Reference,
    /// The zero-allocation small-cut engine (default).
    #[default]
    Fast,
}

/// How a resynthesis sweep applies its accepted replacements to the graph.
///
/// This is the second axis of the two-path pattern (orthogonal to
/// [`CutEngine`]): both modes produce bit-identical networks, only the cost
/// of the apply step differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EditMode {
    /// Re-emit every node into a fresh ping-pong buffer and clean it up —
    /// the PR 5 context path and the shape of the seed free functions.
    Rebuild,
    /// Mutate the resident graph through [`aig::InPlaceEditor`]: untouched
    /// nodes are kept in place, dangling cones are reclaimed by one
    /// compaction, and fanouts/levels come out patched rather than
    /// recomputed.  Falls back to `Rebuild` within a pass when the estimated
    /// dirty region crosses a threshold (default).
    #[default]
    InPlace,
}

impl Transform {
    /// Applies this transformation using an explicit [`CutEngine`].
    pub fn apply_with_engine(self, aig: &Aig, engine: CutEngine) -> Aig {
        match self {
            Transform::Balance => crate::balance::balance(aig),
            Transform::Restructure => crate::restructure::restructure_with_engine(
                aig,
                crate::restructure::RestructureParams::default(),
                engine,
            ),
            Transform::Rewrite => crate::rewrite::rewrite_with_engine(
                aig,
                false,
                crate::rewrite::RewriteParams::default(),
                engine,
            ),
            Transform::Refactor => crate::refactor::refactor_with_engine(
                aig,
                false,
                crate::refactor::RefactorParams::default(),
                engine,
            ),
            Transform::RewriteZ => crate::rewrite::rewrite_with_engine(
                aig,
                true,
                crate::rewrite::RewriteParams::default(),
                engine,
            ),
            Transform::RefactorZ => crate::refactor::refactor_with_engine(
                aig,
                true,
                crate::refactor::RefactorParams::default(),
                engine,
            ),
        }
    }
}

/// Applies a sequence of transformations with an explicit [`CutEngine`].
pub fn apply_sequence_with_engine(aig: &Aig, transforms: &[Transform], engine: CutEngine) -> Aig {
    let mut current = aig.cleanup();
    for &t in transforms {
        current = t.apply_with_engine(&current, engine);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{Design, DesignScale};

    #[test]
    fn engines_produce_identical_networks() {
        let g = Design::Alu64.generate(DesignScale::Tiny);
        for t in Transform::ALL {
            let reference = t.apply_with_engine(&g, CutEngine::Reference);
            let fast = t.apply_with_engine(&g, CutEngine::Fast);
            assert_eq!(
                reference.num_ands(),
                fast.num_ands(),
                "{t}: node count diverged"
            );
            assert_eq!(reference.depth(), fast.depth(), "{t}: depth diverged");
            assert!(
                aig::random_equivalence_check(&reference, &fast, 4, 41),
                "{t}: function diverged"
            );
        }
    }

    #[test]
    fn default_engine_is_fast() {
        assert_eq!(CutEngine::default(), CutEngine::Fast);
    }
}
