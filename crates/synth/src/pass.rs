//! The pass pipeline: a [`Pass`] trait over an arena-recycling [`PassContext`].
//!
//! The seed entry points (`Transform::apply`, `apply_sequence`, `map`) rebuild
//! a brand-new [`Aig`] — node vector, strash table, name lists — for every
//! intermediate graph of a flow, and recompute fanouts at the top of every
//! pass.  A 10–25-pass flow therefore performs ~50 full-graph reallocations,
//! and at data-collection scale (the paper labels 100,000 flows per design)
//! this allocation churn dominates flow-evaluation cost.
//!
//! [`PassContext`] removes it without changing a single result bit:
//!
//! * **Ping-pong graph buffers** — a small pool of recycled [`Aig`]s; every
//!   rebuild goes through [`Aig::cleanup_into_with`] / the sweep's
//!   decision-replay rebuild
//!   into a cleared buffer whose node vector, strash table and output lists
//!   keep their capacity across the whole flow.
//! * **Epoch-stamped analyses** — every pass output is a cleaned graph, and
//!   [`Aig`] now stamps that fact ([`Aig::is_clean`]) along with fanout
//!   freshness ([`Aig::fanouts_fresh`]); the redundant `cleanup()` +
//!   `compute_fanouts()` at the head of every pass collapse into epoch checks
//!   that invalidate on graph mutation instead of being recomputed.
//! * **Shared scratch** — cut-set vectors, the cut-truth cone-walk scratch,
//!   remap tables and the sweep's decision map are context-owned and reused
//!   by all passes of a flow.
//!
//! The seed free functions remain callable as the **Reference** path
//! (mirroring the [`CutEngine`] two-path pattern); the context path is pinned
//! bit-identical to it by differential tests (`tests/pass_context.rs`).

use std::time::Instant;

use aig::{Aig, AigScratch, CutSet4, CutTruthScratch, EditScratch, Lit, NodeId};
use flow_core::{fail_point, CancelToken, Cancelled};

use crate::engine::{CutEngine, EditMode};
use crate::passes::Transform;
use crate::reconv::ReconvScratch;
use crate::resyn::{DecisionTable, Proposal};
use crate::sop::{IsopCache, SopCostScratch};
use crate::strash::SweepStrash;

/// Maximum number of recycled graph buffers a context keeps around.
const POOL_CAPACITY: usize = 8;

/// A synthesis pass running through an arena-recycling [`PassContext`].
///
/// Implementations transform `g` **in place** (ping-ponging through the
/// context's buffers) and must be deterministic: the built-in passes are
/// bit-identical to their free-function Reference counterparts.
pub trait Pass {
    /// The ABC-style command name of the pass.
    fn name(&self) -> &'static str;
    /// Applies the pass to `g` using the context's recycled buffers.
    fn run(&self, g: &mut Aig, ctx: &mut PassContext);
}

/// Wall-clock statistics of one pass kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PassStat {
    /// Number of invocations recorded.
    pub calls: u64,
    /// Total wall-clock seconds across those invocations.
    pub seconds: f64,
}

impl PassStat {
    fn absorb(&mut self, other: &PassStat) {
        self.calls += other.calls;
        self.seconds += other.seconds;
    }
}

/// Per-pass timing breakdown of everything a [`PassContext`] executed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PassTimings {
    /// One slot per element of [`Transform::ALL`], indexed by
    /// [`Transform::index`].
    pub passes: [PassStat; Transform::COUNT],
    /// Technology mapping through [`map_with_ctx`](crate::mapper::map_with_ctx).
    pub mapping: PassStat,
}

impl PassTimings {
    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &PassTimings) {
        for (mine, theirs) in self.passes.iter_mut().zip(&other.passes) {
            mine.absorb(theirs);
        }
        self.mapping.absorb(&other.mapping);
    }

    /// Total seconds spent in transformation passes (mapping excluded).
    pub fn pass_seconds(&self) -> f64 {
        self.passes.iter().map(|s| s.seconds).sum()
    }

    /// Named `(pass, stat)` rows in [`Transform::ALL`] order, mapping last.
    pub fn entries(&self) -> Vec<(&'static str, PassStat)> {
        let mut rows: Vec<(&'static str, PassStat)> = Transform::ALL
            .iter()
            .map(|t| (t.command(), self.passes[t.index()]))
            .collect();
        rows.push(("map", self.mapping));
        rows
    }
}

/// The context's cooperative-cancellation checkpoint.
///
/// Holds the request's [`CancelToken`] (when one is armed) plus a countdown
/// that strides the actual clock/flag poll: inner per-node loops call
/// [`checkpoint`](Self::checkpoint) on every iteration, but only every
/// `STRIDE`-th call reads the token, so an unarmed or quiet token costs one
/// branch per node.  A fired token unwinds the current evaluation with a
/// typed [`Cancelled`] payload; the cancelling caller catches it with
/// `std::panic::catch_unwind`.
///
/// The unwind is safe for the context by construction: every pass mutates its
/// subject graph only at the very end (the `cleanup_into_with` /
/// rebuild step after the full sweep), and all sweep scratch is cleared at
/// the start of each use — so a cancelled context is immediately reusable and
/// its next run is bit-identical to a fresh context's (pinned by
/// `tests/cancellation.rs`).
#[derive(Debug, Default)]
pub(crate) struct CancelCell {
    token: Option<CancelToken>,
    countdown: u32,
}

impl CancelCell {
    const STRIDE: u32 = 64;

    fn arm(&mut self, token: CancelToken) {
        flow_core::silence_cancel_unwinds();
        self.token = Some(token);
        self.countdown = 0;
    }

    fn disarm(&mut self) {
        self.token = None;
    }

    /// Strided poll for inner per-node loops.
    #[inline]
    pub(crate) fn checkpoint(&mut self) {
        if self.token.is_none() {
            return;
        }
        if let Some(next) = self.countdown.checked_sub(1) {
            self.countdown = next;
            return;
        }
        self.countdown = Self::STRIDE - 1;
        self.poll();
    }

    /// Unstrided poll for pass boundaries.
    fn force_checkpoint(&mut self) {
        if self.token.is_some() {
            self.countdown = Self::STRIDE - 1;
            self.poll();
        }
    }

    #[cold]
    fn poll(&self) {
        if let Some(token) = &self.token {
            if let Err(cancelled) = token.check() {
                std::panic::panic_any(cancelled);
            }
        }
    }
}

/// Reusable buffers of the resynthesis sweep shared by `rewrite`, `refactor`
/// and `restructure`.
#[derive(Debug, Default)]
pub(crate) struct SweepScratch {
    pub(crate) ids: Vec<NodeId>,
    pub(crate) decisions: DecisionTable,
    pub(crate) proposals: Vec<Proposal>,
    pub(crate) rebuild_map: Vec<Lit>,
    pub(crate) leaf_lits: Vec<Lit>,
    pub(crate) out_lits: Vec<Lit>,
}

/// How the resynthesis sweeps applied their accepted decisions so far —
/// observability for the [`EditMode`] dispatch (tests and benchmarks read
/// this to assert which path actually ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Sweeps applied by mutating the resident graph in place.
    pub in_place: u64,
    /// Sweeps applied through the ping-pong rebuild (either because the
    /// context runs in [`EditMode::Rebuild`] or because the estimated dirty
    /// fraction crossed the in-place threshold).
    pub rebuilt: u64,
    /// Sweeps that accepted no replacement and left the graph untouched
    /// (only possible in [`EditMode::InPlace`], where identity is free).
    pub identity: u64,
}

/// Reusable buffers of the per-node proposal generators: the cut-truth cone
/// walk, the reconvergence-cut visited stamps, the SOP cost dry-run and the
/// memoizing ISOP cache all survive across every node of every pass of a flow.
///
/// The in-place pipeline additionally keeps the per-sweep strash snapshot and
/// the leaf-literal staging buffer of the winner-only propose path here.
#[derive(Debug, Default)]
pub(crate) struct ProposeScratch {
    pub(crate) truth: CutTruthScratch,
    pub(crate) reconv: ReconvScratch,
    pub(crate) cost: SopCostScratch,
    pub(crate) isop: IsopCache,
    pub(crate) strash: SweepStrash,
    pub(crate) leaf_lits: Vec<Lit>,
    pub(crate) cut_leaves: Vec<NodeId>,
}

/// The arena-recycling execution context of a synthesis flow.
///
/// One context serves one flow at a time (it is not `Sync`); creating it per
/// flow already amortises every buffer across the flow's 10–25 passes.
///
/// ```
/// use circuits::{Design, DesignScale};
/// use synth::{PassContext, Transform};
///
/// let design = Design::Alu64.generate(DesignScale::Tiny);
/// let mut ctx = PassContext::default();
/// let optimized = ctx.run_flow(&design, &[Transform::Balance, Transform::Rewrite]);
/// // Bit-identical to the Reference free-function path:
/// let reference = synth::apply_sequence(&design, &[Transform::Balance, Transform::Rewrite]);
/// assert_eq!(optimized.num_ands(), reference.num_ands());
/// assert_eq!(optimized.depth(), reference.depth());
/// ```
#[derive(Debug)]
pub struct PassContext {
    pub(crate) engine: CutEngine,
    pub(crate) edit_mode: EditMode,
    pub(crate) pool: Vec<Aig>,
    pub(crate) scratch: AigScratch,
    pub(crate) propose: ProposeScratch,
    pub(crate) cut4_sets: Vec<CutSet4>,
    pub(crate) balance_map: Vec<Option<Lit>>,
    pub(crate) sweep: SweepScratch,
    pub(crate) edit: EditScratch,
    pub(crate) apply_stats: ApplyStats,
    pub(crate) cancel: CancelCell,
    timings: PassTimings,
}

impl Default for PassContext {
    fn default() -> Self {
        Self::new(CutEngine::default())
    }
}

impl PassContext {
    /// Creates a context whose passes run on the given cut engine (and the
    /// default [`EditMode`]).
    pub fn new(engine: CutEngine) -> Self {
        Self::with_modes(engine, EditMode::default())
    }

    /// Creates a context with explicit cut-engine and edit-mode selections.
    pub fn with_modes(engine: CutEngine, edit_mode: EditMode) -> Self {
        PassContext {
            engine,
            edit_mode,
            pool: Vec::new(),
            scratch: AigScratch::default(),
            propose: ProposeScratch::default(),
            cut4_sets: Vec::new(),
            balance_map: Vec::new(),
            sweep: SweepScratch::default(),
            edit: EditScratch::default(),
            apply_stats: ApplyStats::default(),
            cancel: CancelCell::default(),
            timings: PassTimings::default(),
        }
    }

    /// Arms cooperative cancellation: until [`disarm_cancel`](Self::disarm_cancel),
    /// passes and the mapper poll `token` at pass boundaries and inside their
    /// per-node loops, unwinding with a [`Cancelled`] panic payload once it
    /// fires.  Callers pair this with `std::panic::catch_unwind` (or use
    /// [`run_flow_cancellable`](Self::run_flow_cancellable)).
    pub fn arm_cancel(&mut self, token: CancelToken) {
        self.cancel.arm(token);
    }

    /// Disarms cooperative cancellation (idempotent).
    pub fn disarm_cancel(&mut self) {
        self.cancel.disarm();
    }

    /// Backs this context's ISOP memo with a process-wide
    /// [`SharedIsopCache`](crate::SharedIsopCache) tier: local misses probe
    /// the shared map before computing and publish what they compute.
    ///
    /// Covers are pure functions of the truth table, so sharing never changes
    /// a result bit — concurrent workers just stop re-deriving each other's
    /// covers.  Returns `self` for builder-style chaining.
    pub fn share_isop_cache(mut self, shared: crate::SharedIsopCache) -> Self {
        self.propose.isop.set_shared(Some(shared));
        self
    }

    /// [`share_isop_cache`](Self::share_isop_cache) on an existing context.
    pub fn set_shared_isop_cache(&mut self, shared: Option<crate::SharedIsopCache>) {
        self.propose.isop.set_shared(shared);
    }

    /// The cut engine the context's passes run on.
    pub fn engine(&self) -> CutEngine {
        self.engine
    }

    /// The edit mode the context's resynthesis sweeps apply their decisions in.
    pub fn edit_mode(&self) -> EditMode {
        self.edit_mode
    }

    /// How the sweeps have applied their decisions so far (in-place vs
    /// rebuild vs free identity).
    pub fn apply_stats(&self) -> ApplyStats {
        self.apply_stats
    }

    /// Returns the recorded apply statistics and resets the accumulator.
    pub fn take_apply_stats(&mut self) -> ApplyStats {
        std::mem::take(&mut self.apply_stats)
    }

    /// The per-pass timing breakdown recorded so far.
    pub fn timings(&self) -> &PassTimings {
        &self.timings
    }

    /// Returns the recorded timings and resets the accumulator.
    pub fn take_timings(&mut self) -> PassTimings {
        std::mem::take(&mut self.timings)
    }

    pub(crate) fn record_mapping(&mut self, seconds: f64) {
        self.timings.mapping.calls += 1;
        self.timings.mapping.seconds += seconds;
    }

    /// Checks out a cleared graph buffer (recycled when available).
    pub fn take_buf(&mut self) -> Aig {
        pool_take(&mut self.pool)
    }

    /// Returns a graph buffer to the pool for later reuse.
    pub fn recycle(&mut self, g: Aig) {
        pool_give(&mut self.pool, g);
    }

    /// Makes `g` dangling-free in place: a no-op when the epoch stamp proves
    /// it already is, otherwise one [`Aig::cleanup_into_with`] ping-pong.
    pub fn ensure_clean(&mut self, g: &mut Aig) {
        if g.is_clean() {
            return;
        }
        let mut out = self.take_buf();
        g.cleanup_into_with(&mut out, &mut self.scratch);
        std::mem::swap(g, &mut out);
        self.recycle(out);
    }

    /// Applies one transformation to `g` in place, recording its wall time.
    pub fn apply(&mut self, t: Transform, g: &mut Aig) {
        self.cancel.force_checkpoint();
        fail_point!("pass.apply");
        let start = Instant::now();
        t.as_pass().run(g, self);
        let stat = &mut self.timings.passes[t.index()];
        stat.calls += 1;
        stat.seconds += start.elapsed().as_secs_f64();
    }

    /// Runs a whole flow on `design` and returns the optimized network.
    ///
    /// Semantics (and bits) match [`apply_sequence`](crate::apply_sequence):
    /// the design is cleaned first, then each transform applies in order.
    pub fn run_flow(&mut self, design: &Aig, flow: &[Transform]) -> Aig {
        let mut g = self.take_buf();
        g.copy_from(design);
        self.ensure_clean(&mut g);
        for &t in flow {
            self.apply(t, &mut g);
        }
        g
    }

    /// [`run_flow`](Self::run_flow) under a cancellation budget.
    ///
    /// Polls `cancel` at every pass boundary and inside the per-node loops;
    /// once it fires, the evaluation unwinds and `Err` is returned.  The
    /// context survives cancellation fully reusable: the next
    /// [`run_flow`](Self::run_flow) on it is bit-identical to one on a fresh
    /// context.  Non-cancellation panics are re-raised.
    pub fn run_flow_cancellable(
        &mut self,
        design: &Aig,
        flow: &[Transform],
        cancel: &CancelToken,
    ) -> Result<Aig, Cancelled> {
        self.arm_cancel(cancel.clone());
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_flow(design, flow)));
        self.disarm_cancel();
        match outcome {
            Ok(g) => Ok(g),
            Err(payload) => match payload.downcast::<Cancelled>() {
                Ok(cancelled) => Err(*cancelled),
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }
}

/// Pool primitives usable after destructuring a [`PassContext`] into disjoint
/// field borrows (the passes split the context between closure and sweep).
pub(crate) fn pool_take(pool: &mut Vec<Aig>) -> Aig {
    match pool.pop() {
        Some(mut g) => {
            g.clear_for_reuse();
            g
        }
        None => Aig::new(),
    }
}

pub(crate) fn pool_give(pool: &mut Vec<Aig>, g: Aig) {
    if pool.len() < POOL_CAPACITY {
        pool.push(g);
    }
}

/// `balance` through the context.
pub struct BalancePass;

impl Pass for BalancePass {
    fn name(&self) -> &'static str {
        "balance"
    }

    fn run(&self, g: &mut Aig, ctx: &mut PassContext) {
        crate::balance::balance_ctx(g, ctx);
    }
}

/// `restructure` through the context.
pub struct RestructurePass;

impl Pass for RestructurePass {
    fn name(&self) -> &'static str {
        "restructure"
    }

    fn run(&self, g: &mut Aig, ctx: &mut PassContext) {
        crate::restructure::restructure_ctx(
            g,
            crate::restructure::RestructureParams::default(),
            ctx,
        );
    }
}

/// `rewrite` / `rewrite -z` through the context.
pub struct RewritePass {
    /// Accept zero-gain replacements (the `-z` flavour).
    pub zero_cost: bool,
}

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        if self.zero_cost {
            "rewrite -z"
        } else {
            "rewrite"
        }
    }

    fn run(&self, g: &mut Aig, ctx: &mut PassContext) {
        crate::rewrite::rewrite_ctx(
            g,
            self.zero_cost,
            crate::rewrite::RewriteParams::default(),
            ctx,
        );
    }
}

/// `refactor` / `refactor -z` through the context.
pub struct RefactorPass {
    /// Accept zero-gain replacements (the `-z` flavour).
    pub zero_cost: bool,
}

impl Pass for RefactorPass {
    fn name(&self) -> &'static str {
        if self.zero_cost {
            "refactor -z"
        } else {
            "refactor"
        }
    }

    fn run(&self, g: &mut Aig, ctx: &mut PassContext) {
        crate::refactor::refactor_ctx(
            g,
            self.zero_cost,
            crate::refactor::RefactorParams::default(),
            ctx,
        );
    }
}

impl Transform {
    /// The context-path [`Pass`] implementing this transformation.
    pub fn as_pass(self) -> &'static dyn Pass {
        match self {
            Transform::Balance => &BalancePass,
            Transform::Restructure => &RestructurePass,
            Transform::Rewrite => &RewritePass { zero_cost: false },
            Transform::Refactor => &RefactorPass { zero_cost: false },
            Transform::RewriteZ => &RewritePass { zero_cost: true },
            Transform::RefactorZ => &RefactorPass { zero_cost: true },
        }
    }
}

/// Applies a sequence of transformations through a caller-owned context.
///
/// Bit-identical to [`apply_sequence`](crate::apply_sequence); the context's
/// buffers are recycled across all passes of the sequence.
pub fn apply_sequence_ctx(design: &Aig, transforms: &[Transform], ctx: &mut PassContext) -> Aig {
    ctx.run_flow(design, transforms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{Design, DesignScale};

    #[test]
    fn pass_names_match_transform_commands() {
        for t in Transform::ALL {
            assert_eq!(t.as_pass().name(), t.command());
        }
    }

    #[test]
    fn every_pass_leaves_a_clean_graph_with_fresh_epochs() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let mut ctx = PassContext::default();
        let mut g = ctx.take_buf();
        g.copy_from(&design);
        ctx.ensure_clean(&mut g);
        for t in Transform::ALL {
            ctx.apply(t, &mut g);
            assert!(g.is_clean(), "{t} must end in a cleaned graph");
        }
        // The epoch caches make the head of a follow-up pass free: a cached
        // recompute after ensure_clean must not mutate the graph.
        ctx.ensure_clean(&mut g);
        g.compute_fanouts_cached();
        let generation = g.generation();
        ctx.ensure_clean(&mut g);
        g.compute_fanouts_cached();
        assert_eq!(g.generation(), generation);
    }

    #[test]
    fn timings_record_every_applied_pass() {
        let design = Design::Alu64.generate(DesignScale::Tiny);
        let mut ctx = PassContext::default();
        let flow = [Transform::Balance, Transform::Rewrite, Transform::Balance];
        let _ = ctx.run_flow(&design, &flow);
        let timings = ctx.timings();
        assert_eq!(timings.passes[Transform::Balance.index()].calls, 2);
        assert_eq!(timings.passes[Transform::Rewrite.index()].calls, 1);
        assert_eq!(timings.passes[Transform::Refactor.index()].calls, 0);
        assert!(timings.pass_seconds() >= 0.0);
        let entries = ctx.take_timings().entries();
        assert_eq!(entries.len(), Transform::COUNT + 1);
        assert_eq!(entries.last().unwrap().0, "map");
        assert_eq!(ctx.timings().passes[0].calls, 0, "take_timings resets");
    }

    #[test]
    fn buffer_pool_recycles() {
        let mut ctx = PassContext::default();
        let design = Design::Montgomery64.generate(DesignScale::Tiny);
        let a = ctx.run_flow(&design, &[Transform::Balance]);
        ctx.recycle(a);
        assert!(!ctx.pool.is_empty());
        let b = ctx.take_buf();
        assert!(b.is_empty(), "recycled buffers come back cleared");
    }
}
