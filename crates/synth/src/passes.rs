//! The transformation set `S` of the paper and the pass dispatcher.
//!
//! Section 2.2 of the paper fixes `S = {balance, restructure, rewrite, refactor,
//! rewrite -z, refactor -z}` (n = 6): six logic transformations that can be
//! applied in any order.  [`Transform`] enumerates them and
//! [`Transform::apply`] dispatches to the corresponding pass.

use aig::Aig;
use serde::{Deserialize, Serialize};

use crate::engine::CutEngine;

/// One element of the paper's transformation set `S` (n = 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Transform {
    /// AND-tree balancing (`balance`).
    Balance,
    /// Shannon-decomposition restructuring (`restructure`).
    Restructure,
    /// Cut-based rewriting (`rewrite`).
    Rewrite,
    /// Large-cut refactoring (`refactor`).
    Refactor,
    /// Zero-cost-accepting rewriting (`rewrite -z`).
    RewriteZ,
    /// Zero-cost-accepting refactoring (`refactor -z`).
    RefactorZ,
}

impl Transform {
    /// The full transformation set in the order the paper lists it.
    pub const ALL: [Transform; 6] = [
        Transform::Balance,
        Transform::Restructure,
        Transform::Rewrite,
        Transform::Refactor,
        Transform::RewriteZ,
        Transform::RefactorZ,
    ];

    /// Number of transformations in the set (`n` in the paper's notation).
    pub const COUNT: usize = 6;

    /// The ABC command name of this transformation.
    pub fn command(self) -> &'static str {
        match self {
            Transform::Balance => "balance",
            Transform::Restructure => "restructure",
            Transform::Rewrite => "rewrite",
            Transform::Refactor => "refactor",
            Transform::RewriteZ => "rewrite -z",
            Transform::RefactorZ => "refactor -z",
        }
    }

    /// The index of this transformation within [`Transform::ALL`]
    /// (the `i` of `p_i` in the paper's notation, used by the one-hot encoding).
    pub fn index(self) -> usize {
        match self {
            Transform::Balance => 0,
            Transform::Restructure => 1,
            Transform::Rewrite => 2,
            Transform::Refactor => 3,
            Transform::RewriteZ => 4,
            Transform::RefactorZ => 5,
        }
    }

    /// Returns the transformation with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Transform::COUNT`.
    pub fn from_index(index: usize) -> Transform {
        Transform::ALL[index]
    }

    /// Applies this transformation to a network and returns the result.
    pub fn apply(self, aig: &Aig) -> Aig {
        self.apply_with_engine(aig, CutEngine::default())
    }
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.command())
    }
}

/// Applies a sequence of transformations in order and returns the final network.
///
/// This is exactly what running a synthesis flow inside ABC does to the design.
pub fn apply_sequence(aig: &Aig, transforms: &[Transform]) -> Aig {
    let mut current = aig.cleanup();
    for &t in transforms {
        current = t.apply(&current);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::random_equivalence_check;
    use circuits::{Design, DesignScale};

    #[test]
    fn indices_roundtrip() {
        for (i, t) in Transform::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(Transform::from_index(i), *t);
        }
        assert_eq!(Transform::COUNT, Transform::ALL.len());
    }

    #[test]
    fn command_names_match_abc() {
        assert_eq!(Transform::Balance.command(), "balance");
        assert_eq!(Transform::RewriteZ.command(), "rewrite -z");
        assert_eq!(Transform::RefactorZ.to_string(), "refactor -z");
    }

    #[test]
    fn every_transform_preserves_function() {
        let g = Design::Montgomery64.generate(DesignScale::Tiny);
        for t in Transform::ALL {
            let out = t.apply(&g);
            assert!(
                random_equivalence_check(&g, &out, 4, 7),
                "{t} changed the function"
            );
        }
    }

    #[test]
    fn sequences_preserve_function_and_differ_in_qor() {
        let g = Design::Alu64.generate(DesignScale::Tiny);
        let flows: [&[Transform]; 4] = [
            &[Transform::Balance, Transform::Rewrite, Transform::Refactor],
            &[Transform::Refactor, Transform::Rewrite, Transform::Balance],
            &[
                Transform::Restructure,
                Transform::Balance,
                Transform::RewriteZ,
            ],
            &[
                Transform::RefactorZ,
                Transform::Restructure,
                Transform::Rewrite,
            ],
        ];
        let mut signatures = Vec::new();
        for flow in flows {
            let r = apply_sequence(&g, flow);
            assert!(random_equivalence_check(&g, &r, 4, 3), "{flow:?}");
            signatures.push((r.num_ands(), r.depth()));
        }
        // The whole premise of the paper: order/choice matters for QoR, so the
        // four flows must not all collapse to the same structural result.
        let first = signatures[0];
        assert!(
            signatures.iter().any(|&s| s != first),
            "all flows produced identical structure: {signatures:?}"
        );
    }

    #[test]
    fn empty_sequence_is_cleanup() {
        let g = Design::Alu64.generate(DesignScale::Tiny);
        let out = apply_sequence(&g, &[]);
        assert_eq!(out.num_ands(), g.cleanup().num_ands());
    }
}
