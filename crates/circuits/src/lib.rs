//! # circuits — benchmark design generators
//!
//! Structural generators for the three designs the paper evaluates on — the
//! 64-bit Montgomery multiplier, the 128-bit AES core and the 64-bit ALU — plus
//! the arithmetic building blocks they are made of.
//!
//! The paper obtains these designs as OpenCores RTL and reads them into ABC;
//! this reproduction builds the equivalent combinational networks directly as
//! [`aig::Aig`]s (see DESIGN.md for the substitution rationale).  Every
//! generator is parameterizable so the test-suite and the benchmark harness can
//! use laptop-scale instances while the full paper-scale instances remain one
//! constructor call away.
//!
//! ```
//! use circuits::{Design, DesignScale};
//!
//! let aig = Design::Alu64.generate(DesignScale::Tiny);
//! assert!(aig.num_ands() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod alu;
pub mod arith;
pub mod montgomery;

pub use aes::{aes, AesConfig};
pub use alu::{alu, AluConfig, AluOp};
pub use arith::Bus;
pub use montgomery::{montgomery, montgomery_model, MontgomeryConfig};

use aig::Aig;

/// The three benchmark designs of the paper's evaluation (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// 64-bit Montgomery multiplier.
    Montgomery64,
    /// 128-bit AES core.
    Aes128,
    /// 64-bit ALU.
    Alu64,
}

/// How large an instance to generate.
///
/// `Full` is the paper-scale design; `Small` and `Tiny` are reduced instances
/// with the same structure, used by tests and the default benchmark harness so
/// that a complete experiment runs on a laptop in minutes instead of the 3–4
/// days the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignScale {
    /// Smallest instance, for unit tests (hundreds of AND nodes).
    Tiny,
    /// Default harness scale (thousands of AND nodes).
    Small,
    /// Paper-scale instance (tens of thousands of AND nodes).
    Full,
}

impl Design {
    /// All three benchmark designs in the order the paper lists them.
    pub const ALL: [Design; 3] = [Design::Montgomery64, Design::Aes128, Design::Alu64];

    /// Short name used in reports and file names.
    pub fn name(self) -> &'static str {
        match self {
            Design::Montgomery64 => "montgomery64",
            Design::Aes128 => "aes128",
            Design::Alu64 => "alu64",
        }
    }

    /// Generates the design at the requested scale.
    pub fn generate(self, scale: DesignScale) -> Aig {
        match (self, scale) {
            (Design::Montgomery64, DesignScale::Tiny) => montgomery(MontgomeryConfig::reduced(8)),
            (Design::Montgomery64, DesignScale::Small) => montgomery(MontgomeryConfig::reduced(16)),
            (Design::Montgomery64, DesignScale::Full) => montgomery(MontgomeryConfig::default()),
            (Design::Aes128, DesignScale::Tiny) => aes(AesConfig::reduced(1, 1)),
            (Design::Aes128, DesignScale::Small) => aes(AesConfig::reduced(2, 1)),
            (Design::Aes128, DesignScale::Full) => aes(AesConfig::default()),
            (Design::Alu64, DesignScale::Tiny) => alu(AluConfig::reduced(8)),
            (Design::Alu64, DesignScale::Small) => alu(AluConfig::reduced(24)),
            (Design::Alu64, DesignScale::Full) => alu(AluConfig::default()),
        }
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_generate_at_tiny_scale() {
        for d in Design::ALL {
            let g = d.generate(DesignScale::Tiny);
            assert!(g.num_ands() > 50, "{d} too small");
            assert!(g.num_outputs() > 0);
            assert!(g.name().len() > 2);
        }
    }

    #[test]
    fn scales_are_ordered_by_size() {
        for d in Design::ALL {
            let tiny = d.generate(DesignScale::Tiny).num_ands();
            let small = d.generate(DesignScale::Small).num_ands();
            assert!(tiny < small, "{d}: tiny {tiny} < small {small}");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Design::Aes128.to_string(), "aes128");
        assert_eq!(Design::Montgomery64.name(), "montgomery64");
    }
}
