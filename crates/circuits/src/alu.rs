//! A parameterizable ALU generator (the paper's "64-bit ALU" benchmark).

use aig::{Aig, Lit};

use crate::arith::{
    barrel_shift_left, barrel_shift_right, bitwise_and, bitwise_or, bitwise_xor, constant_bus,
    equals, less_than, mux_bus, reduce_or, ripple_add, ripple_sub, Bus,
};

/// Operations implemented by the [`alu`] generator, selected by a 3-bit opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// `a + b`
    Add = 0,
    /// `a - b`
    Sub = 1,
    /// `a & b`
    And = 2,
    /// `a | b`
    Or = 3,
    /// `a ^ b`
    Xor = 4,
    /// `a << b[0..log2(width)]`
    Sll = 5,
    /// `a >> b[0..log2(width)]`
    Srl = 6,
    /// `(a < b) ? 1 : 0` (unsigned)
    Slt = 7,
}

impl AluOp {
    /// All operations in opcode order.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Slt,
    ];

    /// The 3-bit opcode value.
    pub fn opcode(self) -> u8 {
        self as u8
    }

    /// Software model of the operation, used by the tests.
    pub fn model(self, a: u128, b: u128, width: usize) -> u128 {
        let mask = if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        let shift_mask = (width.next_power_of_two().trailing_zeros()) as u128;
        let sh = (b & ((1 << shift_mask) - 1)) as u32;
        let r = match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.checked_shl(sh).unwrap_or(0),
            AluOp::Srl => (a & mask).checked_shr(sh).unwrap_or(0),
            AluOp::Slt => u128::from((a & mask) < (b & mask)),
        };
        r & mask
    }
}

/// Configuration of the ALU generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluConfig {
    /// Operand width in bits.
    pub width: usize,
}

impl Default for AluConfig {
    /// The paper's benchmark: a 64-bit ALU.
    fn default() -> Self {
        AluConfig { width: 64 }
    }
}

impl AluConfig {
    /// A reduced-width configuration for fast tests and laptop-scale benches.
    pub fn reduced(width: usize) -> Self {
        AluConfig { width }
    }
}

/// Generates the ALU as a self-contained [`Aig`].
///
/// Inputs: `a[width]`, `b[width]`, `op[3]`.  Outputs: `y[width]`, `zero`,
/// `carry`.
pub fn alu(config: AluConfig) -> Aig {
    let width = config.width;
    assert!(width >= 2, "ALU width must be at least 2");
    let mut g = Aig::with_name(format!("alu{width}"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let op = g.add_inputs("op", 3);

    let shift_bits = width.next_power_of_two().trailing_zeros() as usize;
    let (add, carry_add) = ripple_add(&mut g, &a, &b, Lit::FALSE);
    let (sub, no_borrow) = ripple_sub(&mut g, &a, &b);
    let and_r = bitwise_and(&mut g, &a, &b);
    let or_r = bitwise_or(&mut g, &a, &b);
    let xor_r = bitwise_xor(&mut g, &a, &b);
    let sll = barrel_shift_left(&mut g, &a, &b[..shift_bits]);
    let srl = barrel_shift_right(&mut g, &a, &b[..shift_bits]);
    let lt = less_than(&mut g, &a, &b);
    let mut slt = constant_bus(width, 0);
    slt[0] = lt;

    // One-hot decode the opcode and select the result.
    let results: [&Bus; 8] = [&add, &sub, &and_r, &or_r, &xor_r, &sll, &srl, &slt];
    let mut y = constant_bus(width, 0);
    for (code, result) in results.iter().enumerate() {
        let mut sel = Lit::TRUE;
        for (bit, &ob) in op.iter().enumerate() {
            let want = code >> bit & 1 == 1;
            sel = g.and(sel, ob ^ !want);
        }
        y = mux_bus(&mut g, sel, result, &y);
    }

    let zero = !reduce_or(&mut g, &y);
    let eq = equals(&mut g, &a, &b);
    let carry = g.mux(op[0], no_borrow, carry_add);

    g.add_outputs("y", &y);
    g.add_output("zero", zero);
    g.add_output("carry", carry);
    g.add_output("eq", eq);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Simulator;

    fn run_alu(g: &Aig, width: usize, a: u128, b: u128, op: AluOp) -> (u128, bool) {
        let sim = Simulator::new(g);
        let mut bits = Vec::new();
        for i in 0..width {
            bits.push(a >> i & 1 == 1);
        }
        for i in 0..width {
            bits.push(b >> i & 1 == 1);
        }
        for i in 0..3 {
            bits.push(op.opcode() >> i & 1 == 1);
        }
        let out = sim.evaluate(&bits);
        let y = out[..width]
            .iter()
            .enumerate()
            .fold(0u128, |acc, (i, &v)| acc | (u128::from(v) << i));
        (y, out[width])
    }

    #[test]
    fn alu8_matches_model_on_all_ops() {
        let width = 8;
        let g = alu(AluConfig::reduced(width));
        let samples = [0u128, 1, 2, 7, 0x80, 0xFF, 0xA5, 0x3C];
        for op in AluOp::ALL {
            for &a in &samples {
                for &b in &samples {
                    let (y, zero) = run_alu(&g, width, a, b, op);
                    let want = op.model(a, b, width);
                    assert_eq!(y, want, "op={op:?} a={a:#x} b={b:#x}");
                    assert_eq!(zero, want == 0, "zero flag op={op:?} a={a:#x} b={b:#x}");
                }
            }
        }
    }

    #[test]
    fn alu_has_expected_interface() {
        let g = alu(AluConfig::reduced(16));
        assert_eq!(g.num_inputs(), 16 + 16 + 3);
        assert_eq!(g.num_outputs(), 16 + 3);
        assert!(g.num_ands() > 500, "a 16-bit ALU is a non-trivial network");
    }

    #[test]
    fn default_config_is_64_bit() {
        assert_eq!(AluConfig::default().width, 64);
    }

    #[test]
    fn opcodes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in AluOp::ALL {
            assert!(seen.insert(op.opcode()));
        }
        assert_eq!(seen.len(), 8);
    }
}
