//! A parameterizable Montgomery multiplier (the paper's "64-bit Montgomery
//! multiplier" benchmark).
//!
//! The generator unrolls the radix-2 Montgomery multiplication algorithm
//! (`MonPro(a, b, n) = a * b * 2^{-k} mod n`) into a purely combinational
//! network: `k` iterations of add / conditional-add / shift, followed by a
//! final conditional subtraction.

use aig::{Aig, Lit};

use crate::arith::{conditional_subtract, constant_bus, ripple_add, Bus};

/// Configuration of the Montgomery multiplier generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryConfig {
    /// Operand width `k` in bits; the algorithm runs `k` unrolled iterations.
    pub width: usize,
}

impl Default for MontgomeryConfig {
    /// The paper's benchmark: a 64-bit Montgomery multiplier.
    fn default() -> Self {
        MontgomeryConfig { width: 64 }
    }
}

impl MontgomeryConfig {
    /// A reduced-width configuration for fast tests and laptop-scale benches.
    pub fn reduced(width: usize) -> Self {
        MontgomeryConfig { width }
    }
}

/// Generates the Montgomery multiplier as a self-contained [`Aig`].
///
/// Inputs: `a[width]`, `b[width]`, `n[width]` (the odd modulus).  Output:
/// `p[width]` = `a * b * 2^{-width} mod n`, assuming `a, b < n` and `n` odd.
pub fn montgomery(config: MontgomeryConfig) -> Aig {
    let k = config.width;
    assert!(k >= 2, "width must be at least 2");
    let mut g = Aig::with_name(format!("montgomery{k}"));
    let a = g.add_inputs("a", k);
    let b = g.add_inputs("b", k);
    let n = g.add_inputs("n", k);

    // Accumulator is k + 2 bits wide: u < 2n during the loop.
    let acc_width = k + 2;
    let mut u: Bus = constant_bus(acc_width, 0);
    let b_ext: Bus = {
        let mut v = b.clone();
        v.resize(acc_width, Lit::FALSE);
        v
    };
    let n_ext: Bus = {
        let mut v = n.clone();
        v.resize(acc_width, Lit::FALSE);
        v
    };

    for &ai in a.iter().take(k) {
        // u += a_i ? b : 0
        let gated_b: Bus = b_ext.iter().map(|&l| g.and(l, ai)).collect();
        let (u1, _) = ripple_add(&mut g, &u, &gated_b, Lit::FALSE);
        // If u is odd, add n to make it even.
        let odd = u1[0];
        let gated_n: Bus = n_ext.iter().map(|&l| g.and(l, odd)).collect();
        let (u2, _) = ripple_add(&mut g, &u1, &gated_n, Lit::FALSE);
        // u >>= 1 (the low bit is zero by construction).
        let mut shifted: Bus = u2[1..].to_vec();
        shifted.push(Lit::FALSE);
        u = shifted;
    }

    // Final reduction: if u >= n, subtract n once.
    let reduced = conditional_subtract(&mut g, &u, &n_ext);
    // The result fits in k bits when the inputs satisfy the preconditions, but
    // expose a guard bit as an extra output for observability.
    let result: Bus = reduced[..k].to_vec();
    let overflow = reduced[k];
    g.add_outputs("p", &result);
    g.add_output("overflow", overflow);
    g
}

/// Software model of `MonPro`, used by the tests.
pub fn montgomery_model(a: u128, b: u128, n: u128, width: usize) -> u128 {
    assert!(n % 2 == 1, "modulus must be odd");
    let mut u: u128 = 0;
    for i in 0..width {
        if a >> i & 1 == 1 {
            u += b;
        }
        if u & 1 == 1 {
            u += n;
        }
        u >>= 1;
    }
    if u >= n {
        u -= n;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Simulator;

    fn run(g: &Aig, width: usize, a: u128, b: u128, n: u128) -> u128 {
        let sim = Simulator::new(g);
        let mut bits = Vec::new();
        for value in [a, b, n] {
            for i in 0..width {
                bits.push(value >> i & 1 == 1);
            }
        }
        let out = sim.evaluate(&bits);
        out[..width]
            .iter()
            .enumerate()
            .fold(0u128, |acc, (i, &v)| acc | (u128::from(v) << i))
    }

    #[test]
    fn matches_model_for_8_bit_operands() {
        let width = 8;
        let g = montgomery(MontgomeryConfig::reduced(width));
        let n = 239u128; // odd modulus
        for &a in &[0u128, 1, 5, 100, 200, 238] {
            for &b in &[0u128, 1, 7, 77, 150, 238] {
                let got = run(&g, width, a, b, n);
                let want = montgomery_model(a, b, n, width);
                assert_eq!(got, want, "a={a} b={b} n={n}");
            }
        }
    }

    #[test]
    fn model_computes_montgomery_product() {
        // MonPro(a, b) = a*b*R^{-1} mod n with R = 2^width.
        let width = 8u32;
        let n = 239u128;
        let r = 1u128 << width;
        // Modular inverse of R mod n by brute force.
        let r_inv = (1..n).find(|x| (r * x) % n == 1).expect("R invertible");
        for a in [3u128, 17, 88] {
            for b in [5u128, 101, 200] {
                let want = a * b % n * r_inv % n;
                assert_eq!(montgomery_model(a, b, n, width as usize), want);
            }
        }
    }

    #[test]
    fn interface_and_size() {
        let g = montgomery(MontgomeryConfig::reduced(16));
        assert_eq!(g.num_inputs(), 48);
        assert_eq!(g.num_outputs(), 17);
        assert!(
            g.num_ands() > 1000,
            "unrolled datapath is non-trivial: {}",
            g.num_ands()
        );
    }

    #[test]
    fn default_is_64_bit() {
        assert_eq!(MontgomeryConfig::default().width, 64);
    }
}
