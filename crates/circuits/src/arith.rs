//! Word-level arithmetic building blocks.
//!
//! All functions operate on little-endian buses (`words[0]` is the LSB) of
//! [`Lit`]s and append logic to a caller-supplied [`Aig`].

use aig::{Aig, Lit};

/// A little-endian bus of literals.
pub type Bus = Vec<Lit>;

/// Returns a bus of the given width holding the constant `value`.
pub fn constant_bus(width: usize, value: u128) -> Bus {
    (0..width)
        .map(|i| {
            if value >> i & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Full adder: returns `(sum, carry)`.
pub fn full_adder(g: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let sum = g.xor_many(&[a, b, cin]);
    let carry = g.maj(a, b, cin);
    (sum, carry)
}

/// Ripple-carry addition of two equal-width buses; returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the buses have different widths.
pub fn ripple_add(g: &mut Aig, a: &[Lit], b: &[Lit], carry_in: Lit) -> (Bus, Lit) {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, c) = full_adder(g, a[i], b[i], carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b`; returns `(difference, borrow_is_absent)`.
///
/// The second element is the final carry of `a + !b + 1`, i.e. `1` when `a >= b`
/// for unsigned operands.
pub fn ripple_sub(g: &mut Aig, a: &[Lit], b: &[Lit]) -> (Bus, Lit) {
    let nb: Bus = b.iter().map(|&l| !l).collect();
    ripple_add(g, a, &nb, Lit::TRUE)
}

/// Bitwise AND of two buses.
pub fn bitwise_and(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Bus {
    a.iter().zip(b).map(|(&x, &y)| g.and(x, y)).collect()
}

/// Bitwise OR of two buses.
pub fn bitwise_or(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Bus {
    a.iter().zip(b).map(|(&x, &y)| g.or(x, y)).collect()
}

/// Bitwise XOR of two buses.
pub fn bitwise_xor(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Bus {
    a.iter().zip(b).map(|(&x, &y)| g.xor(x, y)).collect()
}

/// Bitwise NOT of a bus.
pub fn bitwise_not(a: &[Lit]) -> Bus {
    a.iter().map(|&x| !x).collect()
}

/// Word-level 2-to-1 multiplexer: `sel ? t : e`, bit by bit.
pub fn mux_bus(g: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Bus {
    assert_eq!(t.len(), e.len(), "bus width mismatch");
    t.iter().zip(e).map(|(&x, &y)| g.mux(sel, x, y)).collect()
}

/// Logical left shift by a variable amount (barrel shifter).
///
/// `amount` is interpreted as an unsigned little-endian bus; only the low
/// `ceil(log2(width))` bits are used.
pub fn barrel_shift_left(g: &mut Aig, value: &[Lit], amount: &[Lit]) -> Bus {
    let width = value.len();
    let stages = usize::BITS as usize - (width.max(2) - 1).leading_zeros() as usize;
    let mut cur: Bus = value.to_vec();
    for (s, &select) in amount.iter().enumerate().take(stages) {
        let shift = 1usize << s;
        let mut shifted = vec![Lit::FALSE; width];
        shifted[shift..width].copy_from_slice(&cur[..width - shift]);
        cur = mux_bus(g, select, &shifted, &cur);
    }
    cur
}

/// Logical right shift by a variable amount (barrel shifter).
pub fn barrel_shift_right(g: &mut Aig, value: &[Lit], amount: &[Lit]) -> Bus {
    let width = value.len();
    let stages = usize::BITS as usize - (width.max(2) - 1).leading_zeros() as usize;
    let mut cur: Bus = value.to_vec();
    for (s, &select) in amount.iter().enumerate().take(stages) {
        let shift = 1usize << s;
        let mut shifted = vec![Lit::FALSE; width];
        let kept = width.saturating_sub(shift);
        shifted[..kept].copy_from_slice(&cur[shift..shift + kept]);
        cur = mux_bus(g, select, &shifted, &cur);
    }
    cur
}

/// Unsigned equality comparison of two buses.
pub fn equals(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let diffs = bitwise_xor(g, a, b);
    let any = g.or_many(&diffs);
    !any
}

/// Unsigned less-than comparison `a < b`.
pub fn less_than(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let (_, no_borrow) = ripple_sub(g, a, b);
    !no_borrow
}

/// Reduction OR of a bus (`1` when any bit is set).
pub fn reduce_or(g: &mut Aig, a: &[Lit]) -> Lit {
    g.or_many(a)
}

/// Reduction XOR (parity) of a bus.
pub fn reduce_xor(g: &mut Aig, a: &[Lit]) -> Lit {
    g.xor_many(a)
}

/// Unsigned array multiplier; returns the full `2 * width` product bus.
pub fn array_multiply(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Bus {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    let width = a.len();
    let mut acc = constant_bus(2 * width, 0);
    for (i, &bi) in b.iter().enumerate() {
        // Partial product `a << i` gated by bit `b[i]`.
        let mut pp = constant_bus(2 * width, 0);
        for (j, &aj) in a.iter().enumerate() {
            pp[i + j] = g.and(aj, bi);
        }
        let (sum, _) = ripple_add(g, &acc, &pp, Lit::FALSE);
        acc = sum;
    }
    acc
}

/// Adds a modular reduction step: returns `value - modulus` when `value >= modulus`,
/// otherwise `value` (single conditional subtraction).
pub fn conditional_subtract(g: &mut Aig, value: &[Lit], modulus: &[Lit]) -> Bus {
    let (diff, no_borrow) = ripple_sub(g, value, modulus);
    mux_bus(g, no_borrow, &diff, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Simulator;

    fn eval_bus(out: &[bool]) -> u128 {
        out.iter()
            .enumerate()
            .fold(0u128, |acc, (i, &b)| acc | (u128::from(b) << i))
    }

    /// Builds a circuit with two `width`-bit inputs, applies `f`, and checks the
    /// outputs against `model` for a set of interesting operand pairs.
    fn check_binary(
        width: usize,
        f: impl Fn(&mut Aig, &[Lit], &[Lit]) -> Bus,
        model: impl Fn(u128, u128) -> u128,
        out_width: usize,
    ) {
        let mut g = Aig::new();
        let a = g.add_inputs("a", width);
        let b = g.add_inputs("b", width);
        let out = f(&mut g, &a, &b);
        assert_eq!(out.len(), out_width);
        g.add_outputs("y", &out);
        let sim = Simulator::new(&g);
        let mask = (1u128 << width) - 1;
        let samples = [0u128, 1, 2, 3, 5, mask, mask - 1, 0xAA & mask, 0x5F & mask];
        for &x in &samples {
            for &y in &samples {
                let mut assignment = Vec::new();
                for i in 0..width {
                    assignment.push(x >> i & 1 == 1);
                }
                for i in 0..width {
                    assignment.push(y >> i & 1 == 1);
                }
                let got = eval_bus(&sim.evaluate(&assignment));
                let want = model(x, y) & ((1u128 << out_width) - 1);
                assert_eq!(got, want, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn adder_is_correct() {
        check_binary(
            8,
            |g, a, b| {
                let (s, c) = ripple_add(g, a, b, Lit::FALSE);
                let mut out = s;
                out.push(c);
                out
            },
            |x, y| x + y,
            9,
        );
    }

    #[test]
    fn subtractor_is_correct() {
        check_binary(
            8,
            |g, a, b| ripple_sub(g, a, b).0,
            |x, y| x.wrapping_sub(y),
            8,
        );
    }

    #[test]
    fn bitwise_ops_are_correct() {
        check_binary(6, bitwise_and, |x, y| x & y, 6);
        check_binary(6, bitwise_or, |x, y| x | y, 6);
        check_binary(6, bitwise_xor, |x, y| x ^ y, 6);
    }

    #[test]
    fn multiplier_is_correct() {
        check_binary(5, array_multiply, |x, y| x * y, 10);
    }

    #[test]
    fn shifts_are_correct() {
        // Shift amount is the low 3 bits of the second operand.
        check_binary(
            8,
            |g, a, b| barrel_shift_left(g, a, &b[..3]),
            |x, y| x << (y & 7),
            8,
        );
        check_binary(
            8,
            |g, a, b| barrel_shift_right(g, a, &b[..3]),
            |x, y| x >> (y & 7),
            8,
        );
    }

    #[test]
    fn comparisons_are_correct() {
        check_binary(
            7,
            |g, a, b| vec![equals(g, a, b), less_than(g, a, b)],
            |x, y| u128::from(x == y) | u128::from(x < y) << 1,
            2,
        );
    }

    #[test]
    fn conditional_subtract_reduces() {
        check_binary(
            8,
            conditional_subtract,
            |x, y| if x >= y { x - y } else { x },
            8,
        );
    }

    #[test]
    fn constant_bus_encodes_value() {
        let bus = constant_bus(8, 0xA5);
        assert_eq!(bus.len(), 8);
        assert_eq!(bus[0], Lit::TRUE);
        assert_eq!(bus[1], Lit::FALSE);
        assert_eq!(bus[7], Lit::TRUE);
    }

    #[test]
    fn reductions() {
        let mut g = Aig::new();
        let a = g.add_inputs("a", 4);
        let any = reduce_or(&mut g, &a);
        let parity = reduce_xor(&mut g, &a);
        g.add_output("any", any);
        g.add_output("parity", parity);
        let sim = Simulator::new(&g);
        for v in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| v >> i & 1 == 1).collect();
            let out = sim.evaluate(&bits);
            assert_eq!(out[0], v != 0);
            assert_eq!(out[1], v.count_ones() % 2 == 1);
        }
    }
}
