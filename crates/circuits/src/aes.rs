//! A parameterizable AES encryption datapath (the paper's "128-bit AES core").
//!
//! The generator builds the combinational round datapath — SubBytes (S-boxes
//! realised as GF(2^8) inversion logic plus the affine transform), ShiftRows,
//! MixColumns and AddRoundKey — for a configurable number of state columns and
//! rounds.  Round keys are primary inputs (the key schedule is not replicated),
//! which keeps the network purely combinational exactly like the logic cone ABC
//! optimises in the paper.

use aig::{Aig, Lit};

use crate::arith::bitwise_xor;

/// The AES field polynomial x^8 + x^4 + x^3 + x + 1.
const AES_POLY: u16 = 0x11B;

/// Software GF(2^8) multiplication, used both to synthesise linear layers and by
/// the reference model in tests.
pub fn gf_mul_model(mut a: u8, mut b: u8) -> u8 {
    let mut r = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            r ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= (AES_POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    r
}

/// Software model of the AES S-box (GF(2^8) inversion + affine transform).
pub fn sbox_model(x: u8) -> u8 {
    let inv = if x == 0 {
        0
    } else {
        // Brute-force inverse: the field is tiny.
        (1u16..=255)
            .map(|c| c as u8)
            .find(|&c| gf_mul_model(x, c) == 1)
            .expect("every nonzero element has an inverse")
    };
    // Affine transform.
    let mut y = 0u8;
    for i in 0..8 {
        let bit = (inv >> i & 1)
            ^ (inv >> ((i + 4) % 8) & 1)
            ^ (inv >> ((i + 5) % 8) & 1)
            ^ (inv >> ((i + 6) % 8) & 1)
            ^ (inv >> ((i + 7) % 8) & 1)
            ^ (0x63 >> i & 1);
        y |= bit << i;
    }
    y
}

/// A byte of logic: eight literals, LSB first.
pub type ByteBus = [Lit; 8];

fn to_byte(bits: &[Lit]) -> ByteBus {
    let mut b = [Lit::FALSE; 8];
    b.copy_from_slice(&bits[..8]);
    b
}

/// GF(2^8) multiplication by a *constant*, which is a linear map (XOR network).
pub fn gf_mul_const(g: &mut Aig, a: &ByteBus, c: u8) -> ByteBus {
    // Column j of the linear map is gf_mul_model(1 << j, c).
    let mut out = [Lit::FALSE; 8];
    for (j, &aj) in a.iter().enumerate() {
        let col = gf_mul_model(1 << j, c);
        for (i, bit) in out.iter_mut().enumerate() {
            if col >> i & 1 == 1 {
                *bit = g.xor(*bit, aj);
            }
        }
    }
    out
}

/// Structural GF(2^8) multiplication of two variable bytes.
pub fn gf_mul(g: &mut Aig, a: &ByteBus, b: &ByteBus) -> ByteBus {
    // Shift-and-add: acc ^= (a * x^i) & b_i, with a * x^i reduced as we go.
    let mut acc = [Lit::FALSE; 8];
    let mut shifted: Vec<Lit> = a.to_vec();
    for &bi in b.iter() {
        for i in 0..8 {
            let gated = g.and(shifted[i], bi);
            acc[i] = g.xor(acc[i], gated);
        }
        // shifted = xtime(shifted)
        let msb = shifted[7];
        let mut next = vec![Lit::FALSE; 8];
        next[1..8].copy_from_slice(&shifted[..7]);
        // Conditionally XOR the reduction constant 0x1B.
        for (i, bit) in next.iter_mut().enumerate() {
            if 0x1B >> i & 1 == 1 {
                *bit = g.xor(*bit, msb);
            }
        }
        shifted = next;
    }
    acc
}

/// Structural GF(2^8) squaring (a linear map, far cheaper than a full multiply).
pub fn gf_square(g: &mut Aig, a: &ByteBus) -> ByteBus {
    let mut out = [Lit::FALSE; 8];
    for (j, &aj) in a.iter().enumerate() {
        let col = gf_mul_model(1 << j, 1 << j);
        for (i, bit) in out.iter_mut().enumerate() {
            if col >> i & 1 == 1 {
                *bit = g.xor(*bit, aj);
            }
        }
    }
    out
}

/// Structural AES S-box: GF(2^8) inversion via x^254 followed by the affine map.
pub fn sbox(g: &mut Aig, x: &ByteBus) -> ByteBus {
    // Inversion: x^254 = x^2 * x^4 * x^8 * x^16 * x^32 * x^64 * x^128.
    let p2 = gf_square(g, x);
    let p4 = gf_square(g, &p2);
    let p8 = gf_square(g, &p4);
    let p16 = gf_square(g, &p8);
    let p32 = gf_square(g, &p16);
    let p64 = gf_square(g, &p32);
    let p128 = gf_square(g, &p64);
    let t1 = gf_mul(g, &p2, &p4);
    let t2 = gf_mul(g, &t1, &p8);
    let t3 = gf_mul(g, &t2, &p16);
    let t4 = gf_mul(g, &t3, &p32);
    let t5 = gf_mul(g, &t4, &p64);
    let inv = gf_mul(g, &t5, &p128);
    // Affine transform y_i = inv_i ^ inv_{i+4} ^ inv_{i+5} ^ inv_{i+6} ^ inv_{i+7} ^ c_i.
    let mut out = [Lit::FALSE; 8];
    for i in 0..8 {
        let mut y = Lit::FALSE;
        for off in [0usize, 4, 5, 6, 7] {
            y = g.xor(y, inv[(i + off) % 8]);
        }
        if 0x63 >> i & 1 == 1 {
            y = !y;
        }
        out[i] = y;
    }
    out
}

/// Configuration of the AES datapath generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AesConfig {
    /// Number of state columns (4 bytes each).  The full AES-128 state has 4.
    pub columns: usize,
    /// Number of unrolled rounds.
    pub rounds: usize,
}

impl Default for AesConfig {
    /// The paper's benchmark: the 128-bit AES core (full 4-column state, one
    /// unrolled round of the iterative core).
    fn default() -> Self {
        AesConfig {
            columns: 4,
            rounds: 1,
        }
    }
}

impl AesConfig {
    /// A reduced configuration for fast tests and laptop-scale benches.
    pub fn reduced(columns: usize, rounds: usize) -> Self {
        AesConfig { columns, rounds }
    }

    /// State width in bits.
    pub fn state_bits(&self) -> usize {
        self.columns * 32
    }
}

/// Generates the AES datapath as a self-contained [`Aig`].
///
/// Inputs: `pt[state_bits]` (plaintext state, column-major byte order) and
/// `rk{r}[state_bits]` for each round `r`.  Outputs: `ct[state_bits]`.
pub fn aes(config: AesConfig) -> Aig {
    assert!(
        config.columns >= 1 && config.columns <= 4,
        "1..=4 state columns supported"
    );
    assert!(config.rounds >= 1, "at least one round required");
    let nbytes = config.columns * 4;
    let mut g = Aig::with_name(format!("aes{}x{}", config.state_bits(), config.rounds));
    let pt = g.add_inputs("pt", nbytes * 8);
    let round_keys: Vec<Vec<Lit>> = (0..config.rounds)
        .map(|r| g.add_inputs(&format!("rk{r}"), nbytes * 8))
        .collect();

    // State as bytes in column-major order: byte index = col * 4 + row.
    let mut state: Vec<ByteBus> = (0..nbytes)
        .map(|i| to_byte(&pt[i * 8..i * 8 + 8]))
        .collect();

    for rk in &round_keys {
        // SubBytes.
        state = state.iter().map(|b| sbox(&mut g, b)).collect();
        // ShiftRows: row r rotates left by r columns (modulo the column count).
        let mut shifted = state.clone();
        for row in 0..4 {
            for col in 0..config.columns {
                let src_col = (col + row) % config.columns;
                shifted[col * 4 + row] = state[src_col * 4 + row];
            }
        }
        state = shifted;
        // MixColumns.
        let mut mixed = state.clone();
        for col in 0..config.columns {
            let s: Vec<ByteBus> = (0..4).map(|r| state[col * 4 + r]).collect();
            for row in 0..4 {
                // [2 3 1 1] circulant matrix.
                let coeffs = [2u8, 3, 1, 1];
                let mut acc = [Lit::FALSE; 8];
                for k in 0..4 {
                    let c = coeffs[(k + 4 - row) % 4];
                    let term = gf_mul_const(&mut g, &s[k], c);
                    for i in 0..8 {
                        acc[i] = g.xor(acc[i], term[i]);
                    }
                }
                mixed[col * 4 + row] = acc;
            }
        }
        state = mixed;
        // AddRoundKey.
        for (i, byte) in state.iter_mut().enumerate() {
            let key_byte = to_byte(&rk[i * 8..i * 8 + 8]);
            let xored = bitwise_xor(&mut g, byte, &key_byte);
            byte.copy_from_slice(&xored);
        }
    }

    let flat: Vec<Lit> = state.iter().flat_map(|b| b.iter().copied()).collect();
    g.add_outputs("ct", &flat);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Simulator;

    /// Software model of one reduced-AES round, mirroring the generator.
    fn round_model(state: &[u8], key: &[u8], columns: usize) -> Vec<u8> {
        let nbytes = columns * 4;
        let sub: Vec<u8> = state.iter().map(|&b| sbox_model(b)).collect();
        let mut shifted = sub.clone();
        for row in 0..4 {
            for col in 0..columns {
                let src_col = (col + row) % columns;
                shifted[col * 4 + row] = sub[src_col * 4 + row];
            }
        }
        let mut mixed = shifted.clone();
        for col in 0..columns {
            for row in 0..4 {
                let coeffs = [2u8, 3, 1, 1];
                let mut acc = 0u8;
                for k in 0..4 {
                    let c = coeffs[(k + 4 - row) % 4];
                    acc ^= gf_mul_model(shifted[col * 4 + k], c);
                }
                mixed[col * 4 + row] = acc;
            }
        }
        (0..nbytes).map(|i| mixed[i] ^ key[i]).collect()
    }

    fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
        bytes
            .iter()
            .flat_map(|&b| (0..8).map(move |i| b >> i & 1 == 1))
            .collect()
    }

    fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
        bits.chunks(8)
            .map(|c| {
                c.iter()
                    .enumerate()
                    .fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << i))
            })
            .collect()
    }

    #[test]
    fn gf_mul_model_agrees_with_known_values() {
        assert_eq!(gf_mul_model(0x57, 0x83), 0xC1);
        assert_eq!(gf_mul_model(0x57, 0x13), 0xFE);
        assert_eq!(gf_mul_model(0x02, 0x80), 0x1B);
        assert_eq!(gf_mul_model(1, 0xAB), 0xAB);
        assert_eq!(gf_mul_model(0, 0xAB), 0);
    }

    #[test]
    fn sbox_model_matches_fips_values() {
        // Spot-check entries of the FIPS-197 S-box table.
        assert_eq!(sbox_model(0x00), 0x63);
        assert_eq!(sbox_model(0x01), 0x7C);
        assert_eq!(sbox_model(0x53), 0xED);
        assert_eq!(sbox_model(0xFF), 0x16);
        assert_eq!(sbox_model(0x10), 0xCA);
    }

    #[test]
    fn structural_gf_mul_matches_model() {
        let mut g = Aig::new();
        let a = g.add_inputs("a", 8);
        let b = g.add_inputs("b", 8);
        let p = gf_mul(&mut g, &to_byte(&a), &to_byte(&b));
        g.add_outputs("p", &p);
        let sim = Simulator::new(&g);
        for &(x, y) in &[
            (0x57u8, 0x83u8),
            (0x13, 0xFE),
            (0xFF, 0xFF),
            (0x02, 0x80),
            (0, 0x55),
        ] {
            let bits = bytes_to_bits(&[x, y]);
            let out = bits_to_bytes(&sim.evaluate(&bits));
            assert_eq!(out[0], gf_mul_model(x, y), "{x:#x} * {y:#x}");
        }
    }

    #[test]
    fn structural_sbox_matches_model() {
        let mut g = Aig::new();
        let x = g.add_inputs("x", 8);
        let y = sbox(&mut g, &to_byte(&x));
        g.add_outputs("y", &y);
        let sim = Simulator::new(&g);
        for input in [0u8, 1, 0x10, 0x53, 0xA7, 0xFF, 0x80, 0x3C] {
            let out = bits_to_bytes(&sim.evaluate(&bytes_to_bits(&[input])));
            assert_eq!(out[0], sbox_model(input), "sbox({input:#x})");
        }
    }

    #[test]
    fn one_column_round_matches_model() {
        let config = AesConfig::reduced(1, 1);
        let g = aes(config);
        assert_eq!(g.num_inputs(), 32 + 32);
        assert_eq!(g.num_outputs(), 32);
        let sim = Simulator::new(&g);
        let state = [0x32u8, 0x88, 0x31, 0xE0];
        let key = [0xA0u8, 0x88, 0x23, 0x2A];
        let mut bits = bytes_to_bits(&state);
        bits.extend(bytes_to_bits(&key));
        let got = bits_to_bytes(&sim.evaluate(&bits));
        let want = round_model(&state, &key, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn default_config_is_full_width() {
        let c = AesConfig::default();
        assert_eq!(c.state_bits(), 128);
        assert_eq!(c.columns, 4);
    }

    #[test]
    fn aes_network_is_substantial() {
        let g = aes(AesConfig::reduced(1, 1));
        assert!(
            g.num_ands() > 3000,
            "S-box logic dominates: got {}",
            g.num_ands()
        );
        assert!(g.depth() > 20);
    }
}
