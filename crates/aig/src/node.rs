//! AIG node storage.

use serde::{Deserialize, Serialize};

use crate::Lit;

/// The kind of an AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// The unique constant-false node (always node 0).
    Constant,
    /// A primary input; the payload is the input's index in PI order.
    Input(u32),
    /// A two-input AND gate over two literals.
    And(Lit, Lit),
}

/// One node of an [`Aig`](crate::Aig).
///
/// Nodes are stored contiguously and referenced by [`NodeId`](crate::NodeId).
/// Fanin literals of an AND node always refer to nodes with a smaller id, so a
/// plain index sweep is a valid topological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    kind: NodeKind,
    level: u32,
    fanout: u32,
}

impl Node {
    /// Creates the constant node.
    pub(crate) fn constant() -> Self {
        Node {
            kind: NodeKind::Constant,
            level: 0,
            fanout: 0,
        }
    }

    /// Creates a primary-input node with the given PI index.
    pub(crate) fn input(index: u32) -> Self {
        Node {
            kind: NodeKind::Input(index),
            level: 0,
            fanout: 0,
        }
    }

    /// Creates an AND node over two fanin literals at the given logic level.
    pub(crate) fn and(a: Lit, b: Lit, level: u32) -> Self {
        Node {
            kind: NodeKind::And(a, b),
            level,
            fanout: 0,
        }
    }

    /// Returns the node kind.
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Returns `true` if this node is an AND gate.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self.kind, NodeKind::And(_, _))
    }

    /// Returns `true` if this node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self.kind, NodeKind::Input(_))
    }

    /// Returns `true` if this node is the constant node.
    #[inline]
    pub fn is_constant(&self) -> bool {
        matches!(self.kind, NodeKind::Constant)
    }

    /// Returns the two fanin literals when this node is an AND gate.
    #[inline]
    pub fn fanins(&self) -> Option<(Lit, Lit)> {
        match self.kind {
            NodeKind::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Returns the logic level (depth from the primary inputs, inputs are level 0).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Returns the number of fanouts recorded for this node.
    #[inline]
    pub fn fanout_count(&self) -> u32 {
        self.fanout
    }

    pub(crate) fn add_fanout(&mut self) {
        self.fanout += 1;
    }

    pub(crate) fn sub_fanout(&mut self) {
        debug_assert!(self.fanout > 0, "fanout underflow");
        self.fanout -= 1;
    }

    pub(crate) fn reset_fanout(&mut self) {
        self.fanout = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_predicates() {
        let c = Node::constant();
        assert!(c.is_constant() && !c.is_and() && !c.is_input());
        let i = Node::input(3);
        assert!(i.is_input() && !i.is_and());
        assert_eq!(i.kind(), NodeKind::Input(3));
        let a = Node::and(Lit::from_node(1, false), Lit::from_node(2, true), 1);
        assert!(a.is_and());
        assert_eq!(
            a.fanins(),
            Some((Lit::from_node(1, false), Lit::from_node(2, true)))
        );
        assert_eq!(a.level(), 1);
    }

    #[test]
    fn fanout_bookkeeping() {
        let mut n = Node::input(0);
        assert_eq!(n.fanout_count(), 0);
        n.add_fanout();
        n.add_fanout();
        assert_eq!(n.fanout_count(), 2);
        n.sub_fanout();
        assert_eq!(n.fanout_count(), 1);
        n.reset_fanout();
        assert_eq!(n.fanout_count(), 0);
    }
}
