//! Maximum fanout-free cone (MFFC) analysis.
//!
//! The MFFC of a node is the set of nodes that would become dangling if the
//! node were removed — i.e. the logic "owned" exclusively by that node.  The
//! synthesis passes use MFFC size as the gain estimate of replacing a node's
//! implementation.

use crate::{Aig, NodeId};

/// Result of an MFFC computation for a single root node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mffc {
    root: NodeId,
    nodes: Vec<NodeId>,
}

impl Mffc {
    /// Computes the MFFC of `root`, optionally bounded by a set of `leaves`
    /// (nodes that are never entered, e.g. the leaves of a cut).
    ///
    /// Fanout counts must be up to date: call [`Aig::compute_fanouts`] first.
    /// The constant node and primary inputs are never part of an MFFC.
    pub fn compute(aig: &mut Aig, root: NodeId, leaves: &[NodeId]) -> Mffc {
        let mut nodes = Vec::new();
        // Phase 1: dereference — walk down from the root decrementing fanout
        // counts; a node joins the MFFC when its count reaches zero.
        deref_rec(aig, root, leaves, &mut nodes, true);
        // Phase 2: restore the counters.
        let mut scratch = Vec::new();
        deref_rec(aig, root, leaves, &mut scratch, false);
        nodes.sort_unstable();
        Mffc { root, nodes }
    }

    /// The root node of the cone.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The nodes in the cone (including the root), sorted by id.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of AND nodes in the cone, i.e. the gain of removing the root.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if `id` belongs to the cone.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }
}

fn deref_rec(aig: &mut Aig, id: NodeId, leaves: &[NodeId], acc: &mut Vec<NodeId>, deref: bool) {
    if !aig.node(id).is_and() || leaves.contains(&id) {
        return;
    }
    if deref {
        acc.push(id);
    }
    let (a, b) = aig.node(id).fanins().expect("AND node");
    for fanin in [a.node(), b.node()] {
        if !aig.node(fanin).is_and() || leaves.contains(&fanin) {
            continue;
        }
        let count = if deref {
            aig.dec_fanout(fanin)
        } else {
            aig.inc_fanout(fanin)
        };
        let recurse = if deref { count == 0 } else { count == 1 };
        if recurse {
            deref_rec(aig, fanin, leaves, acc, deref);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aig, Lit};

    /// Builds: f = (a&b) & (c&d), g = (a&b) & e.  The node (a&b) is shared.
    fn shared_aig() -> (Aig, Lit, Lit, Lit) {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let e = g.add_input("e");
        let ab = g.and(a, b);
        let cd = g.and(c, d);
        let f = g.and(ab, cd);
        let out2 = g.and(ab, e);
        g.add_output("f", f);
        g.add_output("g", out2);
        g.compute_fanouts();
        (g, f, ab, cd)
    }

    #[test]
    fn mffc_excludes_shared_nodes() {
        let (mut g, f, ab, cd) = shared_aig();
        let m = Mffc::compute(&mut g, f.node(), &[]);
        // ab is shared with the second output, so only {f, cd} are owned by f.
        assert!(m.contains(f.node()));
        assert!(m.contains(cd.node()));
        assert!(!m.contains(ab.node()));
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn mffc_restores_fanout_counts() {
        let (mut g, f, ab, _) = shared_aig();
        let before: Vec<u32> = (0..g.len()).map(|i| g.fanout_count(i)).collect();
        let _ = Mffc::compute(&mut g, f.node(), &[]);
        let after: Vec<u32> = (0..g.len()).map(|i| g.fanout_count(i)).collect();
        assert_eq!(before, after, "dereferencing must be fully undone");
        let _ = ab;
    }

    #[test]
    fn mffc_bounded_by_leaves() {
        let (mut g, f, _, cd) = shared_aig();
        let m = Mffc::compute(&mut g, f.node(), &[cd.node()]);
        assert_eq!(
            m.size(),
            1,
            "only the root when its fanins are leaves/shared"
        );
        assert!(m.contains(f.node()));
    }

    #[test]
    fn mffc_of_single_fanout_chain() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_output("f", abc);
        g.compute_fanouts();
        let m = Mffc::compute(&mut g, abc.node(), &[]);
        assert_eq!(m.size(), 2);
        assert!(m.contains(ab.node()));
    }

    #[test]
    fn mffc_of_input_is_empty() {
        let (mut g, ..) = shared_aig();
        let pi = g.input_ids()[0];
        let m = Mffc::compute(&mut g, pi, &[]);
        assert_eq!(m.size(), 0);
        assert_eq!(m.root(), pi);
    }
}
