//! In-place editing of a resident [`Aig`] with incremental strash repair.
//!
//! The synthesis passes historically *rebuilt* a fresh graph to apply their
//! accepted replacements: every node of the source was re-emitted through
//! [`Aig::and`] into a second buffer and the result cleaned up into a third
//! traversal — two full strash constructions and an interface re-clone per
//! pass, even when the pass decided to touch a few dozen nodes.
//!
//! [`InPlaceEditor`] applies the same replacements by *mutating the resident
//! graph*:
//!
//! * untouched nodes are kept where they are (no hashing, no copy),
//! * replacement structures are appended through the live strash
//!   ([`InPlaceEditor::and`]), merging with existing logic exactly like the
//!   rebuild would,
//! * nodes whose fanins were remapped have their strash entry repaired in
//!   place (old key removed, new key inserted) and their storage recycled,
//! * cones orphaned by a replacement simply stop being referenced and are
//!   reclaimed by the final [`InPlaceEditor::finish`] compaction.
//!
//! **Bit-identity.** The editor reproduces the reference rebuild
//! (`rebuild_with_decisions` + [`Aig::cleanup`]) node-for-node, not just
//! functionally.  The key device is *rank-on-touch* numbering: the rebuild
//! emits surviving nodes in the order it first creates them, so the editor
//! assigns each node an emission rank the first time it is touched — created,
//! returned by a strash hit, or kept during the copy sweep — and the final
//! compaction renumbers survivors in rank order.  A strash hit on a node the
//! sweep has not reached yet (or on a node already orphaned by an earlier
//! replacement) corresponds to the rebuild creating a fresh duplicate that
//! the node later merges into, so reviving the existing storage yields the
//! same graph under the same numbering.
//!
//! **Patched analyses.** Logic levels are refreshed at rank time (a node's
//! fanins are final by then, so `1 + max(fanin levels)` is exact), and the
//! compaction accumulates fanout counts while it rewires fanin literals —
//! the epoch stamps ([`Aig::is_clean`], [`Aig::fanouts_fresh`]) come out
//! *fresh*, so the next pass skips both whole-graph recomputes.  When a pass
//! touches most of the graph, callers should prefer the plain rebuild (the
//! editor's per-node bookkeeping only wins while the dirty region is small);
//! the `synth` crate gates this on a dirty-fraction threshold.

use crate::{Aig, Lit, Node, NodeId};

/// Rank value of a node the editor has not touched yet.
const UNRANKED: u32 = u32::MAX;

/// Reusable buffers of an [`InPlaceEditor`] session: the rank table, the
/// reachability marks and the compaction staging area survive across every
/// pass of a flow, so steady-state editing never touches the allocator.
#[derive(Debug, Default)]
pub struct EditScratch {
    /// Emission rank per live node id (`UNRANKED` until first touch).
    rank: Vec<u32>,
    /// Reachability marks of the final compaction.
    reachable: Vec<bool>,
    /// Traversal stack of the final compaction.
    stack: Vec<NodeId>,
    /// Surviving AND ids, sorted by rank.
    survivors: Vec<NodeId>,
    /// Old node id → new node id under the compaction.
    perm: Vec<u32>,
    /// Staging area for the renumbered node records.
    nodes_tmp: Vec<Node>,
    /// Re-keyed strash entries of the incremental repair: the post-compaction
    /// `(key, id)` pairs to insert after the stale entries were removed.
    repairs: Vec<((u32, u32), NodeId)>,
}

/// An in-place editing session over one resident [`Aig`].
///
/// Obtain one with [`InPlaceEditor::begin`], replay the pass's node sweep
/// through [`copy`](InPlaceEditor::copy) / [`and`](InPlaceEditor::and), then
/// call [`finish`](InPlaceEditor::finish) with the remapped output literals.
/// The result is node-for-node identical to rebuilding a fresh graph with the
/// same replacements and cleaning it up (see the module docs for why).
///
/// The subject graph must be dangling-free on entry (its primary inputs
/// occupy ids `1..=k`), which is what [`Aig::is_clean`] certifies.
#[derive(Debug)]
pub struct InPlaceEditor<'a> {
    g: &'a mut Aig,
    scratch: &'a mut EditScratch,
    next_rank: u32,
    touched: usize,
}

impl<'a> InPlaceEditor<'a> {
    /// Starts an editing session on `g`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the graph is clean (primary inputs at ids
    /// `1..=num_inputs`, no dangling nodes) — the invariant every synthesis
    /// pass establishes before sweeping.
    pub fn begin(g: &'a mut Aig, scratch: &'a mut EditScratch) -> Self {
        debug_assert!(
            g.inputs.iter().enumerate().all(|(i, &id)| id == i + 1),
            "in-place editing requires a clean graph (inputs at ids 1..=k)"
        );
        scratch.rank.clear();
        scratch.rank.resize(g.nodes.len(), UNRANKED);
        InPlaceEditor {
            g,
            scratch,
            next_rank: 0,
            touched: 0,
        }
    }

    /// Read access to the graph mid-edit (levels and fanins of final literals
    /// are valid; ids are pre-compaction).
    pub fn graph(&self) -> &Aig {
        self.g
    }

    /// Number of nodes structurally changed so far (created or rewired) —
    /// the size of the dirty region, for diagnostics and threshold tuning.
    pub fn touched(&self) -> usize {
        self.touched
    }

    /// The literal's raw encoding in the *reference rebuild's* id space:
    /// constant and inputs keep their ids, ANDs are numbered by emission
    /// rank.  This is the ordering [`Aig::and`] would have used to
    /// canonicalise fanins in the rebuilt graph, so stored fanin pairs must
    /// be ordered by it (the compaction permutation preserves it, the old
    /// live-graph id order does not).
    fn final_raw(&self, l: Lit) -> u64 {
        let n = l.node();
        let id = if n <= self.g.inputs.len() {
            n as u64
        } else {
            debug_assert_ne!(self.scratch.rank[n], UNRANKED, "operand must be final");
            (1 + self.g.inputs.len()) as u64 + self.scratch.rank[n] as u64
        };
        id << 1 | l.is_complemented() as u64
    }

    /// Orders a fanin pair the way the reference rebuild would store it.
    fn ref_order(&self, a: Lit, b: Lit) -> (Lit, Lit) {
        if self.final_raw(a) <= self.final_raw(b) {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Marks `id` as emitted, assigning the next rank, refreshing its level
    /// and reordering its stored fanins into reference order, the first time
    /// it is touched.  Idempotent afterwards: a ranked node is final and its
    /// record never changes again.
    fn touch(&mut self, id: NodeId) {
        if self.scratch.rank[id] != UNRANKED {
            return;
        }
        self.scratch.rank[id] = self.next_rank;
        self.next_rank += 1;
        let (a, b) = self.g.nodes[id].fanins().expect("only ANDs are ranked");
        let (a, b) = self.ref_order(a, b);
        let level = 1 + self.g.nodes[a.node()]
            .level()
            .max(self.g.nodes[b.node()].level());
        self.g.nodes[id] = Node::and(a, b, level);
    }

    /// The editing analogue of [`Aig::and`]: trivial simplification,
    /// canonicalisation and a live strash lookup, creating (and ranking) a
    /// node only on a miss.  A hit ranks the existing node if the sweep has
    /// not reached it yet — that is the rebuild creating the duplicate this
    /// node would later merge into.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        // The strash key uses live-graph id order (consistent with the
        // pre-existing entries); the stored fanin pair uses reference order.
        let (x, y) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(&id) = self.g.strash.get(&(x.raw(), y.raw())) {
            self.touch(id);
            return Lit::from_node(id, false);
        }
        let (ra, rb) = self.ref_order(a, b);
        let level = 1 + self.g.nodes[x.node()]
            .level()
            .max(self.g.nodes[y.node()].level());
        let id = self.g.nodes.len();
        self.g.nodes.push(Node::and(ra, rb, level));
        self.g.strash.insert((x.raw(), y.raw()), id);
        self.scratch.rank.push(self.next_rank);
        self.next_rank += 1;
        self.touched += 1;
        Lit::from_node(id, false)
    }

    /// The editing analogue of [`Aig::mux`] (`sel ? t : e`), built from the
    /// same three [`and`](InPlaceEditor::and) calls.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        !self.and(!a, !b)
    }

    /// Replays the copy of AND node `id` whose fanins were remapped to
    /// `(na, nb)` — the in-place counterpart of the rebuild's
    /// `out.and(map[a], map[b])`:
    ///
    /// * unchanged canonical key → the node is kept untouched (zero hashing),
    /// * key collides with existing structure → merged into it (this node's
    ///   storage is orphaned and reclaimed at [`finish`](Self::finish)),
    /// * otherwise the node's storage is recycled: old strash entry removed,
    ///   fanins/level rewritten, new entry inserted.
    pub fn copy(&mut self, id: NodeId, na: Lit, nb: Lit) -> Lit {
        if na == Lit::FALSE || nb == Lit::FALSE || na == !nb {
            return Lit::FALSE;
        }
        if na == Lit::TRUE {
            return nb;
        }
        if nb == Lit::TRUE || na == nb {
            return na;
        }
        let (x, y) = if na.raw() <= nb.raw() {
            (na, nb)
        } else {
            (nb, na)
        };
        let (fa, fb) = self.g.nodes[id].fanins().expect("copy of an AND node");
        if (x, y) == (fa, fb) {
            self.touch(id);
            return Lit::from_node(id, false);
        }
        if let Some(&m) = self.g.strash.get(&(x.raw(), y.raw())) {
            self.touch(m);
            return Lit::from_node(m, false);
        }
        if self.scratch.rank[id] != UNRANKED {
            // The node's storage was already revived under its old key by an
            // earlier strash hit; the remapped copy needs a fresh node.
            return self.and(x, y);
        }
        let removed = self.g.strash.remove(&(fa.raw(), fb.raw()));
        debug_assert_eq!(removed, Some(id), "strash entry owned by the node");
        let (ra, rb) = self.ref_order(x, y);
        let level = 1 + self.g.nodes[x.node()]
            .level()
            .max(self.g.nodes[y.node()].level());
        self.g.nodes[id] = Node::and(ra, rb, level);
        self.g.strash.insert((x.raw(), y.raw()), id);
        self.scratch.rank[id] = self.next_rank;
        self.next_rank += 1;
        self.touched += 1;
        Lit::from_node(id, false)
    }

    /// Installs the remapped primary outputs and compacts the graph:
    /// dangling cones are reclaimed, survivors are renumbered in rank order
    /// (the rebuild's emission order), fanin literals and the strash are
    /// rewritten for the new ids, and fanout counts are accumulated in the
    /// same sweep.  The graph comes out with *fresh* clean/fanout epochs.
    ///
    /// `outputs` are the output literals in pre-compaction ids (the caller's
    /// remap of the original outputs).
    pub fn finish(self, outputs: &[Lit]) {
        let g = self.g;
        let s = self.scratch;

        // Reachability from the new outputs over the live (pre-compaction) ids.
        s.reachable.clear();
        s.reachable.resize(g.nodes.len(), false);
        s.stack.clear();
        s.stack.extend(outputs.iter().map(|l| l.node()));
        while let Some(id) = s.stack.pop() {
            if s.reachable[id] {
                continue;
            }
            s.reachable[id] = true;
            if let Some((a, b)) = g.nodes[id].fanins() {
                s.stack.push(a.node());
                s.stack.push(b.node());
            }
        }

        // Survivors in rank order = the rebuild's emission order.
        s.survivors.clear();
        for id in 1..g.nodes.len() {
            if s.reachable[id] && g.nodes[id].is_and() {
                debug_assert_ne!(s.rank[id], UNRANKED, "reachable nodes are ranked");
                s.survivors.push(id);
            }
        }
        s.survivors.sort_unstable_by_key(|&id| s.rank[id]);

        // Renumbering: constant and inputs are pinned, ANDs follow in rank order.
        let base = 1 + g.inputs.len();
        s.perm.clear();
        s.perm.resize(g.nodes.len(), 0);
        for &id in &g.inputs {
            s.perm[id] = id as u32;
        }
        for (i, &id) in s.survivors.iter().enumerate() {
            s.perm[id] = (base + i) as u32;
        }

        // Stage the renumbered records (levels were patched at rank time),
        // counting how many survivors change their id or strash key on the
        // way — the dirty region the incremental repair below must patch.
        s.nodes_tmp.clear();
        let mut moved = 0usize;
        for &id in &s.survivors {
            let (a, b) = g.nodes[id].fanins().expect("survivor is an AND");
            let na = Lit::from_node(s.perm[a.node()] as usize, a.is_complemented());
            let nb = Lit::from_node(s.perm[b.node()] as usize, b.is_complemented());
            if s.perm[id] as usize != id || na != a || nb != b {
                moved += 1;
            }
            s.nodes_tmp.push(Node::and(na, nb, g.nodes[id].level()));
        }
        let dead = (g.nodes.len() - base) - s.survivors.len();

        // Strash maintenance is either *incremental* (repair exactly the
        // moved / dead entries) or the full clear + re-insert.  Mid-edit the
        // map holds exactly one entry per AND record — live or orphaned —
        // keyed by the unordered raw pair of its stored fanins, so a survivor
        // whose id and key are both unchanged already has the correct
        // post-compaction entry and costs nothing.  A repair is ~2 hash ops
        // (remove + insert) against 1 insert per survivor for the rebuild,
        // so patch only while the dirty region is the minority.
        let incremental = 2 * moved + dead < s.survivors.len();
        if incremental {
            s.repairs.clear();
            // Phase 1: drop every stale entry (and collect the re-keyed
            // inserts) before any new key lands — a repair's new key may
            // equal another entry's not-yet-removed old key.
            for (i, &id) in s.survivors.iter().enumerate() {
                let (a, b) = g.nodes[id].fanins().expect("survivor is an AND");
                let staged = s.nodes_tmp[i];
                let (na, nb) = staged.fanins().expect("staged survivor is an AND");
                if s.perm[id] as usize == id && na == a && nb == b {
                    continue;
                }
                let old_key = if a.raw() <= b.raw() {
                    (a.raw(), b.raw())
                } else {
                    (b.raw(), a.raw())
                };
                let removed = g.strash.remove(&old_key);
                debug_assert_eq!(removed, Some(id), "survivor owns its strash entry");
                s.repairs.push(((na.raw(), nb.raw()), s.perm[id] as usize));
            }
            for id in base..g.nodes.len() {
                if s.reachable[id] {
                    continue;
                }
                let (a, b) = g.nodes[id].fanins().expect("AND tail");
                let key = if a.raw() <= b.raw() {
                    (a.raw(), b.raw())
                } else {
                    (b.raw(), a.raw())
                };
                let removed = g.strash.remove(&key);
                debug_assert_eq!(removed, Some(id), "orphan owns its strash entry");
            }
        }

        g.nodes.truncate(base);
        g.nodes.extend_from_slice(&s.nodes_tmp);

        g.outputs.clear();
        g.outputs.extend(
            outputs
                .iter()
                .map(|l| Lit::from_node(s.perm[l.node()] as usize, l.is_complemented())),
        );

        for n in &mut g.nodes {
            n.reset_fanout();
        }
        if incremental {
            // Phase 2: land the re-keyed entries.  Post-compaction keys are
            // unique (the reference rebuild would have merged duplicates), so
            // no repair may collide with a kept entry.
            for &(key, id) in &s.repairs {
                let prev = g.strash.insert(key, id);
                debug_assert!(prev.is_none(), "repair key collides with a kept entry");
            }
            for id in base..g.nodes.len() {
                let (a, b) = g.nodes[id].fanins().expect("AND tail");
                g.nodes[a.node()].add_fanout();
                g.nodes[b.node()].add_fanout();
            }
        } else {
            // One sweep rebuilds the strash for the new ids and accumulates
            // the fanout counts the next pass would otherwise recompute.
            g.strash.clear();
            for id in base..g.nodes.len() {
                let (a, b) = g.nodes[id].fanins().expect("AND tail");
                g.strash.insert((a.raw(), b.raw()), id);
                g.nodes[a.node()].add_fanout();
                g.nodes[b.node()].add_fanout();
            }
        }
        for i in 0..g.outputs.len() {
            let n = g.outputs[i].node();
            g.nodes[n].add_fanout();
        }

        g.generation += 1;
        g.clean_at = g.generation;
        g.fanouts_at = g.generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    /// Deterministic xorshift64* (same idiom as `simulate.rs`).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }

        fn flip(&mut self) -> bool {
            self.next() & 1 == 1
        }
    }

    /// Builds a random dangling-free graph: `inputs` PIs, up to `ands` AND
    /// nodes over random earlier literals, a handful of random outputs,
    /// then a cleanup so inputs occupy ids `1..=k`.
    fn random_clean_graph(rng: &mut XorShift, inputs: usize, ands: usize) -> Aig {
        let mut g = Aig::with_name("rand");
        g.add_inputs("i", inputs);
        let mut lits: Vec<Lit> = g.input_lits();
        for _ in 0..ands {
            let a = lits[rng.below(lits.len())] ^ rng.flip();
            let b = lits[rng.below(lits.len())] ^ rng.flip();
            let f = g.and(a, b);
            lits.push(f);
        }
        let n_out = 1 + rng.below(4);
        for k in 0..n_out {
            // Bias towards late nodes so most of the graph stays reachable.
            let lo = lits.len().saturating_sub(8);
            let l = lits[lo + rng.below(lits.len() - lo)] ^ rng.flip();
            g.add_output(format!("o{k}"), l);
        }
        let mut clean = g.cleanup();
        clean.compute_fanouts();
        clean
    }

    /// Node-for-node comparison: kinds (with fanin literals), levels,
    /// outputs, input/output names.
    fn assert_identical(a: &Aig, b: &Aig) {
        assert_eq!(a.len(), b.len(), "node counts differ");
        for id in 0..a.len() {
            assert_eq!(a.node(id).kind(), b.node(id).kind(), "kind of node {id}");
            assert_eq!(a.node(id).level(), b.node(id).level(), "level of node {id}");
        }
        assert_eq!(a.outputs(), b.outputs(), "output literals");
        assert_eq!(a.num_inputs(), b.num_inputs());
        for i in 0..a.num_inputs() {
            assert_eq!(a.input_name(i), b.input_name(i), "input name {i}");
        }
        for i in 0..a.num_outputs() {
            assert_eq!(a.output_name(i), b.output_name(i), "output name {i}");
        }
    }

    /// Asserts the patched analyses (strash, fanouts, levels, epoch flags)
    /// are bit-identical to a from-scratch recompute.
    fn assert_analyses_fresh(g: &Aig) {
        assert!(g.is_clean(), "clean epoch must be fresh after finish");
        assert!(g.fanouts_fresh(), "fanout epoch must be fresh after finish");

        // Strash: exactly one entry per AND, keyed by its stored fanins.
        assert_eq!(
            g.strash.len(),
            g.num_ands(),
            "stale or missing strash entries"
        );
        for id in g.and_ids() {
            let (a, b) = g.node(id).fanins().unwrap();
            assert_eq!(
                g.find_and(a, b),
                Some(Lit::from_node(id, false)),
                "strash entry of node {id}"
            );
        }

        // Levels: recompute from fanins (index order is topological).
        for id in g.and_ids() {
            let (a, b) = g.node(id).fanins().unwrap();
            let want = 1 + g.node(a.node()).level().max(g.node(b.node()).level());
            assert_eq!(g.node(id).level(), want, "level of node {id}");
        }

        // Fanouts: compare the patched counts against a full recompute.
        let patched: Vec<u32> = (0..g.len()).map(|id| g.fanout_count(id)).collect();
        let mut fresh = g.clone();
        fresh.compute_fanouts();
        let recomputed: Vec<u32> = (0..fresh.len()).map(|id| fresh.fanout_count(id)).collect();
        assert_eq!(
            patched, recomputed,
            "patched fanouts diverge from recompute"
        );
    }

    #[test]
    fn identity_sweep_preserves_graph() {
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        for _ in 0..10 {
            let mut g = random_clean_graph(&mut rng, 6, 40);
            let before = g.clone();
            let mut scratch = EditScratch::default();
            let mut map = vec![Lit::FALSE; g.len()];
            for &id in g.input_ids() {
                map[id] = Lit::from_node(id, false);
            }
            let and_ids: Vec<_> = g.and_ids().collect();
            let outs: Vec<Lit> = g.outputs().to_vec();
            let mut ed = InPlaceEditor::begin(&mut g, &mut scratch);
            for id in and_ids {
                let (a, b) = ed.graph().node(id).fanins().unwrap();
                let na = map[a.node()] ^ a.is_complemented();
                let nb = map[b.node()] ^ b.is_complemented();
                map[id] = ed.copy(id, na, nb);
            }
            let outs: Vec<Lit> = outs
                .iter()
                .map(|l| map[l.node()] ^ l.is_complemented())
                .collect();
            assert_eq!(ed.touched(), 0, "identity sweep must not touch anything");
            ed.finish(&outs);
            assert_identical(&g, &before);
            assert_analyses_fresh(&g);
        }
    }

    /// The core differential test: a seeded random edit sequence applied via
    /// the editor must yield a graph node-for-node identical to replaying the
    /// same sequence through a from-scratch rebuild + cleanup (the pinned
    /// reference path of the `synth` passes).
    #[test]
    fn random_edits_match_reference_rebuild() {
        for seed in 1..=20u64 {
            let mut rng = XorShift(seed.wrapping_mul(0x0101_0101_0101_0101) | 1);
            let mut g = random_clean_graph(&mut rng, 5 + seed as usize % 4, 60);

            // Pre-draw the per-node choice so both replicas see the same plan:
            // None = keep, Some((pattern, donor, phases)) = replace.
            let and_ids: Vec<_> = g.and_ids().collect();
            let plan: Vec<Option<(u8, usize, u64)>> = and_ids
                .iter()
                .map(|&id| {
                    if rng.below(100) < 30 {
                        Some((rng.next() as u8 % 4, rng.below(id), rng.next()))
                    } else {
                        None
                    }
                })
                .collect();

            // Reference replica: rebuild into a fresh graph, then cleanup.
            let mut rebuilt = Aig::with_name(g.name());
            let mut rmap = vec![Lit::FALSE; g.len()];
            for (i, &id) in g.input_ids().to_vec().iter().enumerate() {
                rmap[id] = rebuilt.add_input(g.input_name(i));
            }
            for (k, &id) in and_ids.iter().enumerate() {
                let (a, b) = g.node(id).fanins().unwrap();
                let na = rmap[a.node()] ^ a.is_complemented();
                let nb = rmap[b.node()] ^ b.is_complemented();
                rmap[id] = match plan[k] {
                    None => rebuilt.and(na, nb),
                    Some((pat, donor, phases)) => {
                        let c = rmap[donor] ^ (phases & 1 == 1);
                        match pat {
                            0 => rebuilt.and(na, !nb),
                            1 => !rebuilt.and(!na, !nb),
                            2 => rebuilt.mux(na, nb, c),
                            _ => {
                                let t = rebuilt.and(na, c);
                                rebuilt.and(t, nb)
                            }
                        }
                    }
                };
            }
            for (i, &l) in g.outputs().to_vec().iter().enumerate() {
                rebuilt.add_output(g.output_name(i), rmap[l.node()] ^ l.is_complemented());
            }
            let mut want = rebuilt.cleanup();
            want.compute_fanouts();

            // In-place replica: same plan through the editor.
            let mut scratch = EditScratch::default();
            let mut map = vec![Lit::FALSE; g.len()];
            for &id in g.input_ids() {
                map[id] = Lit::from_node(id, false);
            }
            let outs: Vec<Lit> = g.outputs().to_vec();
            let mut ed = InPlaceEditor::begin(&mut g, &mut scratch);
            for (k, &id) in and_ids.iter().enumerate() {
                let (a, b) = ed.graph().node(id).fanins().unwrap();
                let na = map[a.node()] ^ a.is_complemented();
                let nb = map[b.node()] ^ b.is_complemented();
                map[id] = match plan[k] {
                    None => ed.copy(id, na, nb),
                    Some((pat, donor, phases)) => {
                        let c = map[donor] ^ (phases & 1 == 1);
                        match pat {
                            0 => ed.and(na, !nb),
                            1 => !ed.and(!na, !nb),
                            2 => ed.mux(na, nb, c),
                            _ => {
                                let t = ed.and(na, c);
                                ed.and(t, nb)
                            }
                        }
                    }
                };
            }
            let outs: Vec<Lit> = outs
                .iter()
                .map(|l| map[l.node()] ^ l.is_complemented())
                .collect();
            ed.finish(&outs);

            assert_identical(&g, &want);
            assert_analyses_fresh(&g);
        }
    }

    #[test]
    fn replacement_reclaims_dangling_cone() {
        // x = a&b, y = x&c as the only output; replacing y with a&c must
        // reclaim the whole (x, y) cone and leave exactly one AND.
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.add_output("f", y);
        let mut g = g.cleanup();
        g.compute_fanouts();

        let mut scratch = EditScratch::default();
        let ands: Vec<_> = g.and_ids().collect();
        let mut ed = InPlaceEditor::begin(&mut g, &mut scratch);
        let (fa, fb) = ed.graph().node(ands[0]).fanins().unwrap();
        ed.copy(ands[0], fa, fb); // keep x = a & b
        let last = ed.and(a, c); // replace y with a & c
        ed.finish(&[last]);

        assert_eq!(g.num_ands(), 1, "dangling cone must be reclaimed");
        let (fa, fb) = g.node(g.outputs()[0].node()).fanins().unwrap();
        assert_eq!((fa, fb), (a, c));
        assert_analyses_fresh(&g);
    }

    #[test]
    fn touched_counts_dirty_region() {
        let mut rng = XorShift(42);
        let mut g = random_clean_graph(&mut rng, 6, 50);
        let and_ids: Vec<_> = g.and_ids().collect();
        let outs: Vec<Lit> = g.outputs().to_vec();
        let mut scratch = EditScratch::default();
        let mut map = vec![Lit::FALSE; g.len()];
        for &id in g.input_ids() {
            map[id] = Lit::from_node(id, false);
        }
        let mut ed = InPlaceEditor::begin(&mut g, &mut scratch);
        for &id in &and_ids {
            let (a, b) = ed.graph().node(id).fanins().unwrap();
            let na = map[a.node()] ^ a.is_complemented();
            let nb = map[b.node()] ^ b.is_complemented();
            map[id] = ed.copy(id, na, nb);
        }
        assert_eq!(ed.touched(), 0);
        // One fresh structure: touched must grow by at most the nodes built.
        let extra = {
            let i1 = Lit::from_node(1, false);
            let i2 = Lit::from_node(2, true);
            ed.mux(i1, i2, map[and_ids[0]])
        };
        assert!(ed.touched() <= 3, "mux builds at most three fresh nodes");
        let mut outs: Vec<Lit> = outs
            .iter()
            .map(|l| map[l.node()] ^ l.is_complemented())
            .collect();
        outs[0] = extra;
        ed.finish(&outs);
        assert_analyses_fresh(&g);
        let _ = NodeKind::Constant; // silence unused-import lint paths
    }
}
