//! Literals: node references with an optional complement attribute.

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// A literal is a reference to an AIG node together with a complement flag.
///
/// Internally a literal is `node_id * 2 + complement`, exactly as in the AIGER
/// format and in ABC.  The constant-false node always has id 0, so
/// [`Lit::FALSE`] is literal `0` and [`Lit::TRUE`] is literal `1`.
///
/// ```
/// use aig::Lit;
/// let a = Lit::from_node(3, false);
/// assert_eq!(a.node(), 3);
/// assert!(!a.is_complemented());
/// assert_eq!((!a).node(), 3);
/// assert!((!a).is_complemented());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (non-complemented constant node).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (complemented constant node).
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node id and a complement flag.
    #[inline]
    pub fn from_node(node: NodeId, complemented: bool) -> Self {
        Lit((node as u32) << 1 | complemented as u32)
    }

    /// Builds a literal from its raw AIGER-style encoding (`2 * node + phase`).
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// Returns the raw AIGER-style encoding of this literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the node id this literal refers to.
    #[inline]
    pub fn node(self) -> NodeId {
        (self.0 >> 1) as NodeId
    }

    /// Returns `true` when the literal is complemented.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the positive-phase (non-complemented) version of this literal.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Returns this literal with the complement flag set to `c`.
    #[inline]
    pub fn with_complement(self, c: bool) -> Lit {
        Lit(self.0 & !1 | c as u32)
    }

    /// Returns `true` if this literal refers to the constant node.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// Returns `Some(value)` when this literal is one of the two constants.
    #[inline]
    pub fn const_value(self) -> Option<bool> {
        if self.is_const() {
            Some(self.is_complemented())
        } else {
            None
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::ops::BitXor<bool> for Lit {
    type Output = Lit;

    /// Conditionally complements the literal: `lit ^ true == !lit`.
    #[inline]
    fn bitxor(self, rhs: bool) -> Lit {
        Lit(self.0 ^ rhs as u32)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

impl Default for Lit {
    fn default() -> Self {
        Lit::FALSE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_node_zero() {
        assert_eq!(Lit::FALSE.node(), 0);
        assert_eq!(Lit::TRUE.node(), 0);
        assert!(!Lit::FALSE.is_complemented());
        assert!(Lit::TRUE.is_complemented());
        assert_eq!(Lit::FALSE.const_value(), Some(false));
        assert_eq!(Lit::TRUE.const_value(), Some(true));
    }

    #[test]
    fn complement_roundtrip() {
        let l = Lit::from_node(17, false);
        assert_eq!(!(!l), l);
        assert_ne!(!l, l);
        assert_eq!((!l).node(), 17);
    }

    #[test]
    fn conditional_complement() {
        let l = Lit::from_node(4, false);
        assert_eq!(l ^ false, l);
        assert_eq!(l ^ true, !l);
    }

    #[test]
    fn positive_strips_phase() {
        let l = Lit::from_node(9, true);
        assert_eq!(l.positive(), Lit::from_node(9, false));
        assert_eq!(l.with_complement(false), l.positive());
        assert_eq!(l.with_complement(true), l);
    }

    #[test]
    fn raw_roundtrip() {
        for raw in 0..64u32 {
            assert_eq!(Lit::from_raw(raw).raw(), raw);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Lit::from_node(5, false).to_string(), "n5");
        assert_eq!(Lit::from_node(5, true).to_string(), "!n5");
    }

    #[test]
    fn non_const_has_no_value() {
        assert_eq!(Lit::from_node(3, true).const_value(), None);
        assert!(!Lit::from_node(3, true).is_const());
    }
}
