//! ASCII AIGER (`.aag`) reading and writing.

use crate::{Aig, Lit};

use super::{
    apply_symbol_line, parse_aiger_header, sanitize_line, IoError, IoResult, RawAiger, VarMap,
};

/// Renders a design as an ASCII AIGER (`.aag`) document.
///
/// Inputs become variables `1..=I` in PI order and AND gates follow in
/// topological order, so the output satisfies the AIGER ordering constraints
/// (`lhs > rhs0 >= rhs1`).  The full input/output symbol table is emitted,
/// and the design name is stored as the first comment line.
pub fn write_aag(aig: &Aig) -> String {
    let map = VarMap::new(aig);
    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        map.max_var(aig),
        aig.num_inputs(),
        aig.num_outputs(),
        map.and_ids().len()
    ));
    for i in 0..aig.num_inputs() {
        out.push_str(&format!("{}\n", (i + 1) << 1));
    }
    for &o in aig.outputs() {
        out.push_str(&format!("{}\n", map.lit(o)));
    }
    for &id in map.and_ids() {
        let (a, b) = aig.node(id).fanins().expect("and node");
        let lhs = map.lit(Lit::from_node(id, false));
        // AIGER convention: larger fanin literal first.
        let (r0, r1) = order_fanins(map.lit(a), map.lit(b));
        out.push_str(&format!("{lhs} {r0} {r1}\n"));
    }
    for i in 0..aig.num_inputs() {
        out.push_str(&format!("i{i} {}\n", sanitize_line(aig.input_name(i))));
    }
    for i in 0..aig.num_outputs() {
        out.push_str(&format!("o{i} {}\n", sanitize_line(aig.output_name(i))));
    }
    out.push_str("c\n");
    out.push_str(&sanitize_line(aig.name()));
    out.push('\n');
    out
}

pub(crate) fn order_fanins(a: u32, b: u32) -> (u32, u32) {
    if a >= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Parses an ASCII AIGER (`.aag`) document.
///
/// Combinational designs only — a non-zero latch count is rejected.  Symbol
/// lines are honoured; unnamed inputs/outputs get `i{n}` / `o{n}` names.  The
/// first comment line, when present, becomes the design name.
pub fn parse_aag(text: &str) -> IoResult<Aig> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| IoError::parse(1, "empty file"))?;
    let (max_var, num_inputs, _l, num_outputs, num_ands) = parse_aiger_header(header, "aag")?;
    // Each input/output line is at least `2\n`, each AND line `6 0 0\n`; a
    // header claiming more than the rest of the file could hold must not
    // drive the pre-sized allocations below.
    super::check_counts_plausible(
        &[(num_inputs, 2), (num_outputs, 2), (num_ands, 6)],
        text.len().saturating_sub(header.len()),
    )?;

    let mut raw = RawAiger {
        max_var,
        num_inputs,
        ands: Vec::with_capacity(num_ands as usize),
        outputs: Vec::with_capacity(num_outputs as usize),
        input_names: vec![None; num_inputs as usize],
        output_names: vec![None; num_outputs as usize],
        name: None,
    };

    let mut next_body_line = |what: &str| -> IoResult<(usize, &str)> {
        let (idx, line) = lines
            .next()
            .ok_or_else(|| IoError::parse(0, format!("file ends before {what}")))?;
        Ok((idx + 1, line.trim()))
    };

    let mut seen_inputs = Vec::with_capacity(num_inputs as usize);
    for i in 0..num_inputs {
        let (line_no, line) = next_body_line("input definitions")?;
        let lit: u32 = line
            .parse()
            .map_err(|_| IoError::parse(line_no, "input line is not a literal"))?;
        if lit != (i + 1) << 1 {
            return Err(IoError::parse(
                line_no,
                format!(
                    "input literal {lit} out of order (expected {})",
                    (i + 1) << 1
                ),
            ));
        }
        seen_inputs.push(lit);
    }
    for _ in 0..num_outputs {
        let (line_no, line) = next_body_line("output definitions")?;
        let lit: u32 = line
            .parse()
            .map_err(|_| IoError::parse(line_no, "output line is not a literal"))?;
        if lit >> 1 > max_var {
            return Err(IoError::parse(
                line_no,
                format!("output literal {lit} exceeds M"),
            ));
        }
        raw.outputs.push(lit);
    }
    for _ in 0..num_ands {
        let (line_no, line) = next_body_line("AND definitions")?;
        let mut fields = line.split_ascii_whitespace().map(str::parse::<u32>);
        let mut next = || -> IoResult<u32> {
            fields
                .next()
                .transpose()
                .ok()
                .flatten()
                .ok_or_else(|| IoError::parse(line_no, "AND line needs `lhs rhs0 rhs1`"))
        };
        let (lhs, rhs0, rhs1) = (next()?, next()?, next()?);
        if lhs & 1 == 1 || lhs >> 1 <= num_inputs || lhs >> 1 > max_var {
            return Err(IoError::parse(
                line_no,
                format!("AND lhs {lhs} is not a fresh gate variable"),
            ));
        }
        raw.ands.push((lhs >> 1, rhs0, rhs1));
    }

    // Optional symbol table, then optional comment section.
    let mut in_comments = false;
    for (idx, line) in lines {
        let line = line.trim_end();
        if line.is_empty() && !in_comments {
            continue;
        }
        if in_comments {
            if raw.name.is_none() && !line.is_empty() {
                raw.name = Some(line.to_string());
            }
            continue;
        }
        if !apply_symbol_line(line, idx + 1, &mut raw)? {
            in_comments = true;
        }
    }

    raw.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut g = Aig::with_name("xor2");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x = g.xor(a, b);
        g.add_output("x", x);
        g
    }

    #[test]
    fn writes_canonical_header_and_symbols() {
        let text = write_aag(&sample());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("aag 5 2 0 1 3"));
        assert_eq!(lines.next(), Some("2"));
        assert_eq!(lines.next(), Some("4"));
        assert!(text.contains("i0 a\n"));
        assert!(text.contains("o0 x\n"));
        assert!(text.ends_with("c\nxor2\n"));
    }

    #[test]
    fn roundtrip_preserves_structure_names_and_function() {
        let g = sample();
        let back = parse_aag(&write_aag(&g)).unwrap();
        assert_eq!(back.name(), "xor2");
        assert_eq!(back.num_ands(), g.num_ands());
        assert_eq!(back.input_name(1), "b");
        assert_eq!(back.output_name(0), "x");
        assert!(crate::random_equivalence_check(&g, &back, 4, 7));
    }

    #[test]
    fn accepts_constant_outputs_and_unnamed_symbols() {
        let aig = parse_aag("aag 1 1 0 2 0\n2\n0\n1\n").unwrap();
        assert_eq!(aig.num_outputs(), 2);
        assert_eq!(aig.outputs()[0], Lit::FALSE);
        assert_eq!(aig.outputs()[1], Lit::TRUE);
        assert_eq!(aig.input_name(0), "i0");
        assert_eq!(aig.output_name(1), "o1");
    }

    #[test]
    fn hostile_names_are_sanitized_and_reparse() {
        let mut g = Aig::with_name("multi\nline");
        let a = g.add_input("in\nput");
        g.add_output("out\rput", a);
        let back = parse_aag(&write_aag(&g)).unwrap();
        assert_eq!(back.name(), "multi_line");
        assert_eq!(back.input_name(0), "in_put");
        assert_eq!(back.output_name(0), "out_put");
        let back = super::super::parse_aiger_binary(&super::super::write_aiger_binary(&g)).unwrap();
        assert_eq!(back.input_name(0), "in_put");
    }

    #[test]
    fn strashes_duplicate_gates_from_external_files() {
        // Two textually distinct gates computing the same AND merge on read.
        let text = "aag 4 2 0 1 2\n2\n4\n8\n6 4 2\n8 4 2\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_aag("").is_err());
        assert!(
            parse_aag("aag 1 1 0 0 0\n4\n").is_err(),
            "input out of order"
        );
        assert!(
            parse_aag("aag 2 1 0 1 1\n2\n6\n6 2\n").is_err(),
            "short AND"
        );
        assert!(
            parse_aag("aag 2 1 0 1 1\n2\n4\n4 2 9\n").is_err(),
            "undefined rhs variable"
        );
        assert!(
            parse_aag("aag 2 1 0 0 1\n2\n3 2 2\n").is_err(),
            "odd lhs literal"
        );
    }
}
