//! Structural BLIF reading and writing.
//!
//! The writer emits one `.names` per AND gate (fanin phases folded into the
//! cover row) plus one buffer/inverter `.names` per primary output, so a
//! written file reads back without creating any extra AND nodes.  The reader
//! accepts general single-output covers — any mix of `0`/`1`/`-` rows, on-set
//! or off-set — and lowers them through [`Aig::and`], which structurally
//! hashes the imported logic.

use std::collections::HashMap;

use crate::{Aig, Lit};

use super::{IoError, IoResult};

/// Maximum number of inputs accepted on one `.names` cover.
///
/// Wide covers explode into `2^n`-ish AND trees; real structural BLIF uses
/// 2-input covers, and mapped BLIF rarely exceeds 6.  The cap keeps a
/// malicious file from allocating unbounded memory.
pub const MAX_COVER_INPUTS: usize = 16;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Renders a design as a structural BLIF document.
///
/// Primary inputs and outputs keep their (sanitized, deduplicated) symbol
/// names; internal AND gates are named `n<id>`.  Each AND becomes a two-input
/// `.names` whose single cover row encodes the fanin phases, and each primary
/// output becomes a buffer (`1 1`) or inverter (`0 1`) cover from its driver,
/// so output phases survive the trip.
pub fn write_blif(aig: &Aig) -> String {
    let mut names = NameTable::new();
    let input_names: Vec<String> = (0..aig.num_inputs())
        .map(|i| names.claim(aig.input_name(i)))
        .collect();
    let output_names: Vec<String> = (0..aig.num_outputs())
        .map(|i| names.claim(aig.output_name(i)))
        .collect();
    // Internal signal names, indexed by node id (inputs reuse their PI name).
    let mut signal: Vec<String> = vec![String::new(); aig.len()];
    for (i, &id) in aig.input_ids().iter().enumerate() {
        signal[id] = input_names[i].clone();
    }
    for id in aig.and_ids() {
        signal[id] = names.claim(&format!("n{id}"));
    }

    let mut out = String::new();
    out.push_str(&format!(".model {}\n", sanitize(aig.name())));
    write_list(&mut out, ".inputs", &input_names);
    write_list(&mut out, ".outputs", &output_names);
    for id in aig.and_ids() {
        let (a, b) = aig.node(id).fanins().expect("and node");
        out.push_str(&format!(
            ".names {} {} {}\n{}{} 1\n",
            signal[a.node()],
            signal[b.node()],
            signal[id],
            phase_char(a),
            phase_char(b),
        ));
    }
    for (i, &lit) in aig.outputs().iter().enumerate() {
        let name = &output_names[i];
        match lit.const_value() {
            Some(false) => out.push_str(&format!(".names {name}\n")),
            Some(true) => out.push_str(&format!(".names {name}\n1\n")),
            None => out.push_str(&format!(
                ".names {} {name}\n{} 1\n",
                signal[lit.node()],
                phase_char(lit),
            )),
        }
    }
    out.push_str(".end\n");
    out
}

fn phase_char(l: Lit) -> char {
    if l.is_complemented() {
        '0'
    } else {
        '1'
    }
}

fn write_list(out: &mut String, command: &str, names: &[String]) {
    out.push_str(command);
    // Wrap long interface lists with BLIF continuations for readability.
    let mut width = command.len();
    for name in names {
        if width + name.len() + 1 > 78 {
            out.push_str(" \\\n ");
            width = 1;
        }
        out.push(' ');
        out.push_str(name);
        width += name.len() + 1;
    }
    out.push('\n');
}

/// Replaces BLIF-hostile characters (whitespace, `\`, `#`) in a signal name.
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_whitespace() || c == '\\' || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

/// Allocates unique sanitized signal names.
struct NameTable {
    used: HashMap<String, usize>,
}

impl NameTable {
    fn new() -> Self {
        NameTable {
            used: HashMap::new(),
        }
    }

    fn claim(&mut self, name: &str) -> String {
        let base = sanitize(name);
        match self.used.get_mut(&base) {
            None => {
                self.used.insert(base.clone(), 1);
                base
            }
            Some(count) => {
                *count += 1;
                let fresh = format!("{base}_{count}");
                // The suffixed name could itself collide; claim recursively.
                self.claim(&fresh)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One `.names` definition: input signals plus cover rows.
struct Cover {
    inputs: Vec<String>,
    /// `(input pattern, output value)` rows, e.g. `("1-0", '1')`.
    rows: Vec<(String, char)>,
    line: usize,
}

/// Parses a structural BLIF document.
///
/// Supports `.model`, `.inputs`, `.outputs`, `.names` (single-output covers,
/// on-set or off-set, up to [`MAX_COVER_INPUTS`] inputs), comments and line
/// continuations.  `.latch`, `.subckt` and every other sequential or
/// hierarchical construct is rejected as unsupported.  Covers are elaborated
/// in file order (out-of-order definitions are resolved recursively), so a
/// topologically ordered file — including everything [`write_blif`] produces —
/// reads back with its node order intact.
pub fn parse_blif(text: &str) -> IoResult<Aig> {
    let mut model_name: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut covers: HashMap<String, Cover> = HashMap::new();
    let mut cover_order: Vec<String> = Vec::new();
    let mut current: Option<String> = None;
    let mut ended = false;

    for (line_no, line) in logical_lines(text) {
        let mut tokens = line.split_ascii_whitespace();
        let Some(head) = tokens.next() else { continue };
        if ended {
            return Err(IoError::parse(line_no, "content after .end"));
        }
        if let Some(command) = head.strip_prefix('.') {
            current = None;
            match command {
                "model" => {
                    if model_name.is_none() {
                        model_name = tokens.next().map(str::to_string);
                    } else {
                        return Err(IoError::Unsupported(
                            "multiple .model sections (hierarchical BLIF)".into(),
                        ));
                    }
                }
                "inputs" => inputs.extend(tokens.map(str::to_string)),
                "outputs" => outputs.extend(tokens.map(str::to_string)),
                "names" => {
                    let signals: Vec<String> = tokens.map(str::to_string).collect();
                    let Some((output, cover_inputs)) = signals.split_last() else {
                        return Err(IoError::parse(line_no, ".names needs an output signal"));
                    };
                    if cover_inputs.len() > MAX_COVER_INPUTS {
                        return Err(IoError::Unsupported(format!(
                            ".names with {} inputs (max {MAX_COVER_INPUTS})",
                            cover_inputs.len()
                        )));
                    }
                    if covers.contains_key(output) || inputs.contains(output) {
                        return Err(IoError::parse(
                            line_no,
                            format!("signal `{output}` driven twice"),
                        ));
                    }
                    covers.insert(
                        output.clone(),
                        Cover {
                            inputs: cover_inputs.to_vec(),
                            rows: Vec::new(),
                            line: line_no,
                        },
                    );
                    cover_order.push(output.clone());
                    current = Some(output.clone());
                }
                "end" => ended = true,
                "latch" => {
                    return Err(IoError::Unsupported(
                        ".latch; this reproduction is combinational-only".into(),
                    ))
                }
                other => {
                    return Err(IoError::Unsupported(format!(".{other} construct")));
                }
            }
            continue;
        }
        // A cover row of the open `.names`.
        let Some(open) = &current else {
            return Err(IoError::parse(
                line_no,
                format!("unexpected token `{head}` outside a .names cover"),
            ));
        };
        let cover = covers.get_mut(open).expect("open cover exists");
        let (pattern, value) = match tokens.next() {
            // `<pattern> <value>` for covers with inputs.
            Some(value_token) => (head.to_string(), value_token),
            // A single token is the output value of a zero-input cover.
            None => (String::new(), head),
        };
        if tokens.next().is_some() {
            return Err(IoError::parse(line_no, "cover row has trailing tokens"));
        }
        let value = match value {
            "1" => '1',
            "0" => '0',
            other => {
                return Err(IoError::parse(
                    line_no,
                    format!("cover output must be 0 or 1, got `{other}`"),
                ))
            }
        };
        if pattern.len() != cover.inputs.len()
            || !pattern.chars().all(|c| matches!(c, '0' | '1' | '-'))
        {
            return Err(IoError::parse(
                line_no,
                format!(
                    "cover row `{pattern}` does not match {} input(s)",
                    cover.inputs.len()
                ),
            ));
        }
        cover.rows.push((pattern, value));
    }

    if outputs.is_empty() {
        return Err(IoError::parse(0, "BLIF declares no .outputs"));
    }

    build_blif(model_name, inputs, outputs, covers, cover_order)
}

/// Iterates over semantic lines: comments stripped, `\` continuations joined.
fn logical_lines(text: &str) -> impl Iterator<Item = (usize, String)> + '_ {
    let mut lines = text.lines().enumerate().peekable();
    std::iter::from_fn(move || {
        let (idx, first) = lines.next()?;
        let mut logical = strip_comment(first).to_string();
        while logical.trim_end().ends_with('\\') {
            let keep = logical.trim_end().len() - 1;
            logical.truncate(keep);
            match lines.next() {
                Some((_, next)) => logical.push_str(strip_comment(next)),
                None => break,
            }
        }
        Some((idx + 1, logical))
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Lowers parsed covers into an [`Aig`] in file order.
fn build_blif(
    model_name: Option<String>,
    inputs: Vec<String>,
    outputs: Vec<String>,
    covers: HashMap<String, Cover>,
    cover_order: Vec<String>,
) -> IoResult<Aig> {
    let mut aig = Aig::with_name(model_name.as_deref().unwrap_or("blif"));
    let mut lit_of: HashMap<&str, Lit> = HashMap::new();
    for name in &inputs {
        if lit_of.contains_key(name.as_str()) {
            return Err(IoError::parse(0, format!("input `{name}` declared twice")));
        }
        let lit = aig.add_input(name.clone());
        lit_of.insert(name, lit);
    }

    // Covers are lowered in file order; a cover whose fanins are defined
    // further down the file pulls them in depth-first.  The stack is explicit
    // (imported netlists can be tens of thousands of levels deep) with
    // on-stack marking for combinational-loop detection.
    #[derive(Clone, Copy)]
    enum Task<'a> {
        Enter(&'a str),
        Lower(&'a str),
    }
    let mut on_stack: HashMap<&str, bool> = HashMap::new();
    let mut stack: Vec<Task> = Vec::new();
    for root in &cover_order {
        stack.push(Task::Enter(root));
        while let Some(task) = stack.pop() {
            match task {
                Task::Enter(name) => {
                    if lit_of.contains_key(name) {
                        continue;
                    }
                    let Some(cover) = covers.get(name) else {
                        return Err(IoError::parse(
                            0,
                            format!("signal `{name}` is used but never driven"),
                        ));
                    };
                    if on_stack.insert(name, true).is_some() {
                        return Err(IoError::parse(
                            cover.line,
                            format!("combinational loop through `{name}`"),
                        ));
                    }
                    stack.push(Task::Lower(name));
                    for input in cover.inputs.iter().rev() {
                        if !lit_of.contains_key(input.as_str()) {
                            stack.push(Task::Enter(input));
                        }
                    }
                }
                Task::Lower(name) => {
                    let cover = covers.get(name).expect("cover exists");
                    let fanins: Vec<Lit> = cover
                        .inputs
                        .iter()
                        .map(|input| *lit_of.get(input.as_str()).expect("fanin resolved"))
                        .collect();
                    let lit = lower_cover(&mut aig, cover, &fanins)?;
                    on_stack.remove(name);
                    lit_of.insert(name, lit);
                }
            }
        }
    }

    for name in &outputs {
        let Some(&lit) = lit_of.get(name.as_str()) else {
            return Err(IoError::parse(
                0,
                format!("output `{name}` is never driven"),
            ));
        };
        aig.add_output(name.clone(), lit);
    }
    Ok(aig)
}

/// Builds the sum-of-products function of one cover.
fn lower_cover(aig: &mut Aig, cover: &Cover, fanins: &[Lit]) -> IoResult<Lit> {
    // All rows must agree on the output value: a mixed on-set/off-set cover
    // is ill-formed BLIF.
    let value = match cover.rows.first() {
        None => return Ok(Lit::FALSE), // `.names x` with no rows is constant 0
        Some((_, v)) => *v,
    };
    if cover.rows.iter().any(|(_, v)| *v != value) {
        return Err(IoError::parse(
            cover.line,
            "cover mixes on-set and off-set rows",
        ));
    }
    let mut terms: Vec<Lit> = Vec::with_capacity(cover.rows.len());
    for (pattern, _) in &cover.rows {
        let literals: Vec<Lit> = pattern
            .chars()
            .zip(fanins)
            .filter_map(|(c, &l)| match c {
                '1' => Some(l),
                '0' => Some(!l),
                _ => None,
            })
            .collect();
        terms.push(aig.and_many(&literals));
    }
    let sum = aig.or_many(&terms);
    Ok(if value == '1' { sum } else { !sum })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut g = Aig::with_name("demo");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let f = g.or(ab, c);
        g.add_output("f", f);
        g.add_output("nf", !f);
        g
    }

    #[test]
    fn writes_structural_covers() {
        let text = write_blif(&sample());
        assert!(text.starts_with(".model demo\n"));
        assert!(text.contains(".inputs a b c\n"));
        assert!(text.contains(".outputs f nf\n"));
        assert!(text.contains("\n00 1\n"), "or-gate folded phases: {text}");
        assert!(text.ends_with(".end\n"));
    }

    #[test]
    fn roundtrip_preserves_structure_and_function() {
        let g = sample();
        let back = parse_blif(&write_blif(&g)).unwrap();
        assert_eq!(back.name(), "demo");
        assert_eq!(back.num_ands(), g.num_ands());
        assert_eq!(back.num_inputs(), g.num_inputs());
        assert_eq!(back.output_name(1), "nf");
        assert!(crate::random_equivalence_check(&g, &back, 4, 3));
    }

    #[test]
    fn reads_general_covers() {
        // A 3-input majority as an on-set cover plus an off-set inverter.
        let text = "\
.model maj
.inputs a b c
.outputs m nm
.names a b c m
11- 1
1-1 1
-11 1
.names m nm
1 0
.end
";
        let aig = parse_blif(text).unwrap();
        let mut reference = Aig::new();
        let a = reference.add_input("a");
        let b = reference.add_input("b");
        let c = reference.add_input("c");
        let m = reference.maj(a, b, c);
        reference.add_output("m", m);
        reference.add_output("nm", !m);
        assert!(crate::random_equivalence_check(&reference, &aig, 4, 9));
    }

    #[test]
    fn constant_covers_and_comments() {
        let text = "\
# a comment
.model consts
.inputs a
.outputs zero one echo
.names zero
.names one
1
.names a echo # trailing comment
1 1
.end
";
        let aig = parse_blif(text).unwrap();
        assert_eq!(aig.outputs()[0], Lit::FALSE);
        assert_eq!(aig.outputs()[1], Lit::TRUE);
        assert_eq!(aig.outputs()[2].node(), aig.input_ids()[0]);
    }

    #[test]
    fn continuation_lines_join() {
        let text = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let aig = parse_blif(text).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn rejects_sequential_and_malformed_content() {
        assert!(matches!(
            parse_blif(".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n"),
            Err(IoError::Unsupported(_))
        ));
        assert!(parse_blif(".model m\n.outputs f\n.names g f\n1 1\n.end\n").is_err());
        assert!(
            parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n2 1\n.end\n").is_err()
        );
        assert!(
            parse_blif(
                ".model m\n.inputs a\n.outputs f\n.names f f2\n1 1\n.names f2 f\n1 1\n.end\n"
            )
            .is_err(),
            "combinational loop"
        );
        assert!(
            parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n0 1\n1 0\n.end\n")
                .is_err(),
            "mixed on/off rows"
        );
    }

    #[test]
    fn name_table_dedupes_collisions() {
        let mut g = Aig::with_name("collide");
        let a = g.add_input("sig nal");
        let b = g.add_input("sig_nal");
        let f = g.and(a, b);
        g.add_output("sig_nal", f);
        let text = write_blif(&g);
        let back = parse_blif(&text).unwrap();
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_outputs(), 1);
        assert!(crate::random_equivalence_check(&g, &back, 4, 5));
    }
}
