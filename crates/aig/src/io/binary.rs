//! Binary AIGER (`.aig`) reading and writing.
//!
//! The binary format stores AND gates as delta-coded varints: gate `i`
//! (with lhs literal `lhs = 2 * (I + i + 1)`) is encoded as the pair
//! `lhs - rhs0` and `rhs0 - rhs1`, each as an LEB128-style 7-bit varint.
//! Inputs are implicit, so only the outputs, the gate deltas and the symbol
//! table occupy the file.

use crate::{Aig, Lit};

use super::aag::order_fanins;
use super::{
    apply_symbol_line, parse_aiger_header, sanitize_line, IoError, IoResult, RawAiger, VarMap,
};

/// Renders a design as a binary AIGER (`.aig`) document.
///
/// The encoding mirrors [`super::write_aag`]: inputs are variables `1..=I` in
/// PI order, AND gates follow topologically, and the symbol table plus a
/// design-name comment are appended.
pub fn write_aiger_binary(aig: &Aig) -> Vec<u8> {
    let map = VarMap::new(aig);
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} 0 {} {}\n",
            map.max_var(aig),
            aig.num_inputs(),
            aig.num_outputs(),
            map.and_ids().len()
        )
        .as_bytes(),
    );
    for &o in aig.outputs() {
        out.extend_from_slice(format!("{}\n", map.lit(o)).as_bytes());
    }
    for &id in map.and_ids() {
        let (a, b) = aig.node(id).fanins().expect("and node");
        let lhs = map.lit(Lit::from_node(id, false));
        let (r0, r1) = order_fanins(map.lit(a), map.lit(b));
        debug_assert!(lhs > r0 && r0 >= r1, "AIGER ordering violated");
        push_varint(&mut out, lhs - r0);
        push_varint(&mut out, r0 - r1);
    }
    for i in 0..aig.num_inputs() {
        out.extend_from_slice(format!("i{i} {}\n", sanitize_line(aig.input_name(i))).as_bytes());
    }
    for i in 0..aig.num_outputs() {
        out.extend_from_slice(format!("o{i} {}\n", sanitize_line(aig.output_name(i))).as_bytes());
    }
    out.extend_from_slice(b"c\n");
    out.extend_from_slice(sanitize_line(aig.name()).as_bytes());
    out.push(b'\n');
    out
}

fn push_varint(out: &mut Vec<u8>, mut value: u32) {
    while value >= 0x80 {
        out.push((value & 0x7f) as u8 | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> IoResult<u32> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| IoError::parse(0, "file ends inside a gate varint"))?;
        *pos += 1;
        if shift >= 32 || (shift == 28 && byte & 0x7f > 0x0f) {
            return Err(IoError::parse(0, "gate varint overflows 32 bits"));
        }
        value |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Parses a binary AIGER (`.aig`) document.
///
/// Combinational designs only — a non-zero latch count is rejected.
pub fn parse_aiger_binary(bytes: &[u8]) -> IoResult<Aig> {
    let mut pos = 0usize;
    let header = read_line(bytes, &mut pos, "header")?;
    let (max_var, num_inputs, _l, num_outputs, num_ands) =
        parse_aiger_header(&String::from_utf8_lossy(header), "aig")?;
    if max_var as u64 != num_inputs as u64 + num_ands as u64 {
        return Err(IoError::parse(
            1,
            format!("binary AIGER requires M = I + A, got M = {max_var}"),
        ));
    }
    // Each output line is at least `0\n` and each gate at least two varint
    // bytes; a header claiming more must not drive the pre-sized allocations.
    super::check_counts_plausible(
        &[(num_outputs, 2), (num_ands, 2)],
        bytes.len().saturating_sub(pos),
    )?;

    let mut raw = RawAiger {
        max_var,
        num_inputs,
        ands: Vec::with_capacity(num_ands as usize),
        outputs: Vec::with_capacity(num_outputs as usize),
        input_names: vec![None; num_inputs as usize],
        output_names: vec![None; num_outputs as usize],
        name: None,
    };

    for i in 0..num_outputs {
        let line = read_line(bytes, &mut pos, "output literals")?;
        let lit: u32 = std::str::from_utf8(line)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| IoError::parse(0, format!("output {i} is not a literal")))?;
        if lit >> 1 > max_var {
            return Err(IoError::parse(0, format!("output literal {lit} exceeds M")));
        }
        raw.outputs.push(lit);
    }

    for i in 0..num_ands {
        let lhs = (num_inputs + i + 1) << 1;
        let delta0 = read_varint(bytes, &mut pos)?;
        let delta1 = read_varint(bytes, &mut pos)?;
        let rhs0 = lhs
            .checked_sub(delta0)
            .ok_or_else(|| IoError::parse(0, format!("gate {i}: delta0 {delta0} exceeds lhs")))?;
        let rhs1 = rhs0
            .checked_sub(delta1)
            .ok_or_else(|| IoError::parse(0, format!("gate {i}: delta1 {delta1} exceeds rhs0")))?;
        if delta0 == 0 {
            return Err(IoError::parse(
                0,
                format!("gate {i}: lhs equals rhs0 (cyclic definition)"),
            ));
        }
        raw.ands.push((lhs >> 1, rhs0, rhs1));
    }

    // Optional symbol table and comment section (both are line-oriented text).
    let mut in_comments = false;
    let mut line_no = 0usize;
    while pos < bytes.len() {
        let line = read_line(bytes, &mut pos, "symbol table")?;
        line_no += 1;
        let line = String::from_utf8_lossy(line);
        let line = line.trim_end();
        if in_comments {
            if raw.name.is_none() && !line.is_empty() {
                raw.name = Some(line.to_string());
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if !apply_symbol_line(line, line_no, &mut raw)? {
            in_comments = true;
        }
    }

    raw.build()
}

fn read_line<'a>(bytes: &'a [u8], pos: &mut usize, what: &str) -> IoResult<&'a [u8]> {
    let start = *pos;
    if start >= bytes.len() {
        return Err(IoError::parse(0, format!("file ends before {what}")));
    }
    while *pos < bytes.len() && bytes[*pos] != b'\n' {
        *pos += 1;
    }
    let line = &bytes[start..*pos];
    if *pos < bytes.len() {
        *pos += 1; // consume the newline; EOF terminates the last line too
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut g = Aig::with_name("mux3");
        let s = g.add_input("s");
        let t = g.add_input("t");
        let e = g.add_input("e");
        let m = g.mux(s, t, e);
        g.add_output("m", m);
        g
    }

    #[test]
    fn varint_roundtrip() {
        for value in [0u32, 1, 0x7f, 0x80, 0x3fff, 0x4000, u32::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), value);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn roundtrip_preserves_structure_names_and_function() {
        let g = sample();
        let back = parse_aiger_binary(&write_aiger_binary(&g)).unwrap();
        assert_eq!(back.name(), "mux3");
        assert_eq!(back.num_ands(), g.num_ands());
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.input_name(0), "s");
        assert_eq!(back.output_name(0), "m");
        assert!(crate::random_equivalence_check(&g, &back, 4, 11));
    }

    #[test]
    fn binary_is_smaller_than_ascii() {
        let g = crate::io::tests_support::ripple_adder(16);
        let binary = write_aiger_binary(&g);
        let ascii = super::super::write_aag(&g);
        assert!(binary.len() < ascii.len() / 2);
    }

    #[test]
    fn rejects_truncated_files() {
        let g = sample();
        let bytes = write_aiger_binary(&g);
        for cut in [3, bytes.len() / 2] {
            assert!(parse_aiger_binary(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn accepts_missing_trailing_newline() {
        // External tools may omit the final newline of the symbol/comment
        // section; the last line still counts.
        let aig = parse_aiger_binary(b"aig 1 1 0 1 0\n2\ni0 x").unwrap();
        assert_eq!(aig.input_name(0), "x");
        let aig = parse_aiger_binary(b"aig 1 1 0 1 0\n2").unwrap();
        assert_eq!(aig.num_outputs(), 1);
    }

    #[test]
    fn rejects_non_monotone_gates() {
        // Header claims one gate; delta0 = 0 would make lhs = rhs0.
        let mut bytes = b"aig 2 1 0 1 1\n4\n".to_vec();
        bytes.push(0); // delta0 varint = 0
        bytes.push(0); // delta1 varint = 0
        assert!(parse_aiger_binary(&bytes).is_err());
    }
}
