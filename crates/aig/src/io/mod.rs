//! Design interchange: AIGER (binary and ASCII) and structural BLIF.
//!
//! This module turns the in-memory [`Aig`] into a design that can leave the
//! process and come back: the three formats every academic logic-synthesis
//! tool speaks (ABC, aigtools, mockturtle, Yosys).
//!
//! * **ASCII AIGER** (`.aag`) — the human-readable AIGER 1.9 subset for
//!   combinational circuits, written with a full symbol table.
//! * **Binary AIGER** (`.aig`) — the compact delta-coded format used for
//!   benchmark distribution (HWMCC, EPFL suites).
//! * **Structural BLIF** (`.blif`) — `.model`/`.inputs`/`.outputs`/`.names`
//!   with sum-of-products covers; the writer emits pure AND2/buffer covers,
//!   the reader accepts arbitrary single-output covers (up to
//!   [`MAX_COVER_INPUTS`] inputs per `.names`).
//!
//! All readers build through [`Aig::and`], so imported designs are structurally
//! hashed and constant-propagated on the way in; a design written by this
//! module reads back **node-for-node identical** (same node order, same
//! literals), which the round-trip tests pin down.  Latches are rejected:
//! the reproduction models combinational synthesis only, matching the paper's
//! use of combinational QoR metrics.
//!
//! ```
//! use aig::Aig;
//! use aig::io::{parse_aag, write_aag};
//!
//! let mut g = Aig::with_name("maj");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let c = g.add_input("c");
//! let m = g.maj(a, b, c);
//! g.add_output("m", m);
//!
//! let text = write_aag(&g);
//! let back = parse_aag(&text).unwrap();
//! assert_eq!(back.num_ands(), g.num_ands());
//! assert_eq!(back.input_name(2), "c");
//! ```

mod aag;
mod binary;
mod blif;

pub use aag::{parse_aag, write_aag};
pub use binary::{parse_aiger_binary, write_aiger_binary};
pub use blif::{parse_blif, write_blif, MAX_COVER_INPUTS};

use std::path::Path;

use crate::{Aig, Lit};

/// Errors produced while reading or writing design files.
#[derive(Debug)]
pub enum IoError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The header or body violates the format specification.
    Parse {
        /// 1-based line number (0 for binary-section errors).
        line: usize,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The design uses a feature this reproduction does not model
    /// (latches / sequential elements, multi-output covers, …).
    Unsupported(String),
    /// The file extension (or content) matches no supported format.
    UnknownFormat(String),
}

impl IoError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } if *line == 0 => write!(f, "parse error: {message}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Unsupported(what) => write!(f, "unsupported design feature: {what}"),
            IoError::UnknownFormat(what) => write!(f, "unknown design format: {what}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Result alias for design I/O.
pub type IoResult<T> = std::result::Result<T, IoError>;

/// A supported design-interchange format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// ASCII AIGER (`.aag`).
    AigerAscii,
    /// Binary AIGER (`.aig`).
    AigerBinary,
    /// Structural BLIF (`.blif`).
    Blif,
}

impl Format {
    /// All formats in a stable order.
    pub const ALL: [Format; 3] = [Format::AigerAscii, Format::AigerBinary, Format::Blif];

    /// The canonical file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            Format::AigerAscii => "aag",
            Format::AigerBinary => "aig",
            Format::Blif => "blif",
        }
    }

    /// Resolves a format from a file path's extension.
    pub fn from_path(path: &Path) -> IoResult<Format> {
        let ext = path
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or_default()
            .to_ascii_lowercase();
        match ext.as_str() {
            "aag" => Ok(Format::AigerAscii),
            "aig" => Ok(Format::AigerBinary),
            "blif" => Ok(Format::Blif),
            _ => Err(IoError::UnknownFormat(format!(
                "cannot infer format from `{}` (expected .aag, .aig or .blif)",
                path.display()
            ))),
        }
    }

    /// Sniffs a format from file content (used when the extension is absent).
    pub fn from_content(bytes: &[u8]) -> IoResult<Format> {
        if bytes.starts_with(b"aag ") {
            Ok(Format::AigerAscii)
        } else if bytes.starts_with(b"aig ") {
            Ok(Format::AigerBinary)
        } else if bytes.iter().take(4096).any(|&b| b == b'.') {
            // BLIF files start with comments or a dot-command.
            Ok(Format::Blif)
        } else {
            Err(IoError::UnknownFormat(
                "content matches neither AIGER nor BLIF".into(),
            ))
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.extension())
    }
}

/// Reads a design from `path`, inferring the format from the extension and
/// falling back to content sniffing for unknown extensions.
pub fn read_design(path: impl AsRef<Path>) -> IoResult<Aig> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let format = Format::from_path(path).or_else(|_| Format::from_content(&bytes))?;
    parse_design(&bytes, format)
}

/// Parses a design from raw bytes in an explicit format.
pub fn parse_design(bytes: &[u8], format: Format) -> IoResult<Aig> {
    match format {
        Format::AigerBinary => parse_aiger_binary(bytes),
        Format::AigerAscii => parse_aag(text_of(bytes)?),
        Format::Blif => parse_blif(text_of(bytes)?),
    }
}

/// Writes a design to `path` in the format implied by the extension.
pub fn write_design(path: impl AsRef<Path>, aig: &Aig) -> IoResult<()> {
    let path = path.as_ref();
    let format = Format::from_path(path)?;
    std::fs::write(path, render_design(aig, format))?;
    Ok(())
}

/// Renders a design to bytes in an explicit format.
pub fn render_design(aig: &Aig, format: Format) -> Vec<u8> {
    match format {
        Format::AigerBinary => write_aiger_binary(aig),
        Format::AigerAscii => write_aag(aig).into_bytes(),
        Format::Blif => write_blif(aig).into_bytes(),
    }
}

fn text_of(bytes: &[u8]) -> IoResult<&str> {
    std::str::from_utf8(bytes).map_err(|e| IoError::parse(0, format!("file is not UTF-8: {e}")))
}

/// Replaces line-structure characters in a symbol or design name so the
/// line-oriented AIGER writers always produce re-parsable files.
pub(crate) fn sanitize_line(name: &str) -> std::borrow::Cow<'_, str> {
    if name.contains(['\n', '\r']) {
        std::borrow::Cow::Owned(name.replace(['\n', '\r'], "_"))
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

// ---------------------------------------------------------------------------
// Shared writer-side numbering and reader-side graph assembly
// ---------------------------------------------------------------------------

/// AIGER variable numbering of a graph: inputs take variables `1..=I` in PI
/// order, AND nodes take `I+1..=M` in topological (node-id) order.  The
/// constant is variable 0, exactly as in the in-memory literal encoding.
pub(crate) struct VarMap {
    /// `var[node_id]` — the AIGER variable index of each node.
    var: Vec<u32>,
    /// Node ids of AND gates in AIGER (= topological) order.
    ands: Vec<usize>,
}

impl VarMap {
    pub(crate) fn new(aig: &Aig) -> Self {
        let mut var = vec![0u32; aig.len()];
        for (i, &id) in aig.input_ids().iter().enumerate() {
            var[id] = (i + 1) as u32;
        }
        let ands: Vec<usize> = aig.and_ids().collect();
        let num_inputs = aig.num_inputs() as u32;
        for (i, &id) in ands.iter().enumerate() {
            var[id] = num_inputs + 1 + i as u32;
        }
        VarMap { var, ands }
    }

    /// Maximum variable index (`M` of the AIGER header).
    pub(crate) fn max_var(&self, aig: &Aig) -> u32 {
        (aig.num_inputs() + self.ands.len()) as u32
    }

    /// The AIGER literal of an in-memory literal.
    pub(crate) fn lit(&self, l: Lit) -> u32 {
        self.var[l.node()] << 1 | l.is_complemented() as u32
    }

    /// AND-gate node ids in emission order.
    pub(crate) fn and_ids(&self) -> &[usize] {
        &self.ands
    }
}

/// A parsed AIGER file before graph assembly: raw literals plus symbols.
pub(crate) struct RawAiger {
    pub(crate) max_var: u32,
    pub(crate) num_inputs: u32,
    /// `(lhs_var, rhs0_lit, rhs1_lit)` per AND gate, in file order.
    pub(crate) ands: Vec<(u32, u32, u32)>,
    pub(crate) outputs: Vec<u32>,
    pub(crate) input_names: Vec<Option<String>>,
    pub(crate) output_names: Vec<Option<String>>,
    pub(crate) name: Option<String>,
}

impl RawAiger {
    /// Assembles the parsed file into an [`Aig`].
    ///
    /// Literals are validated (every referenced variable must be the constant,
    /// an input, or an AND defined earlier in the file), and construction goes
    /// through [`Aig::and`], so duplicate or trivial gates in the file are
    /// structurally hashed away.
    pub(crate) fn build(self) -> IoResult<Aig> {
        let mut aig = Aig::with_name(self.name.as_deref().unwrap_or("aiger"));
        // `lit_of[var]` — the in-memory literal for each defined AIGER variable.
        let mut lit_of: Vec<Option<Lit>> = vec![None; self.max_var as usize + 1];
        lit_of[0] = Some(Lit::FALSE);
        for i in 0..self.num_inputs {
            let name = self
                .input_names
                .get(i as usize)
                .cloned()
                .flatten()
                .unwrap_or_else(|| format!("i{i}"));
            lit_of[i as usize + 1] = Some(aig.add_input(name));
        }
        let resolve = |lit_of: &[Option<Lit>], raw: u32| -> IoResult<Lit> {
            let var = raw >> 1;
            let lit = lit_of
                .get(var as usize)
                .copied()
                .flatten()
                .ok_or_else(|| IoError::parse(0, format!("literal {raw} is not defined")))?;
            Ok(lit ^ (raw & 1 == 1))
        };
        for &(lhs_var, rhs0, rhs1) in &self.ands {
            match lit_of.get(lhs_var as usize) {
                None => {
                    return Err(IoError::parse(
                        0,
                        format!("AND variable {lhs_var} exceeds M"),
                    ))
                }
                Some(Some(_)) => {
                    return Err(IoError::parse(
                        0,
                        format!("variable {lhs_var} defined twice"),
                    ))
                }
                Some(None) => {}
            }
            let a = resolve(&lit_of, rhs0)?;
            let b = resolve(&lit_of, rhs1)?;
            let lit = aig.and(a, b);
            lit_of[lhs_var as usize] = Some(lit);
        }
        for (i, &raw) in self.outputs.iter().enumerate() {
            let lit = resolve(&lit_of, raw)?;
            let name = self
                .output_names
                .get(i)
                .cloned()
                .flatten()
                .unwrap_or_else(|| format!("o{i}"));
            aig.add_output(name, lit);
        }
        Ok(aig)
    }
}

/// Maximum variable (and output) count accepted in an AIGER header.
///
/// Graph assembly allocates one table slot per declared variable, so the
/// header must not be able to claim multi-billion counts: a hostile
/// `aag 4000000000 1 0 1 0` arriving over a socket would otherwise abort the
/// process on allocation before a single body byte is read.  `2^26` variables
/// is orders of magnitude beyond the paper's benchmark family.
pub const MAX_AIGER_VARS: u32 = 1 << 26;

/// Maximum accepted gap between `M` and `I + A` in an AIGER header.
///
/// The AIGER spec permits unused variable indices, but the gap directly sizes
/// the reader's variable table, so it must stay small relative to the
/// (content-bounded) input and gate counts.
const MAX_VAR_GAP: u64 = 4096;

/// Rejects headers whose declared counts could not possibly fit in the
/// remaining `body_len` bytes of the document.
///
/// Every definition costs at least a few bytes on disk (`counts` pairs each
/// claimed count with its minimum encoded size), so pre-sizing allocations
/// from a header that passes this check stays proportional to the real input
/// instead of to an attacker-chosen number.
pub(crate) fn check_counts_plausible(counts: &[(u32, u64)], body_len: usize) -> IoResult<()> {
    let need: u64 = counts
        .iter()
        .map(|&(n, min_bytes)| n as u64 * min_bytes)
        .sum();
    if need > body_len as u64 + 8 {
        return Err(IoError::parse(
            1,
            format!(
                "header claims at least {need} bytes of definitions, \
                 but only {body_len} bytes follow"
            ),
        ));
    }
    Ok(())
}

/// Parses the five-field AIGER header shared by both flavours.
///
/// Returns `(M, I, L, O, A)`; rejects sequential designs (`L > 0`) and
/// headers whose counts exceed [`MAX_AIGER_VARS`].
pub(crate) fn parse_aiger_header(line: &str, magic: &str) -> IoResult<(u32, u32, u32, u32, u32)> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some(magic) {
        return Err(IoError::parse(1, format!("expected `{magic}` header")));
    }
    let mut field = |name: &str| -> IoResult<u32> {
        parts
            .next()
            .ok_or_else(|| IoError::parse(1, format!("missing header field {name}")))?
            .parse::<u32>()
            .map_err(|_| IoError::parse(1, format!("header field {name} is not a number")))
    };
    let m = field("M")?;
    let i = field("I")?;
    let l = field("L")?;
    let o = field("O")?;
    let a = field("A")?;
    if parts.next().is_some() {
        // AIGER 1.9 extends the header with B C J F counts; all must be zero
        // for a combinational circuit, so reject rather than misread.
        return Err(IoError::Unsupported(
            "AIGER 1.9 extension fields (B C J F)".into(),
        ));
    }
    if l != 0 {
        return Err(IoError::Unsupported(format!(
            "{l} latch(es); this reproduction is combinational-only"
        )));
    }
    if m > MAX_AIGER_VARS || o > MAX_AIGER_VARS {
        return Err(IoError::parse(
            1,
            format!("header claims {m} variables / {o} outputs (limit {MAX_AIGER_VARS})"),
        ));
    }
    // u64 arithmetic: I and A are individually unchecked, so their u32 sum
    // could wrap and sneak a hostile header past both bounds.
    let defined = i as u64 + a as u64;
    if (m as u64) < defined {
        return Err(IoError::parse(
            1,
            format!("header claims M = {m} < I + A = {defined}"),
        ));
    }
    if m as u64 > defined + MAX_VAR_GAP {
        return Err(IoError::parse(
            1,
            format!("header claims M = {m}, far beyond I + A = {defined}"),
        ));
    }
    Ok((m, i, l, o, a))
}

/// Parses one symbol-table line (`i0 name` / `o3 name`) into `raw`.
///
/// Returns `false` when the line starts the comment section instead.
pub(crate) fn apply_symbol_line(line: &str, line_no: usize, raw: &mut RawAiger) -> IoResult<bool> {
    if line == "c" {
        return Ok(false);
    }
    let (tag, name) = line
        .split_once(' ')
        .ok_or_else(|| IoError::parse(line_no, "malformed symbol line"))?;
    // `tag.split_at(1)` would panic on an empty tag or a multi-byte first
    // character; iterate by char so arbitrary bytes only ever produce errors.
    let mut tag_chars = tag.chars();
    let kind = tag_chars.next().unwrap_or(' ');
    let index: usize = tag_chars
        .as_str()
        .parse()
        .map_err(|_| IoError::parse(line_no, format!("bad symbol index in `{tag}`")))?;
    let slot = match kind {
        'i' => raw.input_names.get_mut(index),
        'o' => raw.output_names.get_mut(index),
        'l' => {
            return Err(IoError::Unsupported(
                "latch symbol in combinational design".into(),
            ))
        }
        _ => {
            return Err(IoError::parse(
                line_no,
                format!("unknown symbol tag `{tag}`"),
            ))
        }
    };
    match slot {
        Some(s) => *s = Some(name.to_string()),
        None => {
            return Err(IoError::parse(
                line_no,
                format!("symbol `{tag}` is out of range"),
            ))
        }
    }
    Ok(true)
}

#[cfg(test)]
pub(crate) mod tests_support {
    use crate::{Aig, Lit};

    /// A ripple-carry adder: a deterministic mid-size test graph.
    pub(crate) fn ripple_adder(bits: usize) -> Aig {
        let mut g = Aig::with_name(format!("add{bits}"));
        let a = g.add_inputs("a", bits);
        let b = g.add_inputs("b", bits);
        let mut carry = Lit::FALSE;
        let mut sum = Vec::with_capacity(bits + 1);
        for i in 0..bits {
            let s = g.xor(a[i], b[i]);
            sum.push(g.xor(s, carry));
            carry = g.maj(a[i], b[i], carry);
        }
        sum.push(carry);
        g.add_outputs("s", &sum);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_from_path_and_content() {
        assert_eq!(
            Format::from_path(Path::new("x/y.aag")).unwrap(),
            Format::AigerAscii
        );
        assert_eq!(
            Format::from_path(Path::new("y.AIG")).unwrap(),
            Format::AigerBinary
        );
        assert_eq!(
            Format::from_path(Path::new("z.blif")).unwrap(),
            Format::Blif
        );
        assert!(Format::from_path(Path::new("z.v")).is_err());

        assert_eq!(
            Format::from_content(b"aag 1 1 0 1 0\n").unwrap(),
            Format::AigerAscii
        );
        assert_eq!(
            Format::from_content(b"aig 0 0 0 0 0\n").unwrap(),
            Format::AigerBinary
        );
        assert_eq!(
            Format::from_content(b"# comment\n.model m\n").unwrap(),
            Format::Blif
        );
        assert!(Format::from_content(b"module m;").is_err());
    }

    #[test]
    fn header_rejects_latches_and_garbage() {
        assert!(parse_aiger_header("aag 3 2 0 1 1", "aag").is_ok());
        assert!(matches!(
            parse_aiger_header("aag 3 2 1 1 0", "aag"),
            Err(IoError::Unsupported(_))
        ));
        assert!(parse_aiger_header("aag 3 2 0 1", "aag").is_err());
        assert!(parse_aiger_header("aig x 2 0 1 1", "aig").is_err());
        assert!(parse_aiger_header("aag 1 2 0 1 1", "aag").is_err());
    }
}
